//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The container building this repository has no access to crates.io, so the
//! workspace vendors a minimal, deterministic implementation: [`SmallRng`]
//! (xoshiro256++), [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`],
//! [`SeedableRng::seed_from_u64`], and [`seq::SliceRandom`]. The surface and
//! semantics match `rand 0.8` closely enough that swapping the real crate
//! back in is a manifest-only change (streams differ, so seeded outputs
//! would change — all tests in this workspace assert determinism, not
//! specific stream values).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   u64 => next_u64, usize => next_u64,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return <$t as Standard>::sample_standard(rng);
                }
                let span = (hi - lo) as u64 + 1;
                lo + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_u64(rng, span) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Unbiased uniform draw from `[0, span)` (Lemire-style rejection).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// User-facing random-value methods, `rand 0.8` style.
pub trait Rng: RngCore {
    /// Uniform value from a range, e.g. `rng.gen_range(0..10)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        f64::sample_standard(self) < p
    }

    /// A uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (`rand 0.8` semantics: the
    /// seed is expanded by SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Named RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic RNG — xoshiro256++, seeded via
    /// SplitMix64 like `rand 0.8`'s `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{uniform_u64, Rng};

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = uniform_u64(rng, self.len() as u64) as usize;
                self.get(i)
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SmallRng::seed_from_u64(9);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let &x = v.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
