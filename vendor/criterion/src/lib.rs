//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! Benches compile and run (`cargo bench`), timing each closure over a small
//! number of iterations and printing mean wall-clock times. There is no
//! statistical analysis, warm-up calibration, or HTML report — swap the real
//! crate back in for serious measurements.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `group/function/parameter` style id.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id naming only the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Top-level bench context.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_bench(&id.to_string(), self.sample_size, f);
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count per measurement.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: u64, mut f: F) {
    let mut b = Bencher {
        iters: sample_size,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed / (b.iters as u32)
    } else {
        Duration::ZERO
    };
    println!(
        "bench {label:<50} {per_iter:>12.3?}/iter ({} iters)",
        b.iters
    );
}

/// Declares the benchmark entry points of one bench target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` of a bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
