//! Derive macros for the offline `serde` shim.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are unavailable
//! offline, so this crate parses the derive input token stream by hand. It
//! supports exactly the shapes this workspace uses: non-generic structs
//! (named, tuple/newtype, unit) and enums whose variants are unit, tuple, or
//! struct-like. `#[serde(...)]` attributes are not supported and produce a
//! compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// Shape of a struct body or an enum variant payload.
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

enum Parsed {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(msg) => return compile_error(&msg),
    };
    let code = match (&parsed, mode) {
        (Parsed::Struct { name, fields }, Mode::Serialize) => struct_serialize(name, fields),
        (Parsed::Struct { name, fields }, Mode::Deserialize) => struct_deserialize(name, fields),
        (Parsed::Enum { name, variants }, Mode::Serialize) => enum_serialize(name, variants),
        (Parsed::Enum { name, variants }, Mode::Deserialize) => enum_deserialize(name, variants),
    };
    code.parse().expect("generated impl parses")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal parses")
}

// ---------------------------------------------------------------------------
// Parsing.

fn parse_input(input: TokenStream) -> Result<Parsed, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: expected type name".into()),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` is not supported"
        ));
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                None => Fields::Unit,
                _ => return Err("serde shim derive: unsupported struct body".into()),
            };
            Ok(Parsed::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => return Err("serde shim derive: expected enum body".into()),
            };
            Ok(Parsed::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("serde shim derive: unsupported item `{other}`")),
    }
}

/// Skips outer attributes (`#[...]`) and a visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // `#`
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // `[...]`
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // `(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Skips tokens until (and including) a comma at angle-bracket depth 0.
fn skip_past_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            _ => return Err("serde shim derive: expected field name".into()),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("serde shim derive: expected `:` after `{name}`")),
        }
        skip_past_comma(&tokens, &mut i);
        names.push(name);
    }
    Ok(names)
}

/// Counts fields of a tuple struct / tuple variant.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_past_comma(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            _ => return Err("serde shim derive: expected variant name".into()),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        skip_past_comma(&tokens, &mut i);
        variants.push((name, fields));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation.

fn struct_serialize(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let pairs: Vec<String> = names
                .iter()
                .map(|f| format!("({f:?}, ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::object([{}])", pairs.join(", "))
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn struct_deserialize(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(__fields, {f:?}, {name:?})?"))
                .collect();
            format!(
                "let __fields = ::serde::de::object(v, {name:?})?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de::element(__items, {i}, {name:?})?"))
                .collect();
            format!(
                "let __items = ::serde::de::array(v, {name:?})?;\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Fields::Unit => format!("let _ = v; ::std::result::Result::Ok({name})"),
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn enum_serialize(name: &str, variants: &[(String, Fields)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(v, fields)| match fields {
            Fields::Unit => format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),"),
            Fields::Named(names) => {
                let binds = names.join(", ");
                let pairs: Vec<String> = names
                    .iter()
                    .map(|f| format!("({f:?}, ::serde::Serialize::to_value({f}))"))
                    .collect();
                format!(
                    "{name}::{v} {{ {binds} }} => ::serde::Value::object([({v:?}, \
                     ::serde::Value::object([{}]))]),",
                    pairs.join(", ")
                )
            }
            Fields::Tuple(1) => format!(
                "{name}::{v}(__x0) => ::serde::Value::object([({v:?}, \
                 ::serde::Serialize::to_value(__x0))]),"
            ),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(__x{i})"))
                    .collect();
                format!(
                    "{name}::{v}({}) => ::serde::Value::object([({v:?}, \
                     ::serde::Value::Arr(vec![{}]))]),",
                    binds.join(", "),
                    items.join(", ")
                )
            }
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {} }}\n\
             }}\n\
         }}",
        arms.join("\n")
    )
}

fn enum_deserialize(name: &str, variants: &[(String, Fields)]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, f)| matches!(f, Fields::Unit))
        .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
        .collect();
    let payload_arms: Vec<String> = variants
        .iter()
        .filter_map(|(v, fields)| {
            let ty = format!("{name}::{v}");
            match fields {
                Fields::Unit => None,
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| format!("{f}: ::serde::de::field(__fields, {f:?}, {ty:?})?"))
                        .collect();
                    Some(format!(
                        "{v:?} => {{\n\
                             let __fields = ::serde::de::object(__payload, {ty:?})?;\n\
                             ::std::result::Result::Ok({name}::{v} {{ {} }})\n\
                         }}",
                        inits.join(", ")
                    ))
                }
                Fields::Tuple(1) => Some(format!(
                    "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                     ::serde::Deserialize::from_value(__payload)?)),"
                )),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::de::element(__items, {i}, {ty:?})?"))
                        .collect();
                    Some(format!(
                        "{v:?} => {{\n\
                             let __items = ::serde::de::array(__payload, {ty:?})?;\n\
                             ::std::result::Result::Ok({name}::{v}({}))\n\
                         }}",
                        inits.join(", ")
                    ))
                }
            }
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => ::std::result::Result::Err(::serde::DeError::new(format!(\n\
                             \"unknown variant `{{__other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Obj(__fields0) if __fields0.len() == 1 => {{\n\
                         let (__tag, __payload) = &__fields0[0];\n\
                         match __tag.as_str() {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::new(format!(\n\
                                 \"unknown variant `{{__other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::new(format!(\n\
                         \"expected variant of {name}, found {{:?}}\", __other))),\n\
                 }}\n\
             }}\n\
         }}",
        unit_arms.join("\n"),
        payload_arms.join("\n")
    )
}
