//! Offline JSON front end for the `serde` shim: [`to_string`] / [`from_str`]
//! over the shim's [`Value`] tree.

#![forbid(unsafe_code)]

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};
use std::fmt;

/// Serialization / deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching real serde_json.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&v).map_err(|e| Error::new(e.0))
}

// ---------------------------------------------------------------------------
// Writer.

fn write_value(v: &Value, out: &mut String) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("non-finite float cannot be encoded as JSON"));
            }
            let s = x.to_string();
            out.push_str(&s);
            // Keep the float/integer distinction through a round trip.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error::new("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(Error::new("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected input at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the longest run of plain bytes (UTF-8 safe:
                    // continuation bytes are never `"` or `\`).
                    let start = self.pos - 1;
                    while let Some(&nb) = self.bytes.get(self.pos) {
                        if nb == b'"' || nb == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert!(from_str::<bool>("true").unwrap());
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<(u32, u64)>> = vec![Some((1, 2)), None];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],null]");
        assert_eq!(from_str::<Vec<Option<(u32, u64)>>>(&json).unwrap(), v);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\u{1}é".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
    }
}
