//! Offline shim for the subset of the `proptest` API this workspace uses:
//! the [`proptest!`] macro, range and tuple [`Strategy`]s, `prop_map`,
//! `prop::collection::vec`, and the `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! its case index and seed, which (together with the deterministic
//! generator) is enough to reproduce it.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt;
use std::ops::Range;

/// Deterministic RNG handed to strategies.
pub type TestRng = SmallRng;

/// Run configuration; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert!`-style macros.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Generates values of `Self::Value` from an RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// A constant strategy (for completeness with real proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($t:ident : $i:tt),+) => {
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with a length drawn from `len` and elements
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace used by `prop::collection::vec`.
pub mod prop {
    pub use crate::collection;
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestCaseError,
    };
    pub use rand::rngs::SmallRng;
    pub use rand::{Rng, SeedableRng};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// The test-harness macro: expands each contained `#[test] fn name(pat in
/// strategy, ...) { body }` into a deterministic multi-case test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let seed = 0x70_70_7e57_u64 ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let mut __rng = <$crate::TestRng as ::rand::SeedableRng>::seed_from_u64(seed);
                let ($($pat,)+) =
                    ($($crate::Strategy::generate(&($strat), &mut __rng),)+);
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest case {case} (seed {seed:#x}) failed: {e}");
                }
            }
        }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
}
