//! Offline shim for the subset of the `serde` API this workspace uses.
//!
//! The container building this repository has no access to crates.io, so
//! this crate provides `Serialize` / `Deserialize` traits over a simple
//! owned [`Value`] tree, together with a derive macro (in `serde_derive`)
//! and a JSON front end (in `serde_json`). The public surface imitates real
//! serde closely enough for this workspace — `use serde::{Serialize,
//! Deserialize}`, derive attributes, `serde::de::DeserializeOwned` — but the
//! data model is deliberately simplified: serializers produce a [`Value`],
//! deserializers consume one.

#![forbid(unsafe_code)]

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree all (de)serialization passes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object value from `(key, value)` pairs.
    pub fn object<const N: usize>(pairs: [(&str, Value); N]) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types serializable to a [`Value`].
pub trait Serialize {
    /// Converts `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`]. The lifetime parameter exists for
/// signature compatibility with real serde; this shim only produces owned
/// data.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// The `serde::de` module surface used by this workspace.
pub mod de {
    pub use crate::DeError as Error;
    use crate::{Deserialize, Value};

    /// Owned deserialization, as in real serde.
    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
    impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

    /// Extracts the field list of an object value (derive-macro helper).
    pub fn object<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], Error> {
        match v {
            Value::Obj(fields) => Ok(fields),
            other => Err(Error::new(format!(
                "expected object for {ty}, found {}",
                other.kind()
            ))),
        }
    }

    /// Extracts the element list of an array value (derive-macro helper).
    pub fn array<'a>(v: &'a Value, ty: &str) -> Result<&'a [Value], Error> {
        match v {
            Value::Arr(items) => Ok(items),
            other => Err(Error::new(format!(
                "expected array for {ty}, found {}",
                other.kind()
            ))),
        }
    }

    /// Looks up and deserializes one named field (derive-macro helper).
    pub fn field<T: DeserializeOwned>(
        fields: &[(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<T, Error> {
        let v = fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::new(format!("missing field `{name}` for {ty}")))?;
        T::from_value(v)
    }

    /// Deserializes one positional element (derive-macro helper).
    pub fn element<T: DeserializeOwned>(items: &[Value], idx: usize, ty: &str) -> Result<T, Error> {
        let v = items
            .get(idx)
            .ok_or_else(|| Error::new(format!("missing element {idx} for {ty}")))?;
        T::from_value(v)
    }
}

// ---------------------------------------------------------------------------
// Primitive impls.

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::U64(x) => *x,
                    Value::I64(x) if *x >= 0 => *x as u64,
                    other => {
                        return Err(DeError::new(format!(
                            concat!("expected ", stringify!($t), ", found {}"),
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    DeError::new(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 {
                    Value::U64(x as u64)
                } else {
                    Value::I64(x)
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::I64(x) => *x,
                    Value::U64(x) => i64::try_from(*x).map_err(|_| {
                        DeError::new(concat!("integer out of range for ", stringify!($t)))
                    })?,
                    other => {
                        return Err(DeError::new(format!(
                            concat!("expected ", stringify!($t), ", found {}"),
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    DeError::new(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(x) => Ok(*x as f64),
            Value::I64(x) => Ok(*x as f64),
            other => Err(DeError::new(format!(
                "expected f64, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($n:literal => $($t:ident : $i:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$i.to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = de::array(v, "tuple")?;
                if items.len() != $n {
                    return Err(DeError::new(format!(
                        "expected {}-tuple, found array of {}",
                        $n,
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$i])?,)+))
            }
        }
    };
}
impl_tuple!(1 => A: 0);
impl_tuple!(2 => A: 0, B: 1);
impl_tuple!(3 => A: 0, B: 1, C: 2);
impl_tuple!(4 => A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<(u32, u64)>> = vec![Some((1, 2)), None, Some((3, 4))];
        let back = Vec::<Option<(u32, u64)>>::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn range_errors_are_reported() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
        assert!(bool::from_value(&Value::U64(0)).is_err());
    }
}
