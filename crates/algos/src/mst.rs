//! Minimum spanning trees: Kruskal (centralized reference) and distributed
//! Boruvka over shortcuts (Corollary 1.6).
//!
//! The distributed algorithm follows the paper's recipe: fragments are the
//! parts of a part-wise aggregation instance; each phase (1) exchanges
//! fragment ids with neighbors (one round), (2) constructs shortcuts for the
//! fragments, (3) aggregates the minimum-weight outgoing edge per fragment,
//! and (4) merges fragments tail→head after leader coin flips (the standard
//! symmetry breaker keeping relabeling one hop), notifying members through a
//! second aggregation wave. All MWOEs are safe by the cut property under
//! the (weight, edge-id) tie-break, so the edge set is exact.

use lcs_congest::id_bits;
use lcs_congest::protocols::AggOp;
use lcs_core::dist::{distributed_full_shortcut, DistConfig, DistMode};
use lcs_core::session::{deps, Backend, OpReport, PartwiseOp, ShortcutSession};
use lcs_core::{full_shortcut, Partition, Shortcut, ShortcutConfig};
use lcs_graph::weights::EdgeWeights;
use lcs_graph::{EdgeId, Graph, NodeId, PartId, UnionFind};
use lcs_partwise::{solve_partwise, PartwiseConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Kruskal's algorithm — the centralized reference.
///
/// Ties are broken by edge id, matching the distributed tie-break, so on any
/// input the two algorithms produce the identical forest.
pub fn kruskal(g: &Graph, weights: &EdgeWeights) -> Vec<EdgeId> {
    let mut order: Vec<EdgeId> = g.edges().map(|er| er.id).collect();
    order.sort_by_key(|&e| (weights.weight(e), e));
    let mut uf = UnionFind::new(g.num_nodes());
    let mut forest = Vec::new();
    for e in order {
        let (u, v) = g.endpoints(e);
        if uf.union(u.index(), v.index()) {
            forest.push(e);
        }
    }
    forest.sort_unstable();
    forest
}

/// How each Boruvka phase obtains its shortcuts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ShortcutProvider {
    /// Centralized Theorem 1.2 construction ("oracle" — construction rounds
    /// are not charged; use to isolate aggregation cost).
    MinorSweepOracle(ShortcutConfig),
    /// The real distributed Theorem 1.5 construction; its simulated rounds
    /// are charged per phase.
    MinorSweepDistributed(ShortcutConfig, DistConfig),
    /// The folklore `D + √n` shortcut (parts bigger than `√n` get the whole
    /// BFS tree). Constructible in `O(D)` rounds, charged as zero.
    Baseline,
    /// No shortcuts: fragments communicate inside `G[P_i]` only.
    None,
}

/// Configuration of [`distributed_mst`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BoruvkaConfig {
    /// Shortcut provider per phase.
    pub provider: ShortcutProvider,
    /// Aggregation settings.
    pub partwise: PartwiseConfig,
    /// Seed for the leader coin flips.
    pub seed: u64,
    /// Safety cap on phases (default `4·log₂ n + 16`).
    pub max_phases: Option<usize>,
    /// When `true` (default), fragments with at most `2D + 1` nodes get
    /// `H_i = ∅`: their own diameter already meets the Observation 2.6
    /// dilation bound, so shortcutting them only adds congestion. Set to
    /// `false` for the ablation that shortcuts everything.
    pub skip_small_fragments: bool,
}

impl Default for BoruvkaConfig {
    fn default() -> Self {
        BoruvkaConfig {
            provider: ShortcutProvider::MinorSweepOracle(ShortcutConfig::default()),
            partwise: PartwiseConfig::default(),
            seed: 0xb0_aa_12,
            max_phases: None,
            skip_small_fragments: true,
        }
    }
}

/// Round breakdown of one run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MstRounds {
    /// Neighbor fragment-id exchanges (one per phase).
    pub exchange: u64,
    /// Shortcut construction (only for the distributed provider).
    pub construction: u64,
    /// MWOE aggregations.
    pub aggregation: u64,
    /// Merge-notification broadcasts.
    pub notification: u64,
}

impl MstRounds {
    /// Total simulated rounds.
    pub fn total(&self) -> u64 {
        self.exchange + self.construction + self.aggregation + self.notification
    }
}

/// Result of [`distributed_mst`].
#[derive(Clone, Debug)]
pub struct MstReport {
    /// The forest edges, sorted by id.
    pub edges: Vec<EdgeId>,
    /// Total weight.
    pub total_weight: u64,
    /// Boruvka phases executed.
    pub phases: usize,
    /// Simulated round counts.
    pub rounds: MstRounds,
    /// Total simulated messages.
    pub messages: u64,
    /// Total simulated bits (id-aware accounting; id exchanges are billed
    /// at `id_bits(n)` per message).
    pub bits: u64,
}

/// Builds shortcuts for the parts living inside the BFS tree's component;
/// parts in other components (possible for spanning forests on disconnected
/// graphs) get `H_i = ∅`.
#[allow(clippy::too_many_arguments)]
fn provide_shortcuts(
    g: &Graph,
    tree: &lcs_graph::RootedTree,
    root: NodeId,
    partition: &Partition,
    provider: &ShortcutProvider,
    skip_small: bool,
    rounds: &mut MstRounds,
    messages: &mut u64,
    bits: &mut u64,
) -> Shortcut {
    let k = partition.num_parts();
    match provider {
        ShortcutProvider::None => return Shortcut::empty(k),
        ShortcutProvider::Baseline => {
            let lists = partition
                .iter()
                .map(|(_, nodes)| {
                    let big = nodes.len() > (g.num_nodes() as f64).sqrt() as usize;
                    if big && tree.contains(nodes[0]) {
                        tree.tree_edges().map(|(e, _)| e).collect()
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            return Shortcut::from_edge_lists(lists);
        }
        _ => {}
    }
    // Restrict to in-tree parts that actually profit from shortcuts (a part
    // with at most 2D+1 nodes already meets the dilation bound on its own),
    // construct, and map back.
    let small_cap = (2 * tree.depth_of_tree() + 1) as usize;
    let in_tree: Vec<PartId> = partition
        .iter()
        .filter(|(_, nodes)| tree.contains(nodes[0]) && (!skip_small || nodes.len() > small_cap))
        .map(|(p, _)| p)
        .collect();
    if in_tree.is_empty() {
        return Shortcut::empty(k);
    }
    let sub_parts: Vec<Vec<NodeId>> = in_tree
        .iter()
        .map(|&p| partition.part(p).to_vec())
        .collect();
    let sub = Partition::from_parts(g, sub_parts).expect("sub-partition stays valid");
    let sub_shortcut = match provider {
        ShortcutProvider::MinorSweepOracle(sc) => full_shortcut(g, tree, &sub, sc).shortcut,
        ShortcutProvider::MinorSweepDistributed(sc, dc) => {
            let res = distributed_full_shortcut(g, root, &sub, sc, dc);
            rounds.construction += res.rounds;
            *messages += res.messages;
            *bits += res.bits;
            res.shortcut
        }
        _ => unreachable!("handled above"),
    };
    let mut shortcut = Shortcut::empty(k);
    for (si, &orig) in in_tree.iter().enumerate() {
        shortcut.set_edges(orig, sub_shortcut.edges_for(PartId(si as u32)).to_vec());
    }
    shortcut
}

/// Packs `(weight, edge)` so that `min` over `u64` picks the lightest edge
/// with id tie-break.
fn pack(w: u64, e: EdgeId) -> u64 {
    debug_assert!(w < (1 << 31), "weights must fit in 31 bits");
    (w << 32) | u64::from(e.0)
}

fn unpack(p: u64) -> EdgeId {
    EdgeId((p & 0xffff_ffff) as u32)
}

/// Distributed Boruvka over shortcuts.
///
/// Returns the exact minimum spanning forest (per the `(weight, edge-id)`
/// tie-break) together with simulated round counts. `root` is the BFS-tree
/// root used for shortcut construction.
///
/// # Panics
///
/// Panics if `g` is empty, a weight exceeds `2³¹ - 1`, or the phase cap is
/// hit (indicates a bug — expected phases are `O(log n)`).
pub fn distributed_mst(
    g: &Graph,
    weights: &EdgeWeights,
    root: NodeId,
    cfg: &BoruvkaConfig,
) -> MstReport {
    let n = g.num_nodes();
    assert!(n > 0, "empty graph");
    for (_, w) in weights.iter() {
        assert!(w < (1 << 31), "weights must fit in 31 bits");
    }
    let max_phases = cfg
        .max_phases
        .unwrap_or(4 * (usize::BITS - n.leading_zeros()) as usize + 16);
    let tree = lcs_graph::bfs::bfs_tree(g, root);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // Fragment state (centralized bookkeeping of the distributed state).
    let mut fragment_of: Vec<u32> = (0..n as u32).collect();
    let mut mst: Vec<EdgeId> = Vec::new();
    let mut rounds = MstRounds::default();
    let mut messages = 0u64;
    let mut bits = 0u64;
    let mut phases = 0usize;

    loop {
        // Build the current fragment partition.
        let mut members: std::collections::BTreeMap<u32, Vec<NodeId>> = Default::default();
        for v in g.nodes() {
            members.entry(fragment_of[v.index()]).or_default().push(v);
        }
        let frag_ids: Vec<u32> = members.keys().copied().collect();
        let parts: Vec<Vec<NodeId>> = members.values().cloned().collect();
        let k = parts.len();
        let partition = Partition::from_parts(g, parts).expect("fragments stay connected");
        let frag_index = |fid: u32| frag_ids.binary_search(&fid).expect("known fragment");

        // Local MWOE per node: lightest incident edge leaving the fragment.
        // Distributedly this needs one round of neighbor id exchange.
        rounds.exchange += 1;
        messages += 2 * g.num_edges() as u64;
        // Fragment ids are id payloads: one id per directed edge.
        bits += 2 * g.num_edges() as u64 * id_bits(n) as u64;
        let mut local: Vec<u64> = vec![u64::MAX; n];
        let mut any_outgoing = false;
        for v in g.nodes() {
            for nb in g.neighbors(v) {
                if fragment_of[v.index()] != fragment_of[nb.node.index()] {
                    let p = pack(weights.weight(nb.edge), nb.edge);
                    if p < local[v.index()] {
                        local[v.index()] = p;
                    }
                    any_outgoing = true;
                }
            }
        }
        if !any_outgoing || k <= 1 {
            break;
        }
        phases += 1;
        assert!(phases <= max_phases, "Boruvka phase cap hit");

        // Shortcuts for the fragments (only parts inside the BFS tree's
        // component can be served; on connected graphs that is everything).
        let shortcut = provide_shortcuts(
            g,
            &tree,
            root,
            &partition,
            &cfg.provider,
            cfg.skip_small_fragments,
            &mut rounds,
            &mut messages,
            &mut bits,
        );

        // MWOE aggregation per fragment.
        let agg = solve_partwise(
            g,
            &partition,
            &shortcut,
            &local,
            AggOp::Min,
            None,
            &cfg.partwise,
        );
        rounds.aggregation += agg.metrics.rounds;
        messages += agg.metrics.messages;
        bits += agg.metrics.bits;
        debug_assert!(agg.all_members_informed);

        // Coin flips and merge decisions (tail -> head).
        let coins: Vec<bool> = (0..k).map(|_| rng.gen_bool(0.5)).collect();
        let mut new_id: Vec<Option<u32>> = vec![None; k];
        for i in 0..k {
            let Some(p) = agg.results[i] else { continue };
            if p == u64::MAX {
                continue; // no outgoing edge: fragment is a finished component
            }
            let e = unpack(p);
            if !mst.contains(&e) {
                mst.push(e); // every MWOE is safe by the cut property
            }
            let (u, v) = g.endpoints(e);
            let (fu, fv) = (fragment_of[u.index()], fragment_of[v.index()]);
            let my = frag_ids[i];
            let target = if fu == my { fv } else { fu };
            let ti = frag_index(target);
            // Tail merges into head.
            if !coins[i] && coins[ti] {
                new_id[i] = Some(target);
            }
        }

        // Merge-notification broadcast: the member adjacent to the MWOE
        // knows the target id; a Max aggregation delivers it to the whole
        // fragment. Fragments that stay put broadcast 0.
        let mut notify: Vec<u64> = vec![0; n];
        for (i, nid) in new_id.iter().enumerate() {
            if let Some(target) = nid {
                let e = unpack(agg.results[i].expect("merging fragment has MWOE"));
                let (u, v) = g.endpoints(e);
                let inside = if fragment_of[u.index()] == frag_ids[i] {
                    u
                } else {
                    v
                };
                notify[inside.index()] = u64::from(*target) + 1;
            }
        }
        let note = solve_partwise(
            g,
            &partition,
            &shortcut,
            &notify,
            AggOp::Max,
            None,
            &cfg.partwise,
        );
        rounds.notification += note.metrics.rounds;
        messages += note.metrics.messages;
        bits += note.metrics.bits;

        // Apply merges.
        for (i, fid) in frag_ids.iter().enumerate() {
            let Some(res) = note.results[i] else { continue };
            if res > 0 {
                let target = (res - 1) as u32;
                for v in g.nodes() {
                    if fragment_of[v.index()] == *fid {
                        fragment_of[v.index()] = target;
                    }
                }
            }
        }
    }

    mst.sort_unstable();
    let total_weight = weights.total(mst.iter().copied());
    MstReport {
        edges: mst,
        total_weight,
        phases,
        rounds,
        messages,
        bits,
    }
}

/// Distributed Boruvka MST as a session-drivable operation
/// ([`PartwiseOp`]): the session supplies graph, root, the edge weights
/// (the `Weights` input — set via the builder's `.weights(..)` or
/// `session.set_weights(..)`), and the shortcut provider matching its
/// backend (centralized oracle for [`Backend::Centralized`], the simulated
/// Theorem 1.5 construction for [`Backend::Distributed`] /
/// [`Backend::Sketch`]); per-phase fragment partitions are built by the
/// algorithm itself.
///
/// The [`MstReport`] is cached as a weight-scoped session artifact
/// (`deps::WEIGHTED`): repeated calls reuse it until the weights (or
/// topology/sim config) change — partition churn does not evict it.
#[derive(Clone, Copy, Debug, Default)]
pub struct MstOp;

impl PartwiseOp for MstOp {
    type Output = MstReport;

    fn run(self, session: &mut ShortcutSession<'_>) -> OpReport<MstReport> {
        let report = session.op_artifact_with(deps::WEIGHTED, |s| {
            let cfg = boruvka_config_of(s);
            distributed_mst(s.graph(), s.weights(), s.root(), &cfg)
        });
        let cfg = boruvka_config_of(session);
        op_report(session.graph(), &cfg, (*report).clone())
    }
}

/// Assembles the legacy [`BoruvkaConfig`] from a session's backend and
/// [`SessionConfig`](lcs_core::session::SessionConfig) knobs.
pub fn boruvka_config_of(session: &ShortcutSession<'_>) -> BoruvkaConfig {
    let sc = session.config();
    let provider = match session.backend() {
        Backend::Centralized => ShortcutProvider::MinorSweepOracle(sc.shortcut),
        Backend::Distributed(sim) => ShortcutProvider::MinorSweepDistributed(
            sc.shortcut,
            DistConfig {
                mode: DistMode::Exact,
                sim: *sim,
            },
        ),
        Backend::Sketch(dist) => ShortcutProvider::MinorSweepDistributed(sc.shortcut, *dist),
    };
    BoruvkaConfig {
        provider,
        partwise: PartwiseConfig {
            delay_range: sc.aggregate.delay_range,
            seed: sc.aggregate.seed,
            sim: sc.mst_sim(),
        },
        seed: sc.mst.seed,
        max_phases: sc.mst.max_phases,
        skip_small_fragments: sc.mst.skip_small_fragments,
    }
}

/// Resolves `(effective threads, bandwidth bits)` — the execution
/// configuration an [`OpReport`] records — for a simulator setting on `g`.
pub(crate) fn exec_config(g: &Graph, sim: lcs_congest::SimConfig) -> (usize, usize) {
    let s = lcs_congest::Simulator::new(g, sim);
    (s.effective_threads(), s.bandwidth_bits())
}

/// Wraps an [`MstReport`] into the uniform [`OpReport`], resolving the
/// execution configuration from the Boruvka simulator settings.
pub(crate) fn op_report(g: &Graph, cfg: &BoruvkaConfig, report: MstReport) -> OpReport<MstReport> {
    let (threads, bandwidth_bits) = exec_config(g, cfg.partwise.sim);
    OpReport {
        rounds: report.rounds.total(),
        messages: report.messages,
        bits: report.bits,
        quality: None,
        threads,
        bandwidth_bits,
        result: report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::gen;

    fn check_matches_kruskal(g: &Graph, seed: u64, cfg: &BoruvkaConfig) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let w = EdgeWeights::random_unique(g, &mut rng);
        let reference = kruskal(g, &w);
        let report = distributed_mst(g, &w, NodeId(0), cfg);
        assert_eq!(report.edges, reference, "MST edge sets differ");
        assert_eq!(report.total_weight, w.total(reference));
        assert!(report.phases >= 1);
    }

    #[test]
    fn kruskal_on_path_takes_all_edges() {
        let g = gen::path(6);
        let w = EdgeWeights::unit(&g);
        assert_eq!(kruskal(&g, &w).len(), 5);
    }

    #[test]
    fn matches_kruskal_on_grid() {
        let g = gen::grid(7, 7);
        check_matches_kruskal(&g, 11, &BoruvkaConfig::default());
    }

    #[test]
    fn matches_kruskal_on_torus() {
        let g = gen::torus(5, 5);
        check_matches_kruskal(&g, 12, &BoruvkaConfig::default());
    }

    #[test]
    fn matches_kruskal_with_baseline_provider() {
        let g = gen::grid(6, 6);
        let cfg = BoruvkaConfig {
            provider: ShortcutProvider::Baseline,
            ..BoruvkaConfig::default()
        };
        check_matches_kruskal(&g, 13, &cfg);
    }

    #[test]
    fn matches_kruskal_with_no_shortcuts() {
        let g = gen::wheel(20);
        let cfg = BoruvkaConfig {
            provider: ShortcutProvider::None,
            ..BoruvkaConfig::default()
        };
        check_matches_kruskal(&g, 14, &cfg);
    }

    #[test]
    fn matches_kruskal_with_distributed_construction() {
        let g = gen::grid(6, 6);
        let cfg = BoruvkaConfig {
            provider: ShortcutProvider::MinorSweepDistributed(
                ShortcutConfig::default(),
                DistConfig::default(),
            ),
            ..BoruvkaConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(15);
        let w = EdgeWeights::random_unique(&g, &mut rng);
        let reference = kruskal(&g, &w);
        let report = distributed_mst(&g, &w, NodeId(0), &cfg);
        assert_eq!(report.edges, reference);
        assert!(report.rounds.construction > 0);
    }

    #[test]
    fn spanning_forest_on_disconnected_graph() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5), (3, 5)]);
        let w = EdgeWeights::unit(&g);
        let report = distributed_mst(&g, &w, NodeId(0), &BoruvkaConfig::default());
        // Forest: 2 + 2 edges.
        assert_eq!(report.edges.len(), 4);
        assert_eq!(report.edges, kruskal(&g, &w));
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::from_edges(1, []);
        let w = EdgeWeights::unit(&g);
        let report = distributed_mst(&g, &w, NodeId(0), &BoruvkaConfig::default());
        assert!(report.edges.is_empty());
        assert_eq!(report.phases, 0);
    }

    use lcs_graph::Graph;
}
