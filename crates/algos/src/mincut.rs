//! Minimum cuts: exact Stoer–Wagner (centralized reference) and the
//! distributed greedy-tree-packing approximation (Corollary 1.7).
//!
//! The distributed algorithm packs spanning trees greedily — each tree is a
//! minimum spanning tree with respect to the current edge loads, computed by
//! the shortcut-based Boruvka in `Õ(δD)` simulated rounds — and evaluates,
//! for every packed tree, the best cut that *1-respects* it (cuts exactly
//! one tree edge). Every reported value is a realized cut, hence an upper
//! bound on `λ`; by tree-packing theory (Thorup) enough trees make some
//! tree cross the minimum cut at most twice, and small cuts (`λ <= 2δ`, the
//! regime of Corollary 1.7) are typically 1-respected and found exactly —
//! measured in experiment E7. The full 2-respecting evaluation is provided
//! centrally ([`min_two_respecting_cut`], [`exact_mincut_via_packing`]) for
//! exactness verification; only its *distributed* dynamic program is out of
//! scope (DESIGN.md §3.5).
//!
//! Round accounting: tree construction rounds are fully simulated; the
//! 1-respecting evaluation is the classic subtree-sum convergecast whose
//! deg-sum half is simulated and whose LCA-token half is computed centrally
//! (charged as zero; `O(D + load)` rounds in theory).

use crate::mst::{boruvka_config_of, distributed_mst, BoruvkaConfig, MstRounds};
use lcs_congest::protocols::{AggOp, ConvergecastProgram, TreeKnowledge};
use lcs_congest::Simulator;
use lcs_core::session::{deps, OpReport, PartwiseOp, ShortcutSession};
use lcs_graph::weights::EdgeWeights;
use lcs_graph::{bfs, components, EdgeId, Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Exact minimum cut by Stoer–Wagner (`O(n³)`); returns 0 for disconnected
/// graphs. Unit edge weights (edge connectivity).
///
/// # Panics
///
/// Panics if the graph has fewer than 2 nodes.
pub fn stoer_wagner(g: &Graph) -> u64 {
    stoer_wagner_weighted(g, &EdgeWeights::unit(g))
}

/// Exact weighted minimum cut by Stoer–Wagner.
///
/// # Panics
///
/// Panics if the graph has fewer than 2 nodes.
pub fn stoer_wagner_weighted(g: &Graph, weights: &EdgeWeights) -> u64 {
    let n = g.num_nodes();
    assert!(n >= 2, "minimum cut needs at least two nodes");
    if !components::is_connected(g) {
        return 0;
    }
    // Dense weight matrix over supernodes.
    let mut w = vec![vec![0u64; n]; n];
    for er in g.edges() {
        w[er.u.index()][er.v.index()] += weights.weight(er.id);
        w[er.v.index()][er.u.index()] += weights.weight(er.id);
    }
    let mut active: Vec<usize> = (0..n).collect();
    let mut best = u64::MAX;
    while active.len() > 1 {
        // Maximum-adjacency order.
        let mut key = vec![0u64; n];
        let mut in_a = vec![false; n];
        let mut order = Vec::with_capacity(active.len());
        for _ in 0..active.len() {
            let &next = active
                .iter()
                .filter(|&&v| !in_a[v])
                .max_by_key(|&&v| key[v])
                .expect("active nodes remain");
            in_a[next] = true;
            order.push(next);
            for &v in &active {
                if !in_a[v] {
                    key[v] += w[next][v];
                }
            }
        }
        let t = *order.last().expect("non-empty order");
        let s = order[order.len() - 2];
        best = best.min(key[t]);
        // Merge t into s.
        for &v in &active {
            if v != s && v != t {
                w[s][v] += w[t][v];
                w[v][s] = w[s][v];
            }
        }
        active.retain(|&v| v != t);
    }
    best
}

/// Configuration of [`approx_mincut_distributed`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MincutConfig {
    /// Number of trees to pack; `None` = `min(min_degree, 2·⌈ln n⌉ + 4)`.
    pub trees: Option<usize>,
    /// Boruvka settings for each packed tree.
    pub boruvka: BoruvkaConfig,
}

/// Result of [`approx_mincut_distributed`].
#[derive(Clone, Debug)]
pub struct MincutReport {
    /// The best (smallest) 1-respecting cut found — an upper bound on `λ`.
    pub estimate: u64,
    /// Trees packed.
    pub trees: usize,
    /// Simulated rounds of the tree constructions.
    pub rounds: MstRounds,
    /// Additional simulated rounds of the evaluation convergecasts.
    pub eval_rounds: u64,
    /// Total simulated messages (tree constructions + evaluations).
    pub messages: u64,
    /// Total simulated bits.
    pub bits: u64,
}

/// Distributed (simulated) min-cut approximation by greedy tree packing +
/// 1-respecting cuts.
///
/// # Panics
///
/// Panics if `g` is disconnected or has fewer than 2 nodes.
pub fn approx_mincut_distributed(g: &Graph, root: NodeId, cfg: &MincutConfig) -> MincutReport {
    assert!(g.num_nodes() >= 2, "minimum cut needs at least two nodes");
    assert!(components::is_connected(g), "graph must be connected");
    let n = g.num_nodes();
    let q = cfg.trees.unwrap_or_else(|| {
        let by_degree = g.min_degree().max(1);
        by_degree.min(2 * (n as f64).ln().ceil() as usize + 4)
    });

    let mut loads = EdgeWeights::from_vec(g, vec![1; g.num_edges()]);
    let mut rounds = MstRounds::default();
    let mut eval_rounds = 0u64;
    let mut messages = 0u64;
    let mut bits = 0u64;
    let mut best = u64::MAX;

    for _ in 0..q {
        let report = distributed_mst(g, &loads, root, &cfg.boruvka);
        rounds.exchange += report.rounds.exchange;
        rounds.construction += report.rounds.construction;
        rounds.aggregation += report.rounds.aggregation;
        rounds.notification += report.rounds.notification;
        messages += report.messages;
        bits += report.bits;

        // Orient the packed tree and evaluate its 1-respecting cuts.
        let tree = tree_from_edges(g, &report.edges, root);
        best = best.min(min_one_respecting_cut(g, &tree));

        // Simulate the deg-sum convergecast of the evaluation (one per
        // tree); the LCA-token half is centralized (see module docs).
        let tk = TreeKnowledge::from_rooted_tree(g, &tree);
        let sim = Simulator::new(g, cfg.boruvka.partwise.sim);
        let run = sim.run(|v, _| ConvergecastProgram::new(&tk, v, AggOp::Sum, g.degree(v) as u64));
        eval_rounds += run.metrics.rounds;
        messages += run.metrics.messages;
        bits += run.metrics.bits;

        // Increase loads along the tree.
        for &e in &report.edges {
            *loads.weight_mut(e) += 1;
        }
    }

    MincutReport {
        estimate: best,
        trees: q,
        rounds,
        eval_rounds,
        messages,
        bits,
    }
}

/// The min-cut approximation as a session-drivable operation
/// ([`PartwiseOp`]): greedy tree packing over the session's root and
/// backend-derived shortcut provider.
#[derive(Clone, Copy, Debug, Default)]
pub struct MincutOp;

impl PartwiseOp for MincutOp {
    type Output = MincutReport;

    fn run(self, session: &mut ShortcutSession<'_>) -> OpReport<MincutReport> {
        let mincut_config = |s: &ShortcutSession<'_>| {
            let boruvka = boruvka_config_of(s);
            MincutConfig {
                trees: s.config().mincut.trees,
                boruvka: BoruvkaConfig {
                    partwise: lcs_partwise::PartwiseConfig {
                        sim: s.config().mincut_sim(),
                        ..boruvka.partwise
                    },
                    ..boruvka
                },
            }
        };
        // Purely topology-scoped: partition and weight churn keep the
        // cached report alive.
        let report = session.op_artifact_with(deps::TOPOLOGY_ONLY, |s| {
            approx_mincut_distributed(s.graph(), s.root(), &mincut_config(s))
        });
        let cfg = mincut_config(session);
        let (threads, bandwidth_bits) =
            crate::mst::exec_config(session.graph(), cfg.boruvka.partwise.sim);
        OpReport {
            rounds: report.rounds.total() + report.eval_rounds,
            messages: report.messages,
            bits: report.bits,
            quality: None,
            threads,
            bandwidth_bits,
            result: (*report).clone(),
        }
    }
}

/// Builds a [`lcs_graph::RootedTree`] from a spanning-tree edge set.
fn tree_from_edges(g: &Graph, edges: &[EdgeId], root: NodeId) -> lcs_graph::RootedTree {
    let mut allowed = vec![false; g.num_edges()];
    for &e in edges {
        allowed[e.index()] = true;
    }
    let res = bfs::bfs_filtered(g, &[root], |e, _| allowed[e.index()]);
    lcs_graph::RootedTree::from_parents(g, root, &res.parent, &res.dist, &res.order)
}

/// The minimum, over tree edges `e`, of the number of graph edges crossing
/// the subtree below `v_e` (the 1-respecting cut values).
///
/// Uses the `+1, +1, -2·lca` contribution trick with subtree sums.
fn min_one_respecting_cut(g: &Graph, tree: &lcs_graph::RootedTree) -> u64 {
    let n = g.num_nodes();
    let mut contrib = vec![0i64; n];
    for v in g.nodes() {
        contrib[v.index()] = g.degree(v) as i64;
    }
    for er in g.edges() {
        let l = lca(tree, er.u, er.v);
        contrib[l.index()] -= 2;
    }
    // Subtree sums, deepest first.
    let mut best = u64::MAX;
    let mut sum = contrib;
    for v in tree.order_deepest_first() {
        if let Some((p, _)) = tree.parent(v) {
            sum[p.index()] += sum[v.index()];
            // sum[v] counts each crossing edge once and each internal edge
            // of the subtree zero times.
            best = best.min(sum[v.index()] as u64);
        }
    }
    best
}

/// The minimum cut that *2-respects* the tree (cuts exactly one or two tree
/// edges) — Thorup's theorem guarantees that with enough greedily packed
/// trees, some packed tree 2-respects a minimum cut, making
/// [`exact_mincut_via_packing`] exact.
///
/// `O(n²·m)` pair enumeration with interval labels; intended for
/// verification on moderate instances (the distributed dynamic program is
/// out of scope, see DESIGN.md §3.5).
pub fn min_two_respecting_cut(g: &Graph, tree: &lcs_graph::RootedTree) -> u64 {
    let n = g.num_nodes();
    // DFS interval labels over the tree.
    let mut tin = vec![0u32; n];
    let mut tout = vec![0u32; n];
    let mut clock = 0u32;
    let mut stack = vec![(tree.root(), false)];
    while let Some((v, processed)) = stack.pop() {
        if processed {
            tout[v.index()] = clock;
            continue;
        }
        tin[v.index()] = clock;
        clock += 1;
        stack.push((v, true));
        for &ch in tree.children(v) {
            stack.push((ch, false));
        }
    }
    let in_subtree = |root: NodeId, v: NodeId| -> bool {
        tin[root.index()] <= tin[v.index()] && tin[v.index()] < tout[root.index()]
    };

    // 1-respecting values C(e) for every tree edge (indexed by v_e).
    let mut contrib = vec![0i64; n];
    for v in g.nodes() {
        contrib[v.index()] = g.degree(v) as i64;
    }
    for er in g.edges() {
        let l = lca(tree, er.u, er.v);
        contrib[l.index()] -= 2;
    }
    let mut c1 = contrib;
    let mut best = u64::MAX;
    for v in tree.order_deepest_first() {
        if let Some((p, _)) = tree.parent(v) {
            c1[p.index()] += c1[v.index()];
            best = best.min(c1[v.index()] as u64);
        }
    }

    // All pairs of tree edges, identified by their deeper endpoints.
    let edges: Vec<NodeId> = tree.tree_edges().map(|(_, ve)| ve).collect();
    for (i, &a) in edges.iter().enumerate() {
        for &b in edges.iter().skip(i + 1) {
            let cut = if in_subtree(a, b) {
                // S_b ⊂ S_a: crossing(S_a \ S_b) needs edges S_b ↔ V∖S_a.
                let mut cross = 0i64;
                for er in g.edges() {
                    let (bu, bv) = (in_subtree(b, er.u), in_subtree(b, er.v));
                    let (au, av) = (in_subtree(a, er.u), in_subtree(a, er.v));
                    // one endpoint in S_b, the other outside S_a
                    if (bu && !av) || (bv && !au) {
                        cross += 1;
                    }
                }
                c1[a.index()] + c1[b.index()] - 2 * cross
            } else if in_subtree(b, a) {
                let mut cross = 0i64;
                for er in g.edges() {
                    let (au, av) = (in_subtree(a, er.u), in_subtree(a, er.v));
                    let (bu, bv) = (in_subtree(b, er.u), in_subtree(b, er.v));
                    if (au && !bv) || (av && !bu) {
                        cross += 1;
                    }
                }
                c1[a.index()] + c1[b.index()] - 2 * cross
            } else {
                // Disjoint subtrees: X = S_a ∪ S_b.
                let mut cross = 0i64;
                for er in g.edges() {
                    let (au, av) = (in_subtree(a, er.u), in_subtree(a, er.v));
                    let (bu, bv) = (in_subtree(b, er.u), in_subtree(b, er.v));
                    if (au && bv) || (av && bu) {
                        cross += 1;
                    }
                }
                c1[a.index()] + c1[b.index()] - 2 * cross
            };
            debug_assert!(cut >= 0, "cut values are non-negative");
            if cut > 0 {
                best = best.min(cut as u64);
            }
        }
    }
    best
}

/// Exact minimum cut via greedy tree packing and 2-respecting evaluation —
/// the centralized realization of the Corollary 1.7 pipeline, exact once
/// enough trees are packed (Thorup). Used to validate the distributed
/// 1-respecting approximation.
///
/// # Panics
///
/// Panics like [`approx_mincut_distributed`].
pub fn exact_mincut_via_packing(g: &Graph, root: NodeId, trees: usize) -> u64 {
    assert!(g.num_nodes() >= 2, "minimum cut needs at least two nodes");
    assert!(components::is_connected(g), "graph must be connected");
    let mut loads = EdgeWeights::from_vec(g, vec![1; g.num_edges()]);
    let mut best = u64::MAX;
    for _ in 0..trees {
        let forest = crate::mst::kruskal(g, &loads);
        let tree = tree_from_edges(g, &forest, root);
        best = best.min(min_two_respecting_cut(g, &tree));
        for &e in &forest {
            *loads.weight_mut(e) += 1;
        }
    }
    best
}

fn lca(tree: &lcs_graph::RootedTree, mut a: NodeId, mut b: NodeId) -> NodeId {
    while tree.depth(a) > tree.depth(b) {
        a = tree.parent(a).expect("deeper node has parent").0;
    }
    while tree.depth(b) > tree.depth(a) {
        b = tree.parent(b).expect("deeper node has parent").0;
    }
    while a != b {
        a = tree.parent(a).expect("non-root").0;
        b = tree.parent(b).expect("non-root").0;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::gen;

    #[test]
    fn stoer_wagner_basics() {
        assert_eq!(stoer_wagner(&gen::cycle(8)), 2);
        assert_eq!(stoer_wagner(&gen::path(5)), 1);
        assert_eq!(stoer_wagner(&gen::complete(5)), 4);
        assert_eq!(stoer_wagner(&gen::grid(4, 4)), 2);
        // Disconnected: cut 0.
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(stoer_wagner(&g), 0);
    }

    #[test]
    fn stoer_wagner_weighted_bridge() {
        // Two triangles joined by a light bridge.
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let mut w = vec![10; 7];
        w[6] = 3; // the bridge (2,3)
        let weights = EdgeWeights::from_vec(&g, w);
        assert_eq!(stoer_wagner_weighted(&g, &weights), 3);
    }

    #[test]
    fn one_respecting_finds_bridges_exactly() {
        let g = Graph::from_edges(
            7,
            [
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (5, 6),
            ],
        );
        let rep = approx_mincut_distributed(&g, NodeId(0), &MincutConfig::default());
        assert_eq!(rep.estimate, 1); // the pendant edge (5,6)
        assert_eq!(rep.estimate, stoer_wagner(&g));
    }

    #[test]
    fn cycle_and_grid_cuts_found() {
        for g in [gen::cycle(10), gen::grid(5, 5), gen::torus(4, 4)] {
            let rep = approx_mincut_distributed(&g, NodeId(0), &MincutConfig::default());
            let exact = stoer_wagner(&g);
            assert!(rep.estimate >= exact, "estimate below true min cut");
            assert_eq!(rep.estimate, exact, "small cuts should be found exactly");
            assert!(rep.trees >= 1);
        }
    }

    #[test]
    fn two_respecting_is_exact_on_small_graphs() {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(31);
        let cases = vec![
            gen::cycle(12),
            gen::grid(4, 5),
            gen::torus(4, 4),
            gen::wheel(12),
            gen::complete(7),
            gen::gnm_connected(24, 50, &mut rng),
            gen::gnm_connected(30, 45, &mut rng),
        ];
        for g in cases {
            let exact = stoer_wagner(&g);
            let packed = exact_mincut_via_packing(&g, NodeId(0), (exact as usize + 2).min(8));
            assert_eq!(packed, exact, "packing+2-respecting must be exact");
        }
    }

    #[test]
    fn two_respecting_beats_one_respecting_on_even_cuts() {
        // A dumbbell: two K_5 joined by two parallel-ish paths. λ = 2 but
        // the two cut edges can land in different 1-respecting positions.
        let g = Graph::from_edges(
            10,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 2),
                (1, 3),
                (1, 4),
                (2, 3),
                (2, 4),
                (3, 4),
                (5, 6),
                (5, 7),
                (5, 8),
                (5, 9),
                (6, 7),
                (6, 8),
                (6, 9),
                (7, 8),
                (7, 9),
                (8, 9),
                (0, 5),
                (4, 9),
            ],
        );
        assert_eq!(stoer_wagner(&g), 2);
        assert_eq!(exact_mincut_via_packing(&g, NodeId(0), 6), 2);
    }

    #[test]
    fn estimate_is_always_an_upper_bound() {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(21);
        let g = gen::gnm_connected(30, 60, &mut rng);
        let rep = approx_mincut_distributed(&g, NodeId(0), &MincutConfig::default());
        assert!(rep.estimate >= stoer_wagner(&g));
    }

    use lcs_graph::Graph;
}
