//! Shortcut-based distributed graph algorithms (the paper's Corollaries),
//! with centralized references.
//!
//! * [`mst`] — Boruvka's MST over part-wise aggregation (Corollary 1.6),
//!   checked against Kruskal; pluggable shortcut providers (minor-sweep,
//!   `D+√n` baseline, none).
//! * [`connectivity`] — spanning forest / connected components as unweighted
//!   Boruvka.
//! * [`mincut`] — minimum cut: exact Stoer–Wagner reference and the
//!   distributed greedy-tree-packing approximation (Corollary 1.7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connectivity;
pub mod mincut;
pub mod mst;
pub mod session_ops;

pub use session_ops::SessionAlgoOps;
