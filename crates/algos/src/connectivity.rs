//! Connected components / spanning forests, distributed (unweighted
//! Boruvka) and centralized.
//!
//! "Subgraph connectivity" is among the paper's listed applications: with
//! unit weights, the MST machinery computes a spanning forest, and fragment
//! ids at fixpoint are component labels, in `Õ(δD)` rounds per phase.

use crate::mst::{boruvka_config_of, distributed_mst, BoruvkaConfig, MstReport};
use lcs_core::session::{deps, OpReport, PartwiseOp, ShortcutSession};
use lcs_graph::weights::EdgeWeights;
use lcs_graph::{Graph, NodeId, UnionFind};

/// Result of [`distributed_components`].
#[derive(Clone, Debug)]
pub struct ComponentsReport {
    /// Dense component label per node.
    pub label: Vec<u32>,
    /// Number of connected components.
    pub count: usize,
    /// The underlying spanning-forest run.
    pub mst: MstReport,
}

/// Computes connected components distributedly via unit-weight Boruvka.
///
/// # Panics
///
/// Panics like [`distributed_mst`].
pub fn distributed_components(g: &Graph, root: NodeId, cfg: &BoruvkaConfig) -> ComponentsReport {
    let weights = EdgeWeights::unit(g);
    let mst = distributed_mst(g, &weights, root, cfg);
    let mut uf = UnionFind::new(g.num_nodes());
    for &e in &mst.edges {
        let (u, v) = g.endpoints(e);
        uf.union(u.index(), v.index());
    }
    let mut label = vec![u32::MAX; g.num_nodes()];
    let mut next = 0u32;
    for v in g.nodes() {
        let r = uf.find(v.index());
        if label[r] == u32::MAX {
            label[r] = next;
            next += 1;
        }
        label[v.index()] = label[r];
    }
    ComponentsReport {
        label,
        count: next as usize,
        mst,
    }
}

/// Connected components as a session-drivable operation ([`PartwiseOp`]):
/// unit-weight Boruvka over the session's root and backend-derived
/// shortcut provider.
#[derive(Clone, Copy, Debug, Default)]
pub struct ComponentsOp;

impl PartwiseOp for ComponentsOp {
    type Output = ComponentsReport;

    fn run(self, session: &mut ShortcutSession<'_>) -> OpReport<ComponentsReport> {
        // Purely topology-scoped: partition and weight churn keep the
        // cached report alive.
        let report = session.op_artifact_with(deps::TOPOLOGY_ONLY, |s| {
            let cfg = boruvka_config_of(s);
            distributed_components(s.graph(), s.root(), &cfg)
        });
        let cfg = boruvka_config_of(session);
        let (threads, bandwidth_bits) = crate::mst::exec_config(session.graph(), cfg.partwise.sim);
        OpReport {
            rounds: report.mst.rounds.total(),
            messages: report.mst.messages,
            bits: report.mst.bits,
            quality: None,
            threads,
            bandwidth_bits,
            result: (*report).clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::{components, gen};

    #[test]
    fn single_component_grid() {
        let g = gen::grid(5, 5);
        let rep = distributed_components(&g, NodeId(0), &BoruvkaConfig::default());
        assert_eq!(rep.count, 1);
        assert_eq!(rep.mst.edges.len(), 24);
        assert!(rep.label.iter().all(|&l| l == rep.label[0]));
    }

    #[test]
    fn matches_centralized_components() {
        let g = Graph::from_edges(8, [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (5, 7)]);
        let rep = distributed_components(&g, NodeId(0), &BoruvkaConfig::default());
        let reference = components::connected_components(&g);
        assert_eq!(rep.count, reference.count);
        // Labels agree up to renaming: same label iff same component.
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(
                    rep.label[u.index()] == rep.label[v.index()],
                    reference.label[u.index()] == reference.label[v.index()]
                );
            }
        }
    }

    use lcs_graph::Graph;
}
