//! The algorithms half of the [`ShortcutSession`] operation surface:
//! method-call sugar over [`PartwiseOp`] for MST, connectivity, and
//! min-cut.
//!
//! [`PartwiseOp`]: lcs_core::session::PartwiseOp
//! [`ShortcutSession`]: lcs_core::session::ShortcutSession

use crate::connectivity::{ComponentsOp, ComponentsReport};
use crate::mincut::{MincutOp, MincutReport};
use crate::mst::{MstOp, MstReport};
use lcs_core::session::{OpReport, ShortcutSession};
use lcs_graph::weights::EdgeWeights;

/// Shortcut-based distributed algorithms served by a
/// [`ShortcutSession`]. The shortcut provider of every Boruvka phase is
/// derived from the session's backend: the centralized Theorem 1.2 oracle
/// for `Backend::Centralized`, the simulated Theorem 1.5 construction for
/// `Backend::Distributed` / `Backend::Sketch`.
///
/// ```
/// use lcs_algos::SessionAlgoOps;
/// use lcs_core::session::Session;
/// use lcs_graph::{gen, weights::EdgeWeights};
///
/// let g = gen::grid(5, 5);
/// let mut session = Session::on(&g).build()?;
/// let weights = EdgeWeights::unit(&g);
/// let mst = session.mst(&weights);
/// assert_eq!(mst.result.edges.len(), 24);
/// let comps = session.components();
/// assert_eq!(comps.result.count, 1);
/// # Ok::<(), lcs_core::PartitionError>(())
/// ```
pub trait SessionAlgoOps {
    /// Exact minimum spanning forest by shortcut-based Boruvka
    /// (Corollary 1.6; [`distributed_mst`](crate::mst::distributed_mst)
    /// semantics). Stores `weights` as the session's `Weights` input (a
    /// no-op when unchanged) and caches the report until that input — or
    /// the topology / sim config — changes.
    fn mst(&mut self, weights: &EdgeWeights) -> OpReport<MstReport>;

    /// Connected components by unit-weight Boruvka
    /// ([`distributed_components`](crate::connectivity::distributed_components)
    /// semantics).
    fn components(&mut self) -> OpReport<ComponentsReport>;

    /// Min-cut upper bound by greedy tree packing + 1-respecting cuts
    /// (Corollary 1.7;
    /// [`approx_mincut_distributed`](crate::mincut::approx_mincut_distributed)
    /// semantics).
    fn mincut(&mut self) -> OpReport<MincutReport>;
}

impl SessionAlgoOps for ShortcutSession<'_> {
    fn mst(&mut self, weights: &EdgeWeights) -> OpReport<MstReport> {
        self.set_weights(weights.clone());
        self.run(MstOp)
    }

    fn components(&mut self) -> OpReport<ComponentsReport> {
        self.run(ComponentsOp)
    }

    fn mincut(&mut self) -> OpReport<MincutReport> {
        self.run(MincutOp)
    }
}
