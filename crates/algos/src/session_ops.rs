//! The algorithms half of the [`ShortcutSession`] operation surface:
//! method-call sugar over [`PartwiseOp`] for MST, connectivity, and
//! min-cut.
//!
//! [`PartwiseOp`]: lcs_core::session::PartwiseOp
//! [`ShortcutSession`]: lcs_core::session::ShortcutSession

use crate::connectivity::{ComponentsOp, ComponentsReport};
use crate::mincut::{MincutOp, MincutReport};
use crate::mst::{MstOp, MstReport};
use lcs_core::session::{OpReport, SessionError, ShortcutSession};
use lcs_graph::components;
use lcs_graph::weights::EdgeWeights;

/// Shortcut-based distributed algorithms served by a
/// [`ShortcutSession`]. The shortcut provider of every Boruvka phase is
/// derived from the session's backend: the centralized Theorem 1.2 oracle
/// for `Backend::Centralized`, the simulated Theorem 1.5 construction for
/// `Backend::Distributed` / `Backend::Sketch`.
///
/// ```
/// use lcs_algos::SessionAlgoOps;
/// use lcs_core::session::Session;
/// use lcs_graph::{gen, weights::EdgeWeights};
///
/// let g = gen::grid(5, 5);
/// let mut session = Session::on(&g).build()?;
/// let weights = EdgeWeights::unit(&g);
/// let mst = session.mst(&weights);
/// assert_eq!(mst.result.edges.len(), 24);
/// let comps = session.components();
/// assert_eq!(comps.result.count, 1);
/// # Ok::<(), lcs_core::PartitionError>(())
/// ```
pub trait SessionAlgoOps {
    /// Exact minimum spanning forest by shortcut-based Boruvka
    /// (Corollary 1.6; [`distributed_mst`](crate::mst::distributed_mst)
    /// semantics). Stores `weights` as the session's `Weights` input (a
    /// no-op when unchanged) and caches the report until that input — or
    /// the topology / sim config — changes.
    fn mst(&mut self, weights: &EdgeWeights) -> OpReport<MstReport>;

    /// Connected components by unit-weight Boruvka
    /// ([`distributed_components`](crate::connectivity::distributed_components)
    /// semantics).
    fn components(&mut self) -> OpReport<ComponentsReport>;

    /// Min-cut upper bound by greedy tree packing + 1-respecting cuts
    /// (Corollary 1.7;
    /// [`approx_mincut_distributed`](crate::mincut::approx_mincut_distributed)
    /// semantics).
    fn mincut(&mut self) -> OpReport<MincutReport>;

    /// [`mst`](Self::mst) with the weight vector validated up front: a
    /// length mismatch or a weight outside the 31-bit budget the protocol
    /// packs ids into comes back as a [`SessionError`] instead of a panic
    /// — the entry point a serving process maps to structured 4xx
    /// responses.
    fn try_mst(&mut self, weights: &EdgeWeights) -> Result<OpReport<MstReport>, SessionError>;

    /// [`components`](Self::components) behind the same fallible signature
    /// as the other `try_` entry points (connectivity itself accepts any
    /// graph, so this only fails on an empty graph).
    fn try_components(&mut self) -> Result<OpReport<ComponentsReport>, SessionError>;

    /// [`mincut`](Self::mincut) with the preconditions checked up front:
    /// fewer than two nodes or a disconnected graph comes back as a
    /// [`SessionError`] instead of a panic.
    fn try_mincut(&mut self) -> Result<OpReport<MincutReport>, SessionError>;
}

impl SessionAlgoOps for ShortcutSession<'_> {
    fn mst(&mut self, weights: &EdgeWeights) -> OpReport<MstReport> {
        self.set_weights(weights.clone());
        self.run(MstOp)
    }

    fn components(&mut self) -> OpReport<ComponentsReport> {
        self.run(ComponentsOp)
    }

    fn mincut(&mut self) -> OpReport<MincutReport> {
        self.run(MincutOp)
    }

    fn try_mst(&mut self, weights: &EdgeWeights) -> Result<OpReport<MstReport>, SessionError> {
        if self.graph().num_nodes() == 0 {
            return Err(SessionError::GraphTooSmall { need: 1, have: 0 });
        }
        if weights.len() != self.graph().num_edges() {
            return Err(SessionError::WeightCountMismatch {
                got: weights.len(),
                expected: self.graph().num_edges(),
            });
        }
        if let Some((edge, weight)) = weights.iter().find(|&(_, w)| w >= (1 << 31)) {
            return Err(SessionError::WeightTooLarge { edge, weight });
        }
        Ok(self.mst(weights))
    }

    fn try_components(&mut self) -> Result<OpReport<ComponentsReport>, SessionError> {
        if self.graph().num_nodes() == 0 {
            return Err(SessionError::GraphTooSmall { need: 1, have: 0 });
        }
        Ok(self.components())
    }

    fn try_mincut(&mut self) -> Result<OpReport<MincutReport>, SessionError> {
        if self.graph().num_nodes() < 2 {
            return Err(SessionError::GraphTooSmall {
                need: 2,
                have: self.graph().num_nodes(),
            });
        }
        if !components::is_connected(self.graph()) {
            return Err(SessionError::GraphDisconnected);
        }
        Ok(self.mincut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_core::session::Session;
    use lcs_graph::{gen, EdgeId, Graph};

    #[test]
    fn try_mst_validates_weights() {
        let g = gen::grid(4, 4);
        let mut s = Session::on(&g).build().unwrap();
        let short = EdgeWeights::unit(&gen::path(3));
        assert_eq!(
            s.try_mst(&short).unwrap_err(),
            SessionError::WeightCountMismatch {
                got: 2,
                expected: g.num_edges()
            }
        );
        let mut heavy = EdgeWeights::unit(&g);
        *heavy.weight_mut(EdgeId(1)) = 1 << 31;
        assert_eq!(
            s.try_mst(&heavy).unwrap_err(),
            SessionError::WeightTooLarge {
                edge: EdgeId(1),
                weight: 1 << 31
            }
        );
        let ok = s.try_mst(&EdgeWeights::unit(&g)).expect("valid weights");
        assert_eq!(ok.result.edges.len(), 15);
    }

    #[test]
    fn try_mincut_validates_preconditions() {
        let single = gen::path(1);
        let mut s = Session::on(&single).build().unwrap();
        assert_eq!(
            s.try_mincut().unwrap_err(),
            SessionError::GraphTooSmall { need: 2, have: 1 }
        );

        // Two isolated nodes: disconnected.
        let disconnected = Graph::from_edges(2, Vec::<(u32, u32)>::new());
        let mut s = Session::on(&disconnected).build().unwrap();
        assert_eq!(s.try_mincut().unwrap_err(), SessionError::GraphDisconnected);

        let g = gen::cycle(6);
        let mut s = Session::on(&g).build().unwrap();
        assert_eq!(
            s.try_mincut().expect("cycle is connected").result.estimate,
            2
        );
        assert_eq!(s.try_components().expect("non-empty").result.count, 1);
    }
}
