//! Structured API errors and their HTTP status mapping.
//!
//! Every handler failure flows through [`ApiError`], which renders as a
//! JSON object `{"error": <code>, "message": <text>, "status": <n>}`. The
//! status mapping is part of the API contract:
//!
//! | status | code             | meaning                                   |
//! |--------|------------------|-------------------------------------------|
//! | 400    | `malformed_json` | body is not valid JSON (or not UTF-8)     |
//! | 404    | `not_found`      | unknown session id or endpoint            |
//! | 404    | `graph_file_not_found` | a graph spec names a file that does not exist |
//! | 405    | `method_not_allowed` | known path, wrong HTTP method         |
//! | 409    | `invalid_mutation` | a mutation failed validation; session unchanged |
//! | 413    | `body_too_large` | request body exceeds the configured cap   |
//! | 422    | `bad_args`       | well-formed body with invalid op arguments |
//! | 422    | `partition_*`    | a session-spec partition failed validation — the code is [`PartitionError::code`] (`partition_disconnected`, `partition_uncovered`, `partition_overlap`, `partition_empty_part`, `partition_out_of_range`) |
//! | 422    | `graph_*`        | a session-spec graph source failed to resolve — the code is [`GraphSourceError::code`] (`graph_invalid_spec`, `graph_json_malformed`, `graph_invalid_edge`, `graph_too_large`, `graph_io`, and the flat-binary loader codes `graph_bad_magic`, `graph_unsupported_version`, `graph_unknown_flags`, `graph_truncated`, `graph_trailing_bytes`, `graph_checksum_mismatch`, `graph_inconsistent`) |
//! | 500    | `internal_panic` | a handler panicked (counted, worker survives) |

use lcs_core::session::SessionError;
use lcs_core::{GraphSourceError, PartitionError};
use serde::Value;
use std::fmt;

/// A structured, HTTP-mappable handler error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Stable machine-readable error code.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// 400 — the body is not parseable JSON.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ApiError {
            status: 400,
            code: "malformed_json",
            message: message.into(),
        }
    }

    /// 404 — unknown session or endpoint.
    pub fn not_found(message: impl Into<String>) -> Self {
        ApiError {
            status: 404,
            code: "not_found",
            message: message.into(),
        }
    }

    /// 405 — the path exists but not for this method.
    pub fn method_not_allowed(method: &str, path: &str) -> Self {
        ApiError {
            status: 405,
            code: "method_not_allowed",
            message: format!("{method} is not supported on {path}"),
        }
    }

    /// 409 — a mutation failed validation; the session is unchanged.
    pub fn conflict(message: impl Into<String>) -> Self {
        ApiError {
            status: 409,
            code: "invalid_mutation",
            message: message.into(),
        }
    }

    /// 413 — the request body exceeds the configured cap.
    pub fn too_large(limit: usize) -> Self {
        ApiError {
            status: 413,
            code: "body_too_large",
            message: format!("request body exceeds the {limit}-byte limit"),
        }
    }

    /// 422 — the body parsed but the op arguments are invalid.
    pub fn bad_args(message: impl Into<String>) -> Self {
        ApiError {
            status: 422,
            code: "bad_args",
            message: message.into(),
        }
    }

    /// 422 — a session-spec partition failed validation. Unlike the
    /// collapsed [`bad_args`](Self::bad_args), the machine-readable code
    /// is the [`PartitionError::code`] variant name, so clients can tell
    /// "part not connected" from "node unassigned" without parsing the
    /// message.
    pub fn unprocessable_partition(e: &PartitionError) -> Self {
        ApiError {
            status: 422,
            code: e.code(),
            message: format!("invalid partition: {e}"),
        }
    }

    /// 422 (or 404 for a missing file) — a session-spec graph source
    /// failed to resolve. The machine-readable code is
    /// [`GraphSourceError::code`], so clients can tell a truncated
    /// `.lcsg` file from a checksum mismatch from malformed edge-list
    /// JSON without parsing the message.
    pub fn unprocessable_graph(e: &GraphSourceError) -> Self {
        let code = e.code();
        ApiError {
            status: if code == "graph_file_not_found" {
                404
            } else {
                422
            },
            code,
            message: format!("invalid graph: {e}"),
        }
    }

    /// 500 — a handler panicked; the worker caught it and kept serving.
    pub fn internal_panic() -> Self {
        ApiError {
            status: 500,
            code: "internal_panic",
            message: "handler panicked; the worker caught it and keeps serving".to_string(),
        }
    }

    /// The JSON body of this error.
    pub fn to_body(&self) -> Value {
        Value::object([
            ("error", Value::Str(self.code.to_string())),
            ("message", Value::Str(self.message.clone())),
            ("status", Value::U64(u64::from(self.status))),
        ])
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.status, self.code, self.message)
    }
}

impl std::error::Error for ApiError {}

impl From<SessionError> for ApiError {
    fn from(e: SessionError) -> Self {
        match e {
            // Mutations that failed validation leave the session unchanged
            // — the 409 class the mutation API promises.
            SessionError::Partition(_) => ApiError::conflict(e.to_string()),
            _ => ApiError::bad_args(e.to_string()),
        }
    }
}

impl From<PartitionError> for ApiError {
    fn from(e: PartitionError) -> Self {
        ApiError::conflict(e.to_string())
    }
}
