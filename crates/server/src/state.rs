//! Shared server state: the graph registry and the warm-session LRU.
//!
//! # Ownership and locking model
//!
//! `ShortcutSession<'g>` borrows its graph, so the daemon gives every
//! served graph a `'static` lifetime by leaking it ([`Box::leak`]) into a
//! **deduplicated, capacity-bounded registry** keyed by the canonical
//! graph spec — the leak is deliberate and bounded: a graph is a few MB,
//! the registry refuses new graphs past its cap (409), and identical
//! specs share one allocation across all sessions.
//!
//! Sessions live behind a two-level locking scheme:
//!
//! 1. the registry's own [`Mutex`] guards the id → entry map and the LRU
//!    order, and is held only for lookups/insertions (microseconds);
//! 2. each [`SessionEntry`] wraps its `ShortcutSession` in a per-session
//!    [`Mutex`] held for the duration of one op — concurrent clients on
//!    *one* session serialize (the artifact cache is single-writer by
//!    design), clients on *different* sessions run in parallel.
//!
//! Lock acquisition ignores poisoning (`PoisonError::into_inner`): a
//! panicking handler must not condemn its session — the epoch-tracked
//! artifact graph is kept consistent by the fallible `try_*` session APIs
//! (validation happens before any state change), so the state behind a
//! poisoned lock is still sound.
//!
//! The LRU is keyed by the canonical JSON of the full session spec
//! `(graph, partition, backend, config)` — re-POSTing an identical spec
//! returns the warm session (a *hit*) instead of rebuilding its artifacts,
//! which is where the serve-many economics of the shortcut session come
//! from. When the capacity is exceeded the least-recently-used session is
//! dropped; in-flight requests holding its `Arc` finish undisturbed.

use crate::error::ApiError;
use crate::json;
use crate::metrics::Metrics;
use lcs_core::session::{Backend, Session, SessionConfig, ShortcutSession};
use lcs_core::{GeneratorSpec, GraphSource, Partition, PartitionSource};
use lcs_graph::weights::EdgeWeights;
use lcs_graph::{gen, Graph, NodeId};
use lcs_separator::SeparatorConfig;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Tunables of one server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Fixed worker-thread count.
    pub workers: usize,
    /// Request-body cap in bytes (413 beyond it).
    pub max_body: usize,
    /// Per-connection read/write timeout.
    pub io_timeout: Duration,
    /// Warm-session LRU capacity.
    pub session_capacity: usize,
    /// Distinct-graph cap (graphs are leaked; this bounds the leak).
    pub graph_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_body: 1 << 20,
            io_timeout: Duration::from_secs(10),
            session_capacity: 16,
            graph_capacity: 32,
        }
    }
}

/// Everything the workers share.
pub struct AppState {
    /// Server tunables.
    pub config: ServerConfig,
    /// Graph registry + session LRU.
    pub registry: Registry,
    /// Serving counters and latency histogram.
    pub metrics: Metrics,
    /// Set by `POST /shutdown` or [`crate::ServerHandle::shutdown`];
    /// workers drain their current connection and exit.
    pub shutdown: AtomicBool,
    /// The bound address (filled in after bind).
    pub addr: Mutex<Option<SocketAddr>>,
    /// Clones of the live connections' streams, so shutdown can close
    /// keep-alive connections whose workers are blocked waiting for the
    /// next request (instead of waiting out the read timeout).
    pub connections: Mutex<Vec<Option<TcpStream>>>,
}

impl AppState {
    /// Fresh state for one server instance.
    pub fn new(config: ServerConfig) -> Self {
        let registry = Registry::new(config.graph_capacity, config.session_capacity);
        AppState {
            config,
            registry,
            metrics: Metrics::default(),
            shutdown: AtomicBool::new(false),
            addr: Mutex::new(None),
            connections: Mutex::new(Vec::new()),
        }
    }

    /// Registers a live connection; returns its slot for
    /// [`unregister_connection`](Self::unregister_connection).
    pub fn register_connection(&self, stream: &TcpStream) -> usize {
        let clone = stream.try_clone().ok();
        let mut slots = self
            .connections
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(i) = slots.iter().position(Option::is_none) {
            slots[i] = clone;
            i
        } else {
            slots.push(clone);
            slots.len() - 1
        }
    }

    /// Frees a connection slot.
    pub fn unregister_connection(&self, slot: usize) {
        let mut slots = self
            .connections
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(s) = slots.get_mut(slot) {
            *s = None;
        }
    }

    /// Force-closes every live connection so workers blocked reading the
    /// next keep-alive request return immediately during shutdown.
    pub fn close_connections(&self) {
        let slots = self
            .connections
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for stream in slots.iter().flatten() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// One warm session: the leaked graph it borrows, the canonical spec it
/// was created from, and the session behind its per-session lock.
pub struct SessionEntry {
    /// Registry-assigned id (`s0`, `s1`, …).
    pub id: String,
    /// Canonical spec key (doubles as the LRU key).
    pub spec_key: String,
    /// The normalized spec, echoed by `GET /sessions`.
    pub spec: Value,
    /// The graph this session serves (leaked, shared, never freed).
    pub graph: &'static Graph,
    /// The warm session; see the module docs for the locking model.
    pub session: Mutex<ShortcutSession<'static>>,
}

impl SessionEntry {
    /// Locks the session, ignoring poisoning (see module docs).
    pub fn lock(&self) -> MutexGuard<'_, ShortcutSession<'static>> {
        self.session.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Point-in-time registry counters for `GET /metrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegistryStats {
    /// `POST /sessions` calls answered by a warm session.
    pub hits: u64,
    /// `POST /sessions` calls that built a new session.
    pub misses: u64,
    /// Sessions dropped by the LRU bound.
    pub evictions: u64,
    /// Live sessions.
    pub sessions: usize,
    /// Distinct leaked graphs.
    pub graphs: usize,
}

struct RegistryInner {
    /// Leaked graph plus the weights its source carried (flat-binary
    /// files can embed weights; generators and edge lists never do).
    graphs: HashMap<String, (&'static Graph, Option<EdgeWeights>)>,
    sessions: HashMap<String, Arc<SessionEntry>>,
    by_spec: HashMap<String, String>,
    /// LRU order of session ids, most recently used at the back.
    order: VecDeque<String>,
    next_id: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The graph registry and warm-session LRU (see module docs).
pub struct Registry {
    graph_capacity: usize,
    session_capacity: usize,
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry with the given bounds.
    pub fn new(graph_capacity: usize, session_capacity: usize) -> Self {
        Registry {
            graph_capacity,
            session_capacity: session_capacity.max(1),
            inner: Mutex::new(RegistryInner {
                graphs: HashMap::new(),
                sessions: HashMap::new(),
                by_spec: HashMap::new(),
                order: VecDeque::new(),
                next_id: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    fn locked(&self) -> MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Resolves a session by id, refreshing its LRU position.
    pub fn get(&self, id: &str) -> Option<Arc<SessionEntry>> {
        let mut inner = self.locked();
        let entry = inner.sessions.get(id).cloned()?;
        inner.order.retain(|x| x != id);
        inner.order.push_back(id.to_string());
        Some(entry)
    }

    /// All live sessions, without touching the LRU order.
    pub fn snapshot(&self) -> Vec<Arc<SessionEntry>> {
        let inner = self.locked();
        let mut all: Vec<_> = inner.sessions.values().cloned().collect();
        all.sort_by(|a, b| a.id.cmp(&b.id));
        all
    }

    /// Current counters.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.locked();
        RegistryStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            sessions: inner.sessions.len(),
            graphs: inner.graphs.len(),
        }
    }

    /// Returns the warm session for `spec` or builds (and caches) a new
    /// one. The boolean is `true` when a session was built.
    pub fn get_or_create(&self, spec: &SessionSpec) -> Result<(Arc<SessionEntry>, bool), ApiError> {
        let spec_value = spec.canonical_value();
        let spec_key = json::render(&spec_value);

        // Fast path under the registry lock: an identical spec is warm.
        {
            let mut inner = self.locked();
            if let Some(id) = inner.by_spec.get(&spec_key).cloned() {
                if let Some(entry) = inner.sessions.get(&id).cloned() {
                    inner.hits += 1;
                    inner.order.retain(|x| x != &id);
                    inner.order.push_back(id);
                    return Ok((entry, false));
                }
            }
        }

        // Build outside the registry lock (graph generation and session
        // construction can take milliseconds); a concurrent identical
        // create is resolved at insertion time below.
        let (graph, file_weights) = self.get_or_leak_graph(spec)?;
        let session = spec.build_session(graph, file_weights)?;

        let mut inner = self.locked();
        if let Some(id) = inner.by_spec.get(&spec_key).cloned() {
            // Lost the race: serve the winner's session.
            if let Some(entry) = inner.sessions.get(&id).cloned() {
                inner.hits += 1;
                return Ok((entry, false));
            }
        }
        inner.misses += 1;
        let id = format!("s{}", inner.next_id);
        inner.next_id += 1;
        let entry = Arc::new(SessionEntry {
            id: id.clone(),
            spec_key: spec_key.clone(),
            spec: spec_value,
            graph,
            session: Mutex::new(session),
        });
        inner.sessions.insert(id.clone(), entry.clone());
        inner.by_spec.insert(spec_key, id.clone());
        inner.order.push_back(id);
        while inner.sessions.len() > self.session_capacity {
            let Some(victim) = inner.order.pop_front() else {
                break;
            };
            if let Some(old) = inner.sessions.remove(&victim) {
                inner.by_spec.remove(&old.spec_key);
                inner.evictions += 1;
            }
        }
        Ok((entry, true))
    }

    /// The leaked graph for this spec (plus any weights its source file
    /// carried), deduplicated by canonical graph key. Refuses to leak
    /// past the graph cap.
    fn get_or_leak_graph(
        &self,
        spec: &SessionSpec,
    ) -> Result<(&'static Graph, Option<EdgeWeights>), ApiError> {
        let key = json::render(&spec.graph.canonical_value());
        {
            let inner = self.locked();
            if let Some((g, w)) = inner.graphs.get(&key) {
                return Ok((g, w.clone()));
            }
            if inner.graphs.len() >= self.graph_capacity {
                return Err(ApiError::conflict(format!(
                    "graph registry full ({} distinct graphs) — reuse an existing graph spec",
                    self.graph_capacity
                )));
            }
        }
        let (built, weights) = spec.graph.build()?;
        let mut inner = self.locked();
        if let Some((g, w)) = inner.graphs.get(&key) {
            return Ok((g, w.clone())); // lost a concurrent race; drop our copy
        }
        if inner.graphs.len() >= self.graph_capacity {
            return Err(ApiError::conflict(format!(
                "graph registry full ({} distinct graphs) — reuse an existing graph spec",
                self.graph_capacity
            )));
        }
        let leaked: &'static Graph = Box::leak(Box::new(built));
        inner.graphs.insert(key, (leaked, weights.clone()));
        Ok((leaked, weights))
    }
}

/// A validated graph spec: a thin wrapper over the unified
/// [`GraphSource`] — the server's wire form of the one graph-construction
/// path the whole workspace shares.
///
/// Two wire forms parse to the same source (and therefore the same
/// canonical key, warm session, and leaked graph):
///
/// - the **unified form**, mirroring partition sources:
///   `{"kind": "grid", "rows": 8, "cols": 8}`,
///   `{"kind": "road_like", "rows": 1000, "cols": 1000, "seed": 7}`,
///   `{"kind": "edge_list_json", "path": "g.json"}`,
///   `{"kind": "flat_binary", "path": "g.lcsg"}`;
/// - the **legacy form** `{"family": ...}` (deprecated alias), including
///   `{"family": "file", "path": ...}` which maps onto
///   [`GraphSource::EdgeListJson`].
#[derive(Clone, Debug, PartialEq)]
pub struct GraphSpec {
    /// The unified source this spec names.
    pub source: GraphSource,
}

/// Node-count cap on served graphs (generator families are rejected at
/// parse time; file-backed graphs after loading).
const MAX_SERVED_NODES: u64 = 40_000_000;

impl GraphSpec {
    /// Parses and validates the `graph` field of a session spec (both
    /// wire forms; see the type docs).
    pub fn from_value(v: &Value) -> Result<Self, ApiError> {
        let kind: String = match json::lookup(v, "kind") {
            Some(_) => json::require(v, "kind")?,
            // Legacy alias: `{"family": ...}`.
            None => json::require(v, "family")?,
        };
        if kind == "file" || kind == "edge_list_json" {
            let path: String = json::require(v, "path")?;
            return Ok(GraphSpec {
                source: GraphSource::EdgeListJson { path },
            });
        }
        if kind == "flat_binary" {
            let path: String = json::require(v, "path")?;
            return Ok(GraphSpec {
                source: GraphSource::FlatBinary { path },
            });
        }
        let spec = match kind.as_str() {
            "grid" => GeneratorSpec::Grid {
                rows: json::require(v, "rows")?,
                cols: json::require(v, "cols")?,
            },
            "torus" => GeneratorSpec::Torus {
                rows: json::require(v, "rows")?,
                cols: json::require(v, "cols")?,
            },
            "path" => GeneratorSpec::Path {
                n: json::require(v, "n")?,
            },
            "cycle" => GeneratorSpec::Cycle {
                n: json::require(v, "n")?,
            },
            "complete" => GeneratorSpec::Complete {
                n: json::require(v, "n")?,
            },
            "wheel" => GeneratorSpec::Wheel {
                n: json::require(v, "n")?,
            },
            "grid_of_cliques" => GeneratorSpec::GridOfCliques {
                rows: json::require(v, "rows")?,
                cols: json::require(v, "cols")?,
                clique: json::require(v, "r")?,
            },
            "road_like" => GeneratorSpec::RoadLike {
                rows: json::require(v, "rows")?,
                cols: json::require(v, "cols")?,
                seed: json::optional(v, "seed")?.unwrap_or(0),
            },
            other => {
                return Err(ApiError::bad_args(format!(
                    "unknown graph kind `{other}` — one of grid, torus, path, cycle, \
                     complete, wheel, grid_of_cliques, road_like, edge_list_json, \
                     flat_binary (or the legacy `family` aliases)"
                )))
            }
        };
        spec.validate()
            .map_err(|e| ApiError::unprocessable_graph(&e))?;
        if spec.num_nodes() > MAX_SERVED_NODES {
            return Err(ApiError::bad_args("graph too large for this server"));
        }
        Ok(GraphSpec {
            source: GraphSource::Generator(spec),
        })
    }

    /// The canonical JSON form (fixed field order, always the unified
    /// `kind` shape — legacy-alias specs canonicalize to the same value,
    /// so they share warm sessions with their unified twins).
    pub fn canonical_value(&self) -> Value {
        let path_obj = |kind: &str, path: &str| {
            Value::object([
                ("kind", Value::Str(kind.to_string())),
                ("path", Value::Str(path.to_string())),
            ])
        };
        match &self.source {
            GraphSource::EdgeListJson { path } => path_obj("edge_list_json", path),
            GraphSource::FlatBinary { path } => path_obj("flat_binary", path),
            GraphSource::Generator(spec) => {
                let kind = ("kind", Value::Str(spec.name().to_string()));
                match *spec {
                    GeneratorSpec::Path { n }
                    | GeneratorSpec::Cycle { n }
                    | GeneratorSpec::Complete { n }
                    | GeneratorSpec::Wheel { n } => {
                        Value::object([kind, ("n", Value::U64(n as u64))])
                    }
                    GeneratorSpec::Grid { rows, cols } | GeneratorSpec::Torus { rows, cols } => {
                        Value::object([
                            kind,
                            ("rows", Value::U64(rows as u64)),
                            ("cols", Value::U64(cols as u64)),
                        ])
                    }
                    GeneratorSpec::GridOfCliques { rows, cols, clique } => Value::object([
                        kind,
                        ("rows", Value::U64(rows as u64)),
                        ("cols", Value::U64(cols as u64)),
                        ("r", Value::U64(clique as u64)),
                    ]),
                    GeneratorSpec::RoadLike { rows, cols, seed } => Value::object([
                        kind,
                        ("rows", Value::U64(rows as u64)),
                        ("cols", Value::U64(cols as u64)),
                        ("seed", Value::U64(seed)),
                    ]),
                }
            }
        }
    }

    /// Resolves the source into a graph (plus weights when the backing
    /// `.lcsg` file carries them), mapping every
    /// [`lcs_core::GraphSourceError`] onto its structured 422/404.
    pub fn build(&self) -> Result<(Graph, Option<EdgeWeights>), ApiError> {
        let resolved = self
            .source
            .resolve()
            .map_err(|e| ApiError::unprocessable_graph(&e))?;
        // Generator sizes are capped at parse time; file-backed graphs
        // can only be measured after loading.
        if resolved.graph.num_nodes() as u64 > MAX_SERVED_NODES {
            return Err(ApiError::bad_args("graph too large for this server"));
        }
        Ok((resolved.graph, resolved.weights))
    }

    /// The default partition for this source (`rows` for grids/tori,
    /// `None` otherwise).
    pub fn default_partition(&self) -> Option<Vec<Vec<NodeId>>> {
        match &self.source {
            GraphSource::Generator(
                GeneratorSpec::Grid { rows, cols } | GeneratorSpec::Torus { rows, cols },
            ) => Some(gen::rows_of_grid(*rows, *cols)),
            _ => None,
        }
    }
}

/// How the session partitions its graph.
#[derive(Clone, Debug, PartialEq)]
pub enum PartitionSpec {
    /// The graph family's default (rows for grids/tori, none otherwise).
    Default,
    /// No partition: tree/unicast/MST only.
    None,
    /// One part per node.
    Singletons,
    /// Explicit parts as node-id lists.
    Explicit(Vec<Vec<u32>>),
    /// A declarative [`PartitionSource`] resolved on the graph at build
    /// time (`{"kind": "voronoi", ...}` / `{"kind": "separator", ...}`).
    Source(PartitionSource),
}

impl PartitionSpec {
    fn from_value(v: &Value) -> Result<Self, ApiError> {
        match json::lookup(v, "partition") {
            None => Ok(PartitionSpec::Default),
            Some(Value::Str(s)) => match s.as_str() {
                "default" => Ok(PartitionSpec::Default),
                "none" => Ok(PartitionSpec::None),
                "singletons" => Ok(PartitionSpec::Singletons),
                other => Err(ApiError::bad_args(format!(
                    "unknown partition kind `{other}` — one of default, none, singletons, \
                     a source object {{\"kind\": ...}}, or an explicit [[node, ...], ...] array"
                ))),
            },
            Some(obj @ Value::Obj(_)) => Ok(PartitionSpec::Source(Self::source_from_value(obj)?)),
            Some(arr) => {
                let parts: Vec<Vec<u32>> = <Vec<Vec<u32>> as Deserialize>::from_value(arr)
                    .map_err(|e| ApiError::bad_args(format!("field `partition`: {e}")))?;
                Ok(PartitionSpec::Explicit(parts))
            }
        }
    }

    /// Parses the object form of `partition`: a [`PartitionSource`] recipe
    /// keyed by `kind`.
    fn source_from_value(v: &Value) -> Result<PartitionSource, ApiError> {
        let kind: String = json::require(v, "kind")?;
        match kind.as_str() {
            "rows" => Ok(PartitionSource::Rows {
                rows: json::require(v, "rows")?,
                cols: json::require(v, "cols")?,
            }),
            "voronoi" => Ok(PartitionSource::Voronoi {
                parts: json::require(v, "parts")?,
                seed: json::optional(v, "seed")?.unwrap_or(0),
            }),
            "singletons" => Ok(PartitionSource::Singletons),
            "separator" => Ok(PartitionSource::Separator {
                level: json::require(v, "level")?,
                min_region: json::optional(v, "min_region")?
                    .unwrap_or_else(|| SeparatorConfig::default().min_region),
            }),
            other => Err(ApiError::bad_args(format!(
                "unknown partition source kind `{other}` — one of rows, voronoi, \
                 singletons, separator"
            ))),
        }
    }

    fn canonical_value(&self) -> Value {
        match self {
            PartitionSpec::Default => Value::Str("default".to_string()),
            PartitionSpec::None => Value::Str("none".to_string()),
            PartitionSpec::Singletons => Value::Str("singletons".to_string()),
            PartitionSpec::Explicit(parts) => parts.to_value(),
            PartitionSpec::Source(src) => {
                let kind = ("kind", Value::Str(src.name().to_string()));
                match *src {
                    PartitionSource::Rows { rows, cols } => Value::object([
                        kind,
                        ("rows", Value::U64(rows as u64)),
                        ("cols", Value::U64(cols as u64)),
                    ]),
                    PartitionSource::Voronoi { parts, seed } => Value::object([
                        kind,
                        ("parts", Value::U64(parts as u64)),
                        ("seed", Value::U64(seed)),
                    ]),
                    PartitionSource::Singletons => Value::object([kind]),
                    PartitionSource::Separator { level, min_region } => Value::object([
                        kind,
                        ("level", Value::U64(u64::from(level))),
                        ("min_region", Value::U64(min_region as u64)),
                    ]),
                }
            }
        }
    }
}

/// A full, validated session spec — the LRU key domain.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionSpec {
    /// The graph to serve.
    pub graph: GraphSpec,
    /// How to partition it.
    pub partition: PartitionSpec,
    /// Execution backend (default [`Backend::Centralized`]).
    pub backend: Option<Backend>,
    /// Full session configuration (default [`SessionConfig::default`]).
    pub config: Option<SessionConfig>,
    /// Initial edge weights (default none; `set_weights` can add them).
    pub weights: Option<Vec<u64>>,
}

impl SessionSpec {
    /// Parses and validates a `POST /sessions` body.
    pub fn from_value(v: &Value) -> Result<Self, ApiError> {
        let graph_value = json::lookup(v, "graph")
            .ok_or_else(|| ApiError::bad_args("missing required field `graph`"))?;
        let graph = GraphSpec::from_value(graph_value)?;
        let partition = PartitionSpec::from_value(v)?;
        let backend = match json::lookup(v, "backend") {
            None => None,
            Some(b) => Some(
                <Backend as Deserialize>::from_value(b)
                    .map_err(|e| ApiError::bad_args(format!("field `backend`: {e}")))?,
            ),
        };
        let config = match json::lookup(v, "config") {
            None => None,
            Some(c) => Some(
                <SessionConfig as Deserialize>::from_value(c)
                    .map_err(|e| ApiError::bad_args(format!("field `config`: {e}")))?,
            ),
        };
        let weights: Option<Vec<u64>> = json::optional(v, "weights")?;
        Ok(SessionSpec {
            graph,
            partition,
            backend,
            config,
            weights,
        })
    }

    /// The canonical JSON of the whole spec (the LRU key).
    pub fn canonical_value(&self) -> Value {
        Value::object([
            ("graph", self.graph.canonical_value()),
            ("partition", self.partition.canonical_value()),
            (
                "backend",
                self.backend
                    .as_ref()
                    .map(|b| b.to_value())
                    .unwrap_or(Value::Null),
            ),
            (
                "config",
                self.config
                    .as_ref()
                    .map(|c| c.to_value())
                    .unwrap_or(Value::Null),
            ),
            (
                "weights",
                self.weights
                    .as_ref()
                    .map(|w| w.to_value())
                    .unwrap_or(Value::Null),
            ),
        ])
    }

    /// Builds the session against the (leaked) graph. `file_weights` are
    /// the weights the graph's source file carried, if any; an explicit
    /// `weights` field in the spec wins over them.
    pub fn build_session(
        &self,
        graph: &'static Graph,
        file_weights: Option<EdgeWeights>,
    ) -> Result<ShortcutSession<'static>, ApiError> {
        if graph.num_nodes() == 0 {
            return Err(ApiError::bad_args("cannot serve an empty graph"));
        }
        let mut builder = Session::on(graph);
        match &self.partition {
            PartitionSpec::Default => {
                if let Some(parts) = self.graph.default_partition() {
                    builder = builder.partition(parts);
                }
            }
            PartitionSpec::None => {}
            PartitionSpec::Singletons => {
                builder = builder.partition(gen::singleton_parts(graph));
            }
            PartitionSpec::Explicit(parts) => {
                let n = graph.num_nodes();
                if let Some(&bad) = parts.iter().flatten().find(|&&v| v as usize >= n) {
                    return Err(ApiError::bad_args(format!(
                        "partition node {bad} out of range — the graph has {n} nodes"
                    )));
                }
                builder = builder.partition(
                    parts
                        .iter()
                        .map(|p| p.iter().map(|&v| NodeId(v)).collect())
                        .collect(),
                );
            }
            PartitionSpec::Source(src) => {
                // Sources promise covering partitions, so an unassigned
                // node is a structured 422 (`partition_uncovered`) rather
                // than a generic failure.
                let p = Partition::from_parts_covering(graph, src.resolve(graph))
                    .map_err(|e| ApiError::unprocessable_partition(&e))?;
                builder = builder.partition_object(p);
            }
        }
        if let Some(backend) = &self.backend {
            builder = builder.backend(backend.clone());
        }
        if let Some(config) = &self.config {
            builder = builder.config(config.clone());
        }
        // Provenance: record which source produced the graph. Applied
        // after `.config(..)` so an explicit config does not erase it.
        builder = builder.graph_source(self.graph.source.clone());
        let mut session = builder
            .build()
            .map_err(|e| ApiError::unprocessable_partition(&e))?;
        if let Some(w) = &self.weights {
            if w.len() != graph.num_edges() {
                return Err(ApiError::bad_args(format!(
                    "one weight per edge required — got {}, the graph has {} edges",
                    w.len(),
                    graph.num_edges()
                )));
            }
            session
                .try_set_weights(EdgeWeights::from_vec(graph, w.clone()))
                .map_err(ApiError::from)?;
        } else if let Some(w) = file_weights {
            session.try_set_weights(w).map_err(ApiError::from)?;
        }
        Ok(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_spec(rows: usize, cols: usize) -> SessionSpec {
        let v = Value::object([(
            "graph",
            Value::object([
                ("family", Value::Str("grid".to_string())),
                ("rows", Value::U64(rows as u64)),
                ("cols", Value::U64(cols as u64)),
            ]),
        )]);
        SessionSpec::from_value(&v).expect("valid spec")
    }

    #[test]
    fn identical_specs_share_one_warm_session() {
        let reg = Registry::new(4, 4);
        let (a, created_a) = reg.get_or_create(&grid_spec(4, 4)).unwrap();
        let (b, created_b) = reg.get_or_create(&grid_spec(4, 4)).unwrap();
        assert!(created_a && !created_b);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = reg.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.graphs, 1);
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let reg = Registry::new(8, 2);
        let (a, _) = reg.get_or_create(&grid_spec(3, 3)).unwrap();
        let (_b, _) = reg.get_or_create(&grid_spec(4, 4)).unwrap();
        // Touch a so the 3×3 session is the most recently used.
        assert!(reg.get(&a.id).is_some());
        let (_c, _) = reg.get_or_create(&grid_spec(5, 5)).unwrap();
        let stats = reg.stats();
        assert_eq!(stats.sessions, 2);
        assert_eq!(stats.evictions, 1);
        assert!(reg.get(&a.id).is_some(), "recently used survives");
    }

    #[test]
    fn graph_cap_is_enforced() {
        let reg = Registry::new(1, 8);
        reg.get_or_create(&grid_spec(3, 3)).unwrap();
        let err = reg.get_or_create(&grid_spec(4, 4)).map(|_| ()).unwrap_err();
        assert_eq!(err.status, 409);
        // Same graph again is fine (deduplicated, not a new leak).
        reg.get_or_create(&grid_spec(3, 3)).unwrap();
    }

    #[test]
    fn explicit_partition_is_validated() {
        let v = Value::object([
            (
                "graph",
                Value::object([
                    ("family", Value::Str("path".to_string())),
                    ("n", Value::U64(4)),
                ]),
            ),
            (
                "partition",
                Value::Arr(vec![Value::Arr(vec![Value::U64(0), Value::U64(9)])]),
            ),
        ]);
        let spec = SessionSpec::from_value(&v).expect("parses");
        let reg = Registry::new(4, 4);
        let err = reg.get_or_create(&spec).map(|_| ()).unwrap_err();
        assert_eq!(err.status, 422);
    }

    fn spec_with_partition(partition: Value) -> SessionSpec {
        let v = Value::object([
            (
                "graph",
                Value::object([
                    ("family", Value::Str("grid".to_string())),
                    ("rows", Value::U64(6)),
                    ("cols", Value::U64(6)),
                ]),
            ),
            ("partition", partition),
        ]);
        SessionSpec::from_value(&v).expect("valid spec")
    }

    #[test]
    fn source_partitions_build_and_share_the_warm_lru() {
        let reg = Registry::new(4, 4);
        for partition in [
            Value::object([
                ("kind", Value::Str("voronoi".to_string())),
                ("parts", Value::U64(4)),
                ("seed", Value::U64(7)),
            ]),
            Value::object([
                ("kind", Value::Str("separator".to_string())),
                ("level", Value::U64(3)),
            ]),
        ] {
            let spec = spec_with_partition(partition);
            let (a, created_a) = reg.get_or_create(&spec).unwrap();
            let (b, created_b) = reg.get_or_create(&spec).unwrap();
            assert!(created_a && !created_b, "identical source spec must hit");
            assert!(Arc::ptr_eq(&a, &b));
            assert!(a.lock().partition().num_parts() > 1);
        }
    }

    #[test]
    fn partition_error_codes_are_distinct_422s() {
        let reg = Registry::new(8, 8);
        // A disconnected part: {corner, opposite corner} of the grid.
        let disconnected = spec_with_partition(Value::Arr(vec![Value::Arr(vec![
            Value::U64(0),
            Value::U64(35),
        ])]));
        let err = reg.get_or_create(&disconnected).map(|_| ()).unwrap_err();
        assert_eq!((err.status, err.code), (422, "partition_disconnected"));

        // Rows of a *larger* grid resolved on the 6×6 graph: nodes out of
        // range for some rows, but the real failure mode we pin here is a
        // source that does not cover the graph.
        let uncovered = spec_with_partition(Value::object([
            ("kind", Value::Str("rows".to_string())),
            ("rows", Value::U64(3)),
            ("cols", Value::U64(6)),
        ]));
        let err = reg.get_or_create(&uncovered).map(|_| ()).unwrap_err();
        assert_eq!((err.status, err.code), (422, "partition_uncovered"));
    }

    /// A scratch file under the OS temp dir, removed on drop.
    struct TempPath(std::path::PathBuf);

    impl TempPath {
        fn new(name: &str) -> Self {
            let mut p = std::env::temp_dir();
            p.push(format!("lcs_server_state_{}_{name}", std::process::id()));
            TempPath(p)
        }

        fn as_str(&self) -> &str {
            self.0.to_str().expect("utf-8 temp path")
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn graph_only_spec(graph: Value) -> SessionSpec {
        SessionSpec::from_value(&Value::object([("graph", graph)])).expect("valid spec")
    }

    #[test]
    fn unified_kind_form_parses_every_generator() {
        for (graph, nodes) in [
            (
                Value::object([
                    ("kind", Value::Str("grid".to_string())),
                    ("rows", Value::U64(3)),
                    ("cols", Value::U64(4)),
                ]),
                12,
            ),
            (
                Value::object([
                    ("kind", Value::Str("road_like".to_string())),
                    ("rows", Value::U64(5)),
                    ("cols", Value::U64(5)),
                    ("seed", Value::U64(7)),
                ]),
                25,
            ),
            (
                Value::object([
                    ("kind", Value::Str("wheel".to_string())),
                    ("n", Value::U64(6)),
                ]),
                6,
            ),
        ] {
            let spec = graph_only_spec(graph);
            let (g, w) = spec.graph.build().expect("builds");
            assert_eq!(g.num_nodes(), nodes);
            assert!(w.is_none(), "generators never carry weights");
        }
    }

    #[test]
    fn legacy_family_and_unified_kind_share_one_warm_session() {
        // The pre-GraphSource wire form must keep working *and* dedup
        // onto the same canonical key as its unified twin.
        let legacy = grid_spec(4, 4);
        let unified = graph_only_spec(Value::object([
            ("kind", Value::Str("grid".to_string())),
            ("rows", Value::U64(4)),
            ("cols", Value::U64(4)),
        ]));
        assert_eq!(legacy.graph, unified.graph);
        let reg = Registry::new(4, 4);
        let (a, created_a) = reg.get_or_create(&legacy).unwrap();
        let (b, created_b) = reg.get_or_create(&unified).unwrap();
        assert!(created_a && !created_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(reg.stats().graphs, 1);
    }

    #[test]
    fn legacy_file_alias_is_edge_list_json() {
        let path = TempPath::new("alias.json");
        std::fs::write(&path.0, r#"{"n": 3, "edges": [[0, 1], [1, 2]]}"#).unwrap();
        let legacy = graph_only_spec(Value::object([
            ("family", Value::Str("file".to_string())),
            ("path", Value::Str(path.as_str().to_string())),
        ]));
        let unified = graph_only_spec(Value::object([
            ("kind", Value::Str("edge_list_json".to_string())),
            ("path", Value::Str(path.as_str().to_string())),
        ]));
        assert_eq!(
            legacy.graph.source,
            GraphSource::EdgeListJson {
                path: path.as_str().to_string()
            }
        );
        assert_eq!(legacy.graph, unified.graph);
        assert_eq!(
            json::render(&legacy.graph.canonical_value()),
            json::render(&unified.graph.canonical_value()),
        );
        let reg = Registry::new(4, 4);
        let (a, _) = reg.get_or_create(&legacy).unwrap();
        let (b, created_b) = reg.get_or_create(&unified).unwrap();
        assert!(!created_b, "alias and unified form share the warm session");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(reg.stats().graphs, 1);
        assert_eq!(a.graph.num_nodes(), 3);
    }

    #[test]
    fn flat_binary_specs_serve_the_file_graph_and_its_weights() {
        let path = TempPath::new("weighted.lcsg");
        let g = gen::grid(3, 3);
        let w = EdgeWeights::from_vec(&g, (0..g.num_edges() as u64).map(|i| i + 10).collect());
        lcs_graph::io::save_graph(&path.0, &g, Some(&w)).unwrap();

        let spec = graph_only_spec(Value::object([
            ("kind", Value::Str("flat_binary".to_string())),
            ("path", Value::Str(path.as_str().to_string())),
        ]));
        let reg = Registry::new(4, 4);
        let (entry, created) = reg.get_or_create(&spec).unwrap();
        assert!(created);
        assert_eq!(entry.graph.num_nodes(), 9);
        let session = entry.lock();
        assert_eq!(session.weights(), &w, "file weights reach the session");
        assert_eq!(
            session.config().graph_source,
            Some(spec.graph.source.clone()),
            "provenance survives into the session config"
        );
    }

    #[test]
    fn graph_error_codes_are_distinct() {
        let reg = Registry::new(8, 8);

        // Missing file → 404 with the dedicated code.
        let missing = graph_only_spec(Value::object([
            ("kind", Value::Str("flat_binary".to_string())),
            ("path", Value::Str("/nonexistent/g.lcsg".to_string())),
        ]));
        let err = reg.get_or_create(&missing).map(|_| ()).unwrap_err();
        assert_eq!((err.status, err.code), (404, "graph_file_not_found"));

        // A file that is not an .lcsg → 422 graph_bad_magic.
        let junk = TempPath::new("junk.lcsg");
        std::fs::write(&junk.0, [b'J'; 64]).unwrap();
        let bad_magic = graph_only_spec(Value::object([
            ("kind", Value::Str("flat_binary".to_string())),
            ("path", Value::Str(junk.as_str().to_string())),
        ]));
        let err = reg.get_or_create(&bad_magic).map(|_| ()).unwrap_err();
        assert_eq!((err.status, err.code), (422, "graph_bad_magic"));

        // Malformed edge-list JSON → 422 graph_json_malformed.
        let mangled = TempPath::new("mangled.json");
        std::fs::write(&mangled.0, "{\"n\": 3").unwrap();
        let bad_json = graph_only_spec(Value::object([
            ("kind", Value::Str("edge_list_json".to_string())),
            ("path", Value::Str(mangled.as_str().to_string())),
        ]));
        let err = reg.get_or_create(&bad_json).map(|_| ()).unwrap_err();
        assert_eq!((err.status, err.code), (422, "graph_json_malformed"));

        // An invalid generator spec is typed at parse time.
        let err = SessionSpec::from_value(&Value::object([(
            "graph",
            Value::object([
                ("kind", Value::Str("cycle".to_string())),
                ("n", Value::U64(2)),
            ]),
        )]))
        .map(|_| ())
        .unwrap_err();
        assert_eq!((err.status, err.code), (422, "graph_invalid_spec"));
    }

    #[test]
    fn unknown_graph_kind_names_the_choices() {
        let err = SessionSpec::from_value(&Value::object([(
            "graph",
            Value::object([("kind", Value::Str("hypercube".to_string()))]),
        )]))
        .map(|_| ())
        .unwrap_err();
        assert_eq!((err.status, err.code), (422, "bad_args"));
        assert!(err.message.contains("flat_binary"), "{}", err.message);
    }

    #[test]
    fn unknown_source_kind_is_rejected_at_parse_time() {
        let v = Value::object([
            (
                "graph",
                Value::object([
                    ("family", Value::Str("path".to_string())),
                    ("n", Value::U64(4)),
                ]),
            ),
            (
                "partition",
                Value::object([("kind", Value::Str("metis".to_string()))]),
            ),
        ]);
        let err = SessionSpec::from_value(&v).map(|_| ()).unwrap_err();
        assert_eq!((err.status, err.code), (422, "bad_args"));
    }
}
