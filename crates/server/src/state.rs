//! Shared server state: the graph registry and the warm-session LRU.
//!
//! # Ownership and locking model
//!
//! `ShortcutSession<'g>` borrows its graph, so the daemon gives every
//! served graph a `'static` lifetime by leaking it ([`Box::leak`]) into a
//! **deduplicated, capacity-bounded registry** keyed by the canonical
//! graph spec — the leak is deliberate and bounded: a graph is a few MB,
//! the registry refuses new graphs past its cap (409), and identical
//! specs share one allocation across all sessions.
//!
//! Sessions live behind a two-level locking scheme:
//!
//! 1. the registry's own [`Mutex`] guards the id → entry map and the LRU
//!    order, and is held only for lookups/insertions (microseconds);
//! 2. each [`SessionEntry`] wraps its `ShortcutSession` in a per-session
//!    [`Mutex`] held for the duration of one op — concurrent clients on
//!    *one* session serialize (the artifact cache is single-writer by
//!    design), clients on *different* sessions run in parallel.
//!
//! Lock acquisition ignores poisoning (`PoisonError::into_inner`): a
//! panicking handler must not condemn its session — the epoch-tracked
//! artifact graph is kept consistent by the fallible `try_*` session APIs
//! (validation happens before any state change), so the state behind a
//! poisoned lock is still sound.
//!
//! The LRU is keyed by the canonical JSON of the full session spec
//! `(graph, partition, backend, config)` — re-POSTing an identical spec
//! returns the warm session (a *hit*) instead of rebuilding its artifacts,
//! which is where the serve-many economics of the shortcut session come
//! from. When the capacity is exceeded the least-recently-used session is
//! dropped; in-flight requests holding its `Arc` finish undisturbed.

use crate::error::ApiError;
use crate::json;
use crate::metrics::Metrics;
use lcs_core::session::{Backend, Session, SessionConfig, ShortcutSession};
use lcs_core::{Partition, PartitionSource};
use lcs_graph::weights::EdgeWeights;
use lcs_graph::{gen, Graph, NodeId};
use lcs_separator::SeparatorConfig;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Tunables of one server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Fixed worker-thread count.
    pub workers: usize,
    /// Request-body cap in bytes (413 beyond it).
    pub max_body: usize,
    /// Per-connection read/write timeout.
    pub io_timeout: Duration,
    /// Warm-session LRU capacity.
    pub session_capacity: usize,
    /// Distinct-graph cap (graphs are leaked; this bounds the leak).
    pub graph_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_body: 1 << 20,
            io_timeout: Duration::from_secs(10),
            session_capacity: 16,
            graph_capacity: 32,
        }
    }
}

/// Everything the workers share.
pub struct AppState {
    /// Server tunables.
    pub config: ServerConfig,
    /// Graph registry + session LRU.
    pub registry: Registry,
    /// Serving counters and latency histogram.
    pub metrics: Metrics,
    /// Set by `POST /shutdown` or [`crate::ServerHandle::shutdown`];
    /// workers drain their current connection and exit.
    pub shutdown: AtomicBool,
    /// The bound address (filled in after bind).
    pub addr: Mutex<Option<SocketAddr>>,
    /// Clones of the live connections' streams, so shutdown can close
    /// keep-alive connections whose workers are blocked waiting for the
    /// next request (instead of waiting out the read timeout).
    pub connections: Mutex<Vec<Option<TcpStream>>>,
}

impl AppState {
    /// Fresh state for one server instance.
    pub fn new(config: ServerConfig) -> Self {
        let registry = Registry::new(config.graph_capacity, config.session_capacity);
        AppState {
            config,
            registry,
            metrics: Metrics::default(),
            shutdown: AtomicBool::new(false),
            addr: Mutex::new(None),
            connections: Mutex::new(Vec::new()),
        }
    }

    /// Registers a live connection; returns its slot for
    /// [`unregister_connection`](Self::unregister_connection).
    pub fn register_connection(&self, stream: &TcpStream) -> usize {
        let clone = stream.try_clone().ok();
        let mut slots = self
            .connections
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(i) = slots.iter().position(Option::is_none) {
            slots[i] = clone;
            i
        } else {
            slots.push(clone);
            slots.len() - 1
        }
    }

    /// Frees a connection slot.
    pub fn unregister_connection(&self, slot: usize) {
        let mut slots = self
            .connections
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(s) = slots.get_mut(slot) {
            *s = None;
        }
    }

    /// Force-closes every live connection so workers blocked reading the
    /// next keep-alive request return immediately during shutdown.
    pub fn close_connections(&self) {
        let slots = self
            .connections
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for stream in slots.iter().flatten() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// One warm session: the leaked graph it borrows, the canonical spec it
/// was created from, and the session behind its per-session lock.
pub struct SessionEntry {
    /// Registry-assigned id (`s0`, `s1`, …).
    pub id: String,
    /// Canonical spec key (doubles as the LRU key).
    pub spec_key: String,
    /// The normalized spec, echoed by `GET /sessions`.
    pub spec: Value,
    /// The graph this session serves (leaked, shared, never freed).
    pub graph: &'static Graph,
    /// The warm session; see the module docs for the locking model.
    pub session: Mutex<ShortcutSession<'static>>,
}

impl SessionEntry {
    /// Locks the session, ignoring poisoning (see module docs).
    pub fn lock(&self) -> MutexGuard<'_, ShortcutSession<'static>> {
        self.session.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Point-in-time registry counters for `GET /metrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegistryStats {
    /// `POST /sessions` calls answered by a warm session.
    pub hits: u64,
    /// `POST /sessions` calls that built a new session.
    pub misses: u64,
    /// Sessions dropped by the LRU bound.
    pub evictions: u64,
    /// Live sessions.
    pub sessions: usize,
    /// Distinct leaked graphs.
    pub graphs: usize,
}

struct RegistryInner {
    graphs: HashMap<String, &'static Graph>,
    sessions: HashMap<String, Arc<SessionEntry>>,
    by_spec: HashMap<String, String>,
    /// LRU order of session ids, most recently used at the back.
    order: VecDeque<String>,
    next_id: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The graph registry and warm-session LRU (see module docs).
pub struct Registry {
    graph_capacity: usize,
    session_capacity: usize,
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry with the given bounds.
    pub fn new(graph_capacity: usize, session_capacity: usize) -> Self {
        Registry {
            graph_capacity,
            session_capacity: session_capacity.max(1),
            inner: Mutex::new(RegistryInner {
                graphs: HashMap::new(),
                sessions: HashMap::new(),
                by_spec: HashMap::new(),
                order: VecDeque::new(),
                next_id: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    fn locked(&self) -> MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Resolves a session by id, refreshing its LRU position.
    pub fn get(&self, id: &str) -> Option<Arc<SessionEntry>> {
        let mut inner = self.locked();
        let entry = inner.sessions.get(id).cloned()?;
        inner.order.retain(|x| x != id);
        inner.order.push_back(id.to_string());
        Some(entry)
    }

    /// All live sessions, without touching the LRU order.
    pub fn snapshot(&self) -> Vec<Arc<SessionEntry>> {
        let inner = self.locked();
        let mut all: Vec<_> = inner.sessions.values().cloned().collect();
        all.sort_by(|a, b| a.id.cmp(&b.id));
        all
    }

    /// Current counters.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.locked();
        RegistryStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            sessions: inner.sessions.len(),
            graphs: inner.graphs.len(),
        }
    }

    /// Returns the warm session for `spec` or builds (and caches) a new
    /// one. The boolean is `true` when a session was built.
    pub fn get_or_create(&self, spec: &SessionSpec) -> Result<(Arc<SessionEntry>, bool), ApiError> {
        let spec_value = spec.canonical_value();
        let spec_key = json::render(&spec_value);

        // Fast path under the registry lock: an identical spec is warm.
        {
            let mut inner = self.locked();
            if let Some(id) = inner.by_spec.get(&spec_key).cloned() {
                if let Some(entry) = inner.sessions.get(&id).cloned() {
                    inner.hits += 1;
                    inner.order.retain(|x| x != &id);
                    inner.order.push_back(id);
                    return Ok((entry, false));
                }
            }
        }

        // Build outside the registry lock (graph generation and session
        // construction can take milliseconds); a concurrent identical
        // create is resolved at insertion time below.
        let graph = self.get_or_leak_graph(spec)?;
        let session = spec.build_session(graph)?;

        let mut inner = self.locked();
        if let Some(id) = inner.by_spec.get(&spec_key).cloned() {
            // Lost the race: serve the winner's session.
            if let Some(entry) = inner.sessions.get(&id).cloned() {
                inner.hits += 1;
                return Ok((entry, false));
            }
        }
        inner.misses += 1;
        let id = format!("s{}", inner.next_id);
        inner.next_id += 1;
        let entry = Arc::new(SessionEntry {
            id: id.clone(),
            spec_key: spec_key.clone(),
            spec: spec_value,
            graph,
            session: Mutex::new(session),
        });
        inner.sessions.insert(id.clone(), entry.clone());
        inner.by_spec.insert(spec_key, id.clone());
        inner.order.push_back(id);
        while inner.sessions.len() > self.session_capacity {
            let Some(victim) = inner.order.pop_front() else {
                break;
            };
            if let Some(old) = inner.sessions.remove(&victim) {
                inner.by_spec.remove(&old.spec_key);
                inner.evictions += 1;
            }
        }
        Ok((entry, true))
    }

    /// The leaked graph for this spec, deduplicated by canonical graph
    /// key. Refuses to leak past the graph cap.
    fn get_or_leak_graph(&self, spec: &SessionSpec) -> Result<&'static Graph, ApiError> {
        let key = json::render(&spec.graph.canonical_value());
        {
            let inner = self.locked();
            if let Some(g) = inner.graphs.get(&key) {
                return Ok(g);
            }
            if inner.graphs.len() >= self.graph_capacity {
                return Err(ApiError::conflict(format!(
                    "graph registry full ({} distinct graphs) — reuse an existing graph spec",
                    self.graph_capacity
                )));
            }
        }
        let built = spec.graph.build()?;
        let mut inner = self.locked();
        if let Some(g) = inner.graphs.get(&key) {
            return Ok(g); // lost a concurrent race; drop our copy
        }
        if inner.graphs.len() >= self.graph_capacity {
            return Err(ApiError::conflict(format!(
                "graph registry full ({} distinct graphs) — reuse an existing graph spec",
                self.graph_capacity
            )));
        }
        let leaked: &'static Graph = Box::leak(Box::new(built));
        inner.graphs.insert(key, leaked);
        Ok(leaked)
    }
}

/// A validated graph spec: a generator family with parameters, or a JSON
/// edge-list file.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphSpec {
    /// `lcs_graph::gen` family by name.
    Family {
        /// Generator name (`grid`, `torus`, `path`, `cycle`, `complete`,
        /// `wheel`, `grid_of_cliques`).
        family: String,
        /// Generator parameters in declaration order.
        params: Vec<usize>,
    },
    /// A JSON file `{"n": ..., "edges": [[u, v], ...]}`.
    File {
        /// Path to the file.
        path: String,
    },
}

impl GraphSpec {
    /// Parses and validates the `graph` field of a session spec.
    pub fn from_value(v: &Value) -> Result<Self, ApiError> {
        let family: String = json::require(v, "family")?;
        if family == "file" {
            let path: String = json::require(v, "path")?;
            return Ok(GraphSpec::File { path });
        }
        let params = match family.as_str() {
            "grid" | "torus" => vec![
                json::require::<usize>(v, "rows")?,
                json::require::<usize>(v, "cols")?,
            ],
            "path" | "cycle" | "complete" | "wheel" => vec![json::require::<usize>(v, "n")?],
            "grid_of_cliques" => vec![
                json::require::<usize>(v, "rows")?,
                json::require::<usize>(v, "cols")?,
                json::require::<usize>(v, "r")?,
            ],
            other => {
                return Err(ApiError::bad_args(format!(
                    "unknown graph family `{other}` — one of grid, torus, path, cycle, \
                     complete, wheel, grid_of_cliques, file"
                )))
            }
        };
        if params.contains(&0) {
            return Err(ApiError::bad_args("graph parameters must be positive"));
        }
        let min_n = match family.as_str() {
            "cycle" => 3,
            "wheel" => 4,
            _ => 1,
        };
        if params[0] < min_n {
            return Err(ApiError::bad_args(format!(
                "{family} needs at least {min_n} nodes"
            )));
        }
        let n: usize = params.iter().product();
        if n > 40_000_000 {
            return Err(ApiError::bad_args("graph too large for this server"));
        }
        Ok(GraphSpec::Family { family, params })
    }

    /// The canonical JSON form (fixed field order — the registry key).
    pub fn canonical_value(&self) -> Value {
        match self {
            GraphSpec::Family { family, params } => Value::object([
                ("family", Value::Str(family.clone())),
                (
                    "params",
                    Value::Arr(params.iter().map(|&p| Value::U64(p as u64)).collect()),
                ),
            ]),
            GraphSpec::File { path } => Value::object([
                ("family", Value::Str("file".to_string())),
                ("path", Value::Str(path.clone())),
            ]),
        }
    }

    /// Builds the graph.
    pub fn build(&self) -> Result<Graph, ApiError> {
        match self {
            GraphSpec::Family { family, params } => {
                Ok(match (family.as_str(), params.as_slice()) {
                    ("grid", [r, c]) => gen::grid(*r, *c),
                    ("torus", [r, c]) => gen::torus(*r, *c),
                    ("path", [n]) => gen::path(*n),
                    ("cycle", [n]) => gen::cycle(*n),
                    ("complete", [n]) => gen::complete(*n),
                    ("wheel", [n]) => gen::wheel(*n),
                    ("grid_of_cliques", [r, c, k]) => gen::grid_of_cliques(*r, *c, *k),
                    _ => unreachable!("validated in from_value"),
                })
            }
            GraphSpec::File { path } => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| ApiError::bad_args(format!("cannot read graph file: {e}")))?;
                let v = json::parse(text.as_bytes())
                    .map_err(|e| ApiError::bad_args(format!("graph file: {}", e.message)))?;
                let n: usize = json::require(&v, "n")?;
                let edges: Vec<(u32, u32)> = json::require(&v, "edges")?;
                if let Some(&(u, w)) = edges
                    .iter()
                    .find(|&&(u, w)| u as usize >= n || w as usize >= n || u == w)
                {
                    return Err(ApiError::bad_args(format!(
                        "graph file: invalid edge ({u}, {w}) for n = {n}"
                    )));
                }
                Ok(Graph::from_edges(n, edges))
            }
        }
    }

    /// The default partition for this family (`rows` for grids/tori,
    /// `None` otherwise).
    pub fn default_partition(&self) -> Option<Vec<Vec<NodeId>>> {
        match self {
            GraphSpec::Family { family, params } if family == "grid" || family == "torus" => {
                Some(gen::rows_of_grid(params[0], params[1]))
            }
            _ => None,
        }
    }
}

/// How the session partitions its graph.
#[derive(Clone, Debug, PartialEq)]
pub enum PartitionSpec {
    /// The graph family's default (rows for grids/tori, none otherwise).
    Default,
    /// No partition: tree/unicast/MST only.
    None,
    /// One part per node.
    Singletons,
    /// Explicit parts as node-id lists.
    Explicit(Vec<Vec<u32>>),
    /// A declarative [`PartitionSource`] resolved on the graph at build
    /// time (`{"kind": "voronoi", ...}` / `{"kind": "separator", ...}`).
    Source(PartitionSource),
}

impl PartitionSpec {
    fn from_value(v: &Value) -> Result<Self, ApiError> {
        match json::lookup(v, "partition") {
            None => Ok(PartitionSpec::Default),
            Some(Value::Str(s)) => match s.as_str() {
                "default" => Ok(PartitionSpec::Default),
                "none" => Ok(PartitionSpec::None),
                "singletons" => Ok(PartitionSpec::Singletons),
                other => Err(ApiError::bad_args(format!(
                    "unknown partition kind `{other}` — one of default, none, singletons, \
                     a source object {{\"kind\": ...}}, or an explicit [[node, ...], ...] array"
                ))),
            },
            Some(obj @ Value::Obj(_)) => Ok(PartitionSpec::Source(Self::source_from_value(obj)?)),
            Some(arr) => {
                let parts: Vec<Vec<u32>> = <Vec<Vec<u32>> as Deserialize>::from_value(arr)
                    .map_err(|e| ApiError::bad_args(format!("field `partition`: {e}")))?;
                Ok(PartitionSpec::Explicit(parts))
            }
        }
    }

    /// Parses the object form of `partition`: a [`PartitionSource`] recipe
    /// keyed by `kind`.
    fn source_from_value(v: &Value) -> Result<PartitionSource, ApiError> {
        let kind: String = json::require(v, "kind")?;
        match kind.as_str() {
            "rows" => Ok(PartitionSource::Rows {
                rows: json::require(v, "rows")?,
                cols: json::require(v, "cols")?,
            }),
            "voronoi" => Ok(PartitionSource::Voronoi {
                parts: json::require(v, "parts")?,
                seed: json::optional(v, "seed")?.unwrap_or(0),
            }),
            "singletons" => Ok(PartitionSource::Singletons),
            "separator" => Ok(PartitionSource::Separator {
                level: json::require(v, "level")?,
                min_region: json::optional(v, "min_region")?
                    .unwrap_or_else(|| SeparatorConfig::default().min_region),
            }),
            other => Err(ApiError::bad_args(format!(
                "unknown partition source kind `{other}` — one of rows, voronoi, \
                 singletons, separator"
            ))),
        }
    }

    fn canonical_value(&self) -> Value {
        match self {
            PartitionSpec::Default => Value::Str("default".to_string()),
            PartitionSpec::None => Value::Str("none".to_string()),
            PartitionSpec::Singletons => Value::Str("singletons".to_string()),
            PartitionSpec::Explicit(parts) => parts.to_value(),
            PartitionSpec::Source(src) => {
                let kind = ("kind", Value::Str(src.name().to_string()));
                match *src {
                    PartitionSource::Rows { rows, cols } => Value::object([
                        kind,
                        ("rows", Value::U64(rows as u64)),
                        ("cols", Value::U64(cols as u64)),
                    ]),
                    PartitionSource::Voronoi { parts, seed } => Value::object([
                        kind,
                        ("parts", Value::U64(parts as u64)),
                        ("seed", Value::U64(seed)),
                    ]),
                    PartitionSource::Singletons => Value::object([kind]),
                    PartitionSource::Separator { level, min_region } => Value::object([
                        kind,
                        ("level", Value::U64(u64::from(level))),
                        ("min_region", Value::U64(min_region as u64)),
                    ]),
                }
            }
        }
    }
}

/// A full, validated session spec — the LRU key domain.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionSpec {
    /// The graph to serve.
    pub graph: GraphSpec,
    /// How to partition it.
    pub partition: PartitionSpec,
    /// Execution backend (default [`Backend::Centralized`]).
    pub backend: Option<Backend>,
    /// Full session configuration (default [`SessionConfig::default`]).
    pub config: Option<SessionConfig>,
    /// Initial edge weights (default none; `set_weights` can add them).
    pub weights: Option<Vec<u64>>,
}

impl SessionSpec {
    /// Parses and validates a `POST /sessions` body.
    pub fn from_value(v: &Value) -> Result<Self, ApiError> {
        let graph_value = json::lookup(v, "graph")
            .ok_or_else(|| ApiError::bad_args("missing required field `graph`"))?;
        let graph = GraphSpec::from_value(graph_value)?;
        let partition = PartitionSpec::from_value(v)?;
        let backend = match json::lookup(v, "backend") {
            None => None,
            Some(b) => Some(
                <Backend as Deserialize>::from_value(b)
                    .map_err(|e| ApiError::bad_args(format!("field `backend`: {e}")))?,
            ),
        };
        let config = match json::lookup(v, "config") {
            None => None,
            Some(c) => Some(
                <SessionConfig as Deserialize>::from_value(c)
                    .map_err(|e| ApiError::bad_args(format!("field `config`: {e}")))?,
            ),
        };
        let weights: Option<Vec<u64>> = json::optional(v, "weights")?;
        Ok(SessionSpec {
            graph,
            partition,
            backend,
            config,
            weights,
        })
    }

    /// The canonical JSON of the whole spec (the LRU key).
    pub fn canonical_value(&self) -> Value {
        Value::object([
            ("graph", self.graph.canonical_value()),
            ("partition", self.partition.canonical_value()),
            (
                "backend",
                self.backend
                    .as_ref()
                    .map(|b| b.to_value())
                    .unwrap_or(Value::Null),
            ),
            (
                "config",
                self.config
                    .as_ref()
                    .map(|c| c.to_value())
                    .unwrap_or(Value::Null),
            ),
            (
                "weights",
                self.weights
                    .as_ref()
                    .map(|w| w.to_value())
                    .unwrap_or(Value::Null),
            ),
        ])
    }

    /// Builds the session against the (leaked) graph.
    pub fn build_session(
        &self,
        graph: &'static Graph,
    ) -> Result<ShortcutSession<'static>, ApiError> {
        if graph.num_nodes() == 0 {
            return Err(ApiError::bad_args("cannot serve an empty graph"));
        }
        let mut builder = Session::on(graph);
        match &self.partition {
            PartitionSpec::Default => {
                if let Some(parts) = self.graph.default_partition() {
                    builder = builder.partition(parts);
                }
            }
            PartitionSpec::None => {}
            PartitionSpec::Singletons => {
                builder = builder.partition(gen::singleton_parts(graph));
            }
            PartitionSpec::Explicit(parts) => {
                let n = graph.num_nodes();
                if let Some(&bad) = parts.iter().flatten().find(|&&v| v as usize >= n) {
                    return Err(ApiError::bad_args(format!(
                        "partition node {bad} out of range — the graph has {n} nodes"
                    )));
                }
                builder = builder.partition(
                    parts
                        .iter()
                        .map(|p| p.iter().map(|&v| NodeId(v)).collect())
                        .collect(),
                );
            }
            PartitionSpec::Source(src) => {
                // Sources promise covering partitions, so an unassigned
                // node is a structured 422 (`partition_uncovered`) rather
                // than a generic failure.
                let p = Partition::from_parts_covering(graph, src.resolve(graph))
                    .map_err(|e| ApiError::unprocessable_partition(&e))?;
                builder = builder.partition_object(p);
            }
        }
        if let Some(backend) = &self.backend {
            builder = builder.backend(backend.clone());
        }
        if let Some(config) = &self.config {
            builder = builder.config(config.clone());
        }
        let mut session = builder
            .build()
            .map_err(|e| ApiError::unprocessable_partition(&e))?;
        if let Some(w) = &self.weights {
            if w.len() != graph.num_edges() {
                return Err(ApiError::bad_args(format!(
                    "one weight per edge required — got {}, the graph has {} edges",
                    w.len(),
                    graph.num_edges()
                )));
            }
            session
                .try_set_weights(EdgeWeights::from_vec(graph, w.clone()))
                .map_err(ApiError::from)?;
        }
        Ok(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_spec(rows: usize, cols: usize) -> SessionSpec {
        let v = Value::object([(
            "graph",
            Value::object([
                ("family", Value::Str("grid".to_string())),
                ("rows", Value::U64(rows as u64)),
                ("cols", Value::U64(cols as u64)),
            ]),
        )]);
        SessionSpec::from_value(&v).expect("valid spec")
    }

    #[test]
    fn identical_specs_share_one_warm_session() {
        let reg = Registry::new(4, 4);
        let (a, created_a) = reg.get_or_create(&grid_spec(4, 4)).unwrap();
        let (b, created_b) = reg.get_or_create(&grid_spec(4, 4)).unwrap();
        assert!(created_a && !created_b);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = reg.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.graphs, 1);
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let reg = Registry::new(8, 2);
        let (a, _) = reg.get_or_create(&grid_spec(3, 3)).unwrap();
        let (_b, _) = reg.get_or_create(&grid_spec(4, 4)).unwrap();
        // Touch a so the 3×3 session is the most recently used.
        assert!(reg.get(&a.id).is_some());
        let (_c, _) = reg.get_or_create(&grid_spec(5, 5)).unwrap();
        let stats = reg.stats();
        assert_eq!(stats.sessions, 2);
        assert_eq!(stats.evictions, 1);
        assert!(reg.get(&a.id).is_some(), "recently used survives");
    }

    #[test]
    fn graph_cap_is_enforced() {
        let reg = Registry::new(1, 8);
        reg.get_or_create(&grid_spec(3, 3)).unwrap();
        let err = reg.get_or_create(&grid_spec(4, 4)).map(|_| ()).unwrap_err();
        assert_eq!(err.status, 409);
        // Same graph again is fine (deduplicated, not a new leak).
        reg.get_or_create(&grid_spec(3, 3)).unwrap();
    }

    #[test]
    fn explicit_partition_is_validated() {
        let v = Value::object([
            (
                "graph",
                Value::object([
                    ("family", Value::Str("path".to_string())),
                    ("n", Value::U64(4)),
                ]),
            ),
            (
                "partition",
                Value::Arr(vec![Value::Arr(vec![Value::U64(0), Value::U64(9)])]),
            ),
        ]);
        let spec = SessionSpec::from_value(&v).expect("parses");
        let reg = Registry::new(4, 4);
        let err = reg.get_or_create(&spec).map(|_| ()).unwrap_err();
        assert_eq!(err.status, 422);
    }

    fn spec_with_partition(partition: Value) -> SessionSpec {
        let v = Value::object([
            (
                "graph",
                Value::object([
                    ("family", Value::Str("grid".to_string())),
                    ("rows", Value::U64(6)),
                    ("cols", Value::U64(6)),
                ]),
            ),
            ("partition", partition),
        ]);
        SessionSpec::from_value(&v).expect("valid spec")
    }

    #[test]
    fn source_partitions_build_and_share_the_warm_lru() {
        let reg = Registry::new(4, 4);
        for partition in [
            Value::object([
                ("kind", Value::Str("voronoi".to_string())),
                ("parts", Value::U64(4)),
                ("seed", Value::U64(7)),
            ]),
            Value::object([
                ("kind", Value::Str("separator".to_string())),
                ("level", Value::U64(3)),
            ]),
        ] {
            let spec = spec_with_partition(partition);
            let (a, created_a) = reg.get_or_create(&spec).unwrap();
            let (b, created_b) = reg.get_or_create(&spec).unwrap();
            assert!(created_a && !created_b, "identical source spec must hit");
            assert!(Arc::ptr_eq(&a, &b));
            assert!(a.lock().partition().num_parts() > 1);
        }
    }

    #[test]
    fn partition_error_codes_are_distinct_422s() {
        let reg = Registry::new(8, 8);
        // A disconnected part: {corner, opposite corner} of the grid.
        let disconnected = spec_with_partition(Value::Arr(vec![Value::Arr(vec![
            Value::U64(0),
            Value::U64(35),
        ])]));
        let err = reg.get_or_create(&disconnected).map(|_| ()).unwrap_err();
        assert_eq!((err.status, err.code), (422, "partition_disconnected"));

        // Rows of a *larger* grid resolved on the 6×6 graph: nodes out of
        // range for some rows, but the real failure mode we pin here is a
        // source that does not cover the graph.
        let uncovered = spec_with_partition(Value::object([
            ("kind", Value::Str("rows".to_string())),
            ("rows", Value::U64(3)),
            ("cols", Value::U64(6)),
        ]));
        let err = reg.get_or_create(&uncovered).map(|_| ()).unwrap_err();
        assert_eq!((err.status, err.code), (422, "partition_uncovered"));
    }

    #[test]
    fn unknown_source_kind_is_rejected_at_parse_time() {
        let v = Value::object([
            (
                "graph",
                Value::object([
                    ("family", Value::Str("path".to_string())),
                    ("n", Value::U64(4)),
                ]),
            ),
            (
                "partition",
                Value::object([("kind", Value::Str("metis".to_string()))]),
            ),
        ]);
        let err = SessionSpec::from_value(&v).map(|_| ()).unwrap_err();
        assert_eq!((err.status, err.code), (422, "bad_args"));
    }
}
