//! Route dispatch and op handlers.
//!
//! # Endpoints
//!
//! | method | path | body |
//! |--------|------|------|
//! | GET  | `/health`   | — |
//! | GET  | `/metrics`  | — |
//! | GET  | `/defaults` | — |
//! | GET  | `/sessions` | — |
//! | GET  | `/sessions/{id}` | — |
//! | POST | `/sessions` | session spec (see [`crate::state::SessionSpec`]) |
//! | POST | `/sessions/{id}/{op}` | op arguments |
//! | POST | `/shutdown` | — |
//!
//! Ops: `prepare`, `quality`, `aggregate`, `gossip`, `unicast`, `mst`,
//! `components`, `mincut`, plus the mutations `reassign_parts`,
//! `update_weights`, `set_weights`, `set_partition`. Every handler returns
//! `Result<Value, ApiError>`; the worker renders either side as JSON.

use crate::error::ApiError;
use crate::json;
use crate::state::{AppState, SessionEntry, SessionSpec};
use lcs_algos::SessionAlgoOps;
use lcs_congest::protocols::AggOp;
use lcs_core::session::{OpReport, SessionConfig};
use lcs_graph::weights::EdgeWeights;
use lcs_graph::{EdgeId, NodeId, PartId};
use lcs_partwise::{IdempotentOp, SessionPartwiseOps};
use serde::{Serialize, Value};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Dispatches one request, returning `(status, json_body)`.
pub fn handle(state: &AppState, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    match route(state, method, path, body) {
        Ok(v) => (200, json::render(&v)),
        Err(e) => (e.status, json::render(&e.to_body())),
    }
}

fn route(state: &AppState, method: &str, path: &str, body: &[u8]) -> Result<Value, ApiError> {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (method, segments.as_slice()) {
        ("GET", ["health"]) => Ok(Value::object([("status", Value::Str("ok".to_string()))])),
        ("GET", ["metrics"]) => Ok(metrics(state)),
        ("GET", ["defaults"]) => Ok(Value::object([(
            "config",
            SessionConfig::default().to_value(),
        )])),
        ("GET", ["sessions"]) => Ok(list_sessions(state)),
        ("GET", ["sessions", id]) => session_info(state, id),
        ("POST", ["sessions"]) => create_session(state, body),
        ("POST", ["sessions", id, op]) => {
            let entry = state
                .registry
                .get(id)
                .ok_or_else(|| ApiError::not_found(format!("no session `{id}`")))?;
            let args = json::parse(body)?;
            run_op(&entry, op, &args)
        }
        ("POST", ["shutdown"]) => {
            state.shutdown.store(true, Ordering::SeqCst);
            Ok(Value::object([(
                "status",
                Value::Str("shutting_down".to_string()),
            )]))
        }
        // Known paths reached with the wrong method get a 405.
        (_, ["health" | "metrics" | "defaults" | "shutdown"]) | (_, ["sessions", ..]) => {
            Err(ApiError::method_not_allowed(method, path))
        }
        _ => Err(ApiError::not_found(format!("no endpoint {path}"))),
    }
}

fn metrics(state: &AppState) -> Value {
    let sessions: Vec<Value> = state
        .registry
        .snapshot()
        .iter()
        .map(|e| {
            let s = e.lock();
            Value::object([
                ("id", Value::Str(e.id.clone())),
                ("cache_stats", s.cache_stats().to_value()),
            ])
        })
        .collect();
    Value::object([
        ("server", state.metrics.to_value()),
        ("registry", state.registry.stats().to_value()),
        ("sessions", Value::Arr(sessions)),
    ])
}

fn list_sessions(state: &AppState) -> Value {
    let sessions: Vec<Value> = state
        .registry
        .snapshot()
        .iter()
        .map(|e| Value::object([("id", Value::Str(e.id.clone())), ("spec", e.spec.clone())]))
        .collect();
    Value::object([("sessions", Value::Arr(sessions))])
}

fn session_info(state: &AppState, id: &str) -> Result<Value, ApiError> {
    let entry = state
        .registry
        .get(id)
        .ok_or_else(|| ApiError::not_found(format!("no session `{id}`")))?;
    let session = entry.lock();
    Ok(Value::object([
        ("id", Value::Str(entry.id.clone())),
        ("spec", entry.spec.clone()),
        ("num_nodes", Value::U64(entry.graph.num_nodes() as u64)),
        ("num_edges", Value::U64(entry.graph.num_edges() as u64)),
        ("cache_stats", session.cache_stats().to_value()),
    ]))
}

fn create_session(state: &AppState, body: &[u8]) -> Result<Value, ApiError> {
    let v = json::parse(body)?;
    let spec = SessionSpec::from_value(&v)?;
    let (entry, created) = state.registry.get_or_create(&spec)?;
    Ok(Value::object([
        ("id", Value::Str(entry.id.clone())),
        ("created", Value::Bool(created)),
    ]))
}

/// Wraps an op result with the report's accounting fields.
fn report_value<T>(report: &OpReport<T>, result: Value) -> Value {
    let quality = match &report.quality {
        Some(q) => quality_value(q),
        None => Value::Null,
    };
    Value::object([
        ("result", result),
        ("rounds", Value::U64(report.rounds)),
        ("messages", Value::U64(report.messages)),
        ("bits", Value::U64(report.bits)),
        ("threads", Value::U64(report.threads as u64)),
        ("bandwidth_bits", Value::U64(report.bandwidth_bits as u64)),
        ("quality", quality),
    ])
}

fn quality_value(q: &lcs_core::QualityReport) -> Value {
    Value::object([
        ("quality", Value::U64(u64::from(q.quality()))),
        ("max_congestion", Value::U64(u64::from(q.max_congestion))),
        ("max_blocks", Value::U64(u64::from(q.max_blocks))),
        (
            "max_dilation_lower",
            Value::U64(u64::from(q.max_dilation_lower)),
        ),
        (
            "max_dilation_upper",
            Value::U64(u64::from(q.max_dilation_upper)),
        ),
        ("all_connected", Value::Bool(q.all_connected())),
        ("tree_restricted", Value::Bool(q.tree_restricted)),
        ("parts", Value::U64(q.per_part.len() as u64)),
    ])
}

fn opt_u64_array(values: &[Option<u64>]) -> Value {
    Value::Arr(
        values
            .iter()
            .map(|v| match v {
                Some(x) => Value::U64(*x),
                None => Value::Null,
            })
            .collect(),
    )
}

fn agg_op(args: &Value) -> Result<AggOp, ApiError> {
    let name: Option<String> = json::optional(args, "op")?;
    match name.as_deref().unwrap_or("sum") {
        "sum" => Ok(AggOp::Sum),
        "min" => Ok(AggOp::Min),
        "max" => Ok(AggOp::Max),
        other => Err(ApiError::bad_args(format!(
            "unknown aggregate op `{other}` — one of sum, min, max"
        ))),
    }
}

fn gossip_op(args: &Value) -> Result<IdempotentOp, ApiError> {
    let name: Option<String> = json::optional(args, "op")?;
    match name.as_deref().unwrap_or("min") {
        "min" => Ok(IdempotentOp::Min),
        "max" => Ok(IdempotentOp::Max),
        other => Err(ApiError::bad_args(format!(
            "unknown gossip op `{other}` — one of min, max (idempotent only)"
        ))),
    }
}

fn run_op(entry: &Arc<SessionEntry>, op: &str, args: &Value) -> Result<Value, ApiError> {
    let mut session = entry.lock();
    let s = &mut *session;
    match op {
        "prepare" => {
            s.try_full_artifact()?;
            Ok(Value::object([
                ("prepared", Value::Bool(true)),
                ("cache_stats", s.cache_stats().to_value()),
            ]))
        }
        "quality" => {
            let q = s.try_quality()?;
            let mut detail = quality_value(q);
            if let Value::Obj(fields) = &mut detail {
                fields.push(("report".to_string(), q.to_value()));
            }
            Ok(detail)
        }
        "cache_stats" => Ok(s.cache_stats().to_value()),
        "aggregate" => {
            let values: Vec<u64> = json::require(args, "values")?;
            let op = agg_op(args)?;
            let leaders: Option<Vec<u32>> = json::optional(args, "leaders")?;
            let report = match leaders {
                Some(ls) => {
                    let ls: Vec<NodeId> = ls.into_iter().map(NodeId).collect();
                    s.try_aggregate_with_leaders(&values, op, &ls)?
                }
                None => s.try_aggregate(&values, op)?,
            };
            let result = Value::object([
                ("results", opt_u64_array(&report.result.results)),
                (
                    "all_members_informed",
                    Value::Bool(report.result.all_members_informed),
                ),
            ]);
            Ok(report_value(&report, result))
        }
        "gossip" => {
            let values: Vec<u64> = json::require(args, "values")?;
            let op = gossip_op(args)?;
            let report = s.try_gossip(&values, op)?;
            let result = Value::object([
                ("results", opt_u64_array(&report.result.results)),
                ("converged", Value::Bool(report.result.converged)),
            ]);
            Ok(report_value(&report, result))
        }
        "unicast" => {
            let demands: Vec<(u32, u32)> = json::require(args, "demands")?;
            let demands: Vec<(NodeId, NodeId)> = demands
                .into_iter()
                .map(|(a, b)| (NodeId(a), NodeId(b)))
                .collect();
            let report = s.try_unicast(&demands)?;
            let result = Value::object([
                ("delivered", Value::U64(report.result.delivered as u64)),
                (
                    "congestion",
                    Value::U64(u64::from(report.result.congestion)),
                ),
                ("dilation", Value::U64(u64::from(report.result.dilation))),
            ]);
            Ok(report_value(&report, result))
        }
        "mst" => {
            let weights: Vec<u64> = json::require(args, "weights")?;
            if weights.len() != entry.graph.num_edges() {
                return Err(ApiError::bad_args(format!(
                    "one weight per edge required — got {}, the graph has {} edges",
                    weights.len(),
                    entry.graph.num_edges()
                )));
            }
            let weights = EdgeWeights::from_vec(entry.graph, weights);
            let report = s.try_mst(&weights)?;
            let result = Value::object([
                (
                    "edges",
                    Value::Arr(
                        report
                            .result
                            .edges
                            .iter()
                            .map(|e| Value::U64(u64::from(e.0)))
                            .collect(),
                    ),
                ),
                ("total_weight", Value::U64(report.result.total_weight)),
                ("phases", Value::U64(report.result.phases as u64)),
            ]);
            Ok(report_value(&report, result))
        }
        "components" => {
            let report = s.try_components()?;
            let result = Value::object([
                ("count", Value::U64(report.result.count as u64)),
                (
                    "label",
                    Value::Arr(
                        report
                            .result
                            .label
                            .iter()
                            .map(|&l| Value::U64(u64::from(l)))
                            .collect(),
                    ),
                ),
            ]);
            Ok(report_value(&report, result))
        }
        "mincut" => {
            let report = s.try_mincut()?;
            let result = Value::object([
                ("estimate", Value::U64(report.result.estimate)),
                ("trees", Value::U64(report.result.trees as u64)),
                ("eval_rounds", Value::U64(report.result.eval_rounds)),
            ]);
            Ok(report_value(&report, result))
        }
        "reassign_parts" => {
            let moves: Vec<(u32, u32)> = json::require(args, "moves")?;
            let moves: Vec<(NodeId, PartId)> = moves
                .into_iter()
                .map(|(v, p)| (NodeId(v), PartId(p)))
                .collect();
            // Every reassign failure is an invalid *mutation* — the 409
            // class — including moves to a nonexistent part.
            let touched = s
                .try_reassign_parts(&moves)
                .map_err(|e| ApiError::conflict(e.to_string()))?;
            Ok(Value::object([
                (
                    "touched_parts",
                    Value::Arr(touched.iter().map(|p| Value::U64(u64::from(p.0))).collect()),
                ),
                ("cache_stats", s.cache_stats().to_value()),
            ]))
        }
        "update_weights" => {
            let changes: Vec<(u32, u64)> = json::require(args, "changes")?;
            let changes: Vec<(EdgeId, u64)> =
                changes.into_iter().map(|(e, w)| (EdgeId(e), w)).collect();
            s.try_update_weights(&changes)?;
            Ok(Value::object([(
                "updated",
                Value::U64(changes.len() as u64),
            )]))
        }
        "set_weights" => {
            let weights: Vec<u64> = json::require(args, "weights")?;
            if weights.len() != entry.graph.num_edges() {
                return Err(ApiError::bad_args(format!(
                    "one weight per edge required — got {}, the graph has {} edges",
                    weights.len(),
                    entry.graph.num_edges()
                )));
            }
            s.try_set_weights(EdgeWeights::from_vec(entry.graph, weights))?;
            Ok(Value::object([(
                "updated",
                Value::U64(entry.graph.num_edges() as u64),
            )]))
        }
        "set_partition" => {
            let parts: Vec<Vec<u32>> = json::require(args, "partition")?;
            let n = entry.graph.num_nodes();
            if let Some(&bad) = parts.iter().flatten().find(|&&v| v as usize >= n) {
                return Err(ApiError::conflict(format!(
                    "partition node {bad} out of range — the graph has {n} nodes"
                )));
            }
            let parts: Vec<Vec<NodeId>> = parts
                .iter()
                .map(|p| p.iter().map(|&v| NodeId(v)).collect())
                .collect();
            s.set_partition(parts)?;
            Ok(Value::object([(
                "parts",
                Value::U64(s.partition().num_parts() as u64),
            )]))
        }
        other => Err(ApiError::not_found(format!(
            "no op `{other}` — one of prepare, quality, cache_stats, aggregate, gossip, \
             unicast, mst, components, mincut, reassign_parts, update_weights, set_weights, \
             set_partition"
        ))),
    }
}
