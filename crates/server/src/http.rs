//! Minimal HTTP/1.1 framing over `std::net` — just enough for a JSON API:
//! request-line + headers + `Content-Length` bodies, keep-alive by
//! default, no chunked encoding, no TLS. Header blocks are capped at 16
//! KiB and bodies at the server's configured limit; both caps fail fast
//! with a structured status instead of buffering unbounded input.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Maximum size of the request line + headers.
const MAX_HEAD: usize = 16 * 1024;

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-cased HTTP method.
    pub method: String,
    /// Request path (query strings are not used by this API).
    pub path: String,
    /// Raw body bytes.
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Clean end of stream before any request bytes (keep-alive close).
    Closed,
    /// Socket error or read timeout mid-request.
    Io(std::io::Error),
    /// The head or body violates HTTP framing.
    Malformed(String),
    /// `Content-Length` exceeds the configured body cap; holds the cap.
    /// The header block was consumed, so a 413 can still be written.
    TooLarge(usize),
}

/// Reads one request from the stream. `max_body` bounds the declared
/// `Content-Length`; anything larger is rejected before reading the body.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, ReadError> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // Byte-at-a-time until CRLFCRLF: bodies must not be consumed into a
    // buffered reader that outlives this request on a keep-alive stream.
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                if head.is_empty() {
                    return Err(ReadError::Closed);
                }
                return Err(ReadError::Malformed("truncated request head".to_string()));
            }
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(ReadError::Io(e)),
        }
        if head.len() > MAX_HEAD {
            return Err(ReadError::Malformed("request head too large".to_string()));
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        // Tolerate bare-LF clients (e.g. hand-typed requests).
        if head.ends_with(b"\n\n") {
            break;
        }
    }

    let head = String::from_utf8(head)
        .map_err(|_| ReadError::Malformed("request head is not UTF-8".to_string()))?;
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("empty request line".to_string()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("request line has no path".to_string()))?
        .to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "unsupported protocol {version}"
        )));
    }

    let mut content_length = 0usize;
    let mut keep_alive = true;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| ReadError::Malformed("invalid Content-Length".to_string()))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }

    if content_length > max_body {
        return Err(ReadError::TooLarge(max_body));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).map_err(ReadError::Io)?;
    Ok(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

/// Writes one JSON response. `keep_alive` mirrors the request's wish; the
/// server closes the stream after `false`.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {len}\r\nConnection: {conn}\r\n\r\n",
        reason = reason(status),
        len = body.len(),
        conn = if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Canonical reason phrases for the statuses this API produces.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}
