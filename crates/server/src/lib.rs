//! `lcs_server` — a dependency-free HTTP/1.1 + JSON daemon that serves
//! low-congestion-shortcut sessions over `std::net`.
//!
//! The serve-many economics of [`ShortcutSession`] — prepare a shortcut
//! once, answer many ops against it — only pay off if the session outlives
//! a single process invocation of a CLI. This daemon keeps sessions warm:
//! graphs are preloaded into a deduplicated registry, and each
//! `(graph, partition, backend, config)` spec maps to one long-lived
//! session behind a capacity-bounded LRU. Re-POSTing a spec hits the warm
//! session; ops reuse its cached artifacts and bill only the op rounds.
//!
//! # Architecture
//!
//! * **Sockets** — one [`std::net::TcpListener`], cloned into a fixed pool
//!   of worker threads that each block in `accept`. No async runtime, no
//!   dependencies beyond the vendored serde shims.
//! * **Framing** — [`http`] implements just enough HTTP/1.1 for a JSON
//!   API: `Content-Length` bodies, keep-alive, capped heads and bodies,
//!   per-connection read/write timeouts.
//! * **State** — [`state`] holds the graph registry and the warm-session
//!   LRU; see its module docs for the ownership and locking model (leaked
//!   graphs, two-level mutexes, poison-tolerant locking).
//! * **Dispatch** — [`api`] routes requests and hand-renders the op
//!   reports to JSON over the vendored [`serde`] `Value` tree.
//! * **Errors** — [`error::ApiError`] maps every handler failure to a
//!   structured `{error, message, status}` body: 400 malformed JSON, 404
//!   unknown session, 409 invalid mutation, 413 oversized body, 422 bad
//!   op arguments. Handlers run behind a `catch_unwind` fence, so one bad
//!   request can never kill a worker: a panic is counted in
//!   [`metrics::Metrics::worker_panics`], answered with a 500, and the
//!   worker keeps serving.
//! * **Shutdown** — `POST /shutdown` (or [`ServerHandle::shutdown`]) sets
//!   a flag and pokes each worker with a dummy connection so blocked
//!   `accept` calls return; workers drain their current connection and
//!   exit.
//!
//! # Quick start
//!
//! ```no_run
//! use lcs_server::{Server, ServerConfig};
//! use serde::Value;
//!
//! let handle = Server::start(ServerConfig::default()).unwrap();
//! let mut client = lcs_server::client::Client::new(handle.addr());
//! let spec = Value::object([(
//!     "graph",
//!     Value::object([
//!         ("family", Value::Str("grid".into())),
//!         ("rows", Value::U64(8)),
//!         ("cols", Value::U64(8)),
//!     ]),
//! )]);
//! let created = client.post("/sessions", &spec).unwrap();
//! assert_eq!(created.status, 200);
//! handle.shutdown();
//! ```
//!
//! [`ShortcutSession`]: lcs_core::session::ShortcutSession

pub mod api;
pub mod client;
pub mod error;
pub mod http;
pub mod json;
pub mod metrics;
pub mod state;

pub use error::ApiError;
pub use state::{AppState, Registry, RegistryStats, ServerConfig, SessionEntry, SessionSpec};

use crate::http::ReadError;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// The daemon entry point.
pub struct Server;

/// A running server: its bound address, shared state, and worker threads.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and spawns the worker pool.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let state = Arc::new(AppState::new(config));
        *state.addr.lock().unwrap_or_else(PoisonError::into_inner) = Some(addr);
        let handles = (0..workers)
            .map(|i| {
                let listener = listener.try_clone()?;
                let state = Arc::clone(&state);
                Ok(std::thread::Builder::new()
                    .name(format!("lcs-serve-{i}"))
                    .spawn(move || worker_loop(&listener, &state))
                    .expect("spawning a worker thread"))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(ServerHandle {
            addr,
            state,
            workers: handles,
        })
    }
}

impl ServerHandle {
    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (metrics and registry introspection).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Signals shutdown, wakes the workers, and joins them.
    pub fn shutdown(self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        wake_workers(self.addr, self.workers.len());
        self.state.close_connections();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Blocks until the workers exit (e.g. after `POST /shutdown`).
    pub fn wait(self) {
        // A /shutdown handler cannot wake the other workers from inside a
        // request, so the waiter polls the flag and does the waking.
        loop {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        wake_workers(self.addr, self.workers.len());
        self.state.close_connections();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Unblocks workers stuck in `accept` with throwaway connections.
fn wake_workers(addr: SocketAddr, n: usize) {
    for _ in 0..n {
        if let Ok(stream) = TcpStream::connect(addr) {
            drop(stream);
        }
    }
}

fn worker_loop(listener: &TcpListener, state: &Arc<AppState>) {
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        serve_connection(stream, state);
    }
}

/// Serves one keep-alive connection until close, error, or shutdown.
fn serve_connection(stream: TcpStream, state: &Arc<AppState>) {
    // Registered so shutdown can force-close this connection while the
    // worker is blocked reading the next keep-alive request.
    let slot = state.register_connection(&stream);
    serve_requests(stream, state);
    state.unregister_connection(slot);
}

fn serve_requests(mut stream: TcpStream, state: &Arc<AppState>) {
    let timeout = state.config.io_timeout;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let _ = stream.set_nodelay(true);
    loop {
        let request = match http::read_request(&mut stream, state.config.max_body) {
            Ok(r) => r,
            Err(ReadError::Closed) | Err(ReadError::Io(_)) => return,
            Err(ReadError::Malformed(m)) => {
                let err = ApiError::bad_request(format!("malformed request: {m}"));
                let body = json::render(&err.to_body());
                state.metrics.record(err.status, 0);
                let _ = http::write_response(&mut stream, err.status, &body, false);
                return;
            }
            Err(ReadError::TooLarge(limit)) => {
                // The body was never read, so the framing is gone — answer
                // and close.
                let err = ApiError::too_large(limit);
                let body = json::render(&err.to_body());
                state.metrics.record(err.status, 0);
                let _ = http::write_response(&mut stream, err.status, &body, false);
                return;
            }
        };

        let start = Instant::now();
        // The unwind fence is the no-dead-workers guarantee: a panicking
        // handler yields a 500 and this thread keeps serving.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            api::handle(state, &request.method, &request.path, &request.body)
        }));
        let (status, body) = outcome.unwrap_or_else(|_| {
            state.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
            let err = ApiError::internal_panic();
            (err.status, json::render(&err.to_body()))
        });
        let micros = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        state.metrics.record(status, micros);

        let keep_alive = request.keep_alive && !state.shutdown.load(Ordering::SeqCst);
        if http::write_response(&mut stream, status, &body, keep_alive).is_err() {
            return;
        }
        if !keep_alive {
            return;
        }
    }
}
