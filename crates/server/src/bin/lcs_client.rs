//! A tiny curl stand-in for driving the daemon from CI and the shell.
//!
//! ```text
//! lcs_client ADDR METHOD PATH [JSON_BODY]
//! lcs_client 127.0.0.1:7420 GET /health
//! lcs_client 127.0.0.1:7420 POST /sessions '{"graph":{"family":"grid","rows":8,"cols":8}}'
//! ```
//!
//! Prints the response body to stdout and exits 0 on 2xx, 1 otherwise
//! (the status code goes to stderr), so CI can assert on both channels.

use lcs_server::client::Client;
use std::net::ToSocketAddrs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        eprintln!("usage: lcs_client ADDR METHOD PATH [JSON_BODY]");
        std::process::exit(2);
    }
    let addr = args[0]
        .to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
        .unwrap_or_else(|| {
            eprintln!("cannot resolve address {}", args[0]);
            std::process::exit(2);
        });
    let method = args[1].to_ascii_uppercase();
    let path = &args[2];
    let body = args.get(3).map(String::as_str).unwrap_or("");

    let mut client = Client::new(addr);
    let response = match client.request(&method, path, body.as_bytes()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("request failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", lcs_server::json::render(&response.body));
    eprintln!("status: {}", response.status);
    std::process::exit(if response.is_ok() { 0 } else { 1 });
}
