//! Serving benchmark: a mixed query/mutation workload over real loopback
//! sockets. Emits `BENCH_serve.json`.
//!
//! Usage:
//!
//! ```text
//! bench_serve [--fast] [--out DIR]
//! ```
//!
//! The scenario the daemon exists for: one warm `ShortcutSession` behind
//! the LRU absorbs a stream of concurrent clients — aggregates, quality
//! queries, periodic partition churn (`reassign_parts`), and periodic
//! re-creation POSTs that must hit the warm session instead of
//! rebuilding. Each client thread drives its own keep-alive connection
//! and records per-request latencies; the headline numbers are sustained
//! QPS and the p50/p99 latency over the steady-state phase.
//!
//! After the steady state, a **malformed-request barrage** throws broken
//! JSON, unknown sessions, bad op arguments, invalid mutations, and
//! oversized bodies at the daemon. The binary **asserts**:
//!
//! - every barrage response is a structured 4xx (never a 5xx, never a
//!   dropped worker),
//! - `worker_panics` stays 0 and `/health` still answers 200 afterwards —
//!   no worker died,
//! - the warm-session hit rate over the steady state exceeds 0.9.
//!
//! `--fast` is the CI smoke configuration (24×24 grid, 4 clients). The
//! full run serves a 48×48 grid (n = 2 304) to 8 clients.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p lcs_server --bin bench_serve -- --out .
//! ```

use lcs_server::client::Client;
use lcs_server::{json, Server, ServerConfig};
use serde::Value;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Steady-state acceptance bar: re-POSTing a live spec must be answered by
/// the warm session, not a rebuild.
const MIN_HIT_RATE: f64 = 0.9;

fn grid_spec(side: usize) -> Value {
    Value::object([(
        "graph",
        Value::object([
            ("family", Value::Str("grid".to_string())),
            ("rows", Value::U64(side as u64)),
            ("cols", Value::U64(side as u64)),
        ]),
    )])
}

fn u64_field(v: &Value, name: &str) -> u64 {
    match json::lookup(v, name) {
        Some(Value::U64(x)) => *x,
        other => panic!("metrics field `{name}` missing or mistyped: {other:?}"),
    }
}

/// One client thread: `iters` requests in a query/churn/re-create mix on a
/// private keep-alive connection. Thread `t` owns mover row `1 + 2t` of
/// the grid, so concurrent churn touches disjoint part pairs and every
/// move keeps both parts connected (rows are paths, `(r,0)-(r-1,0)` is a
/// grid edge).
fn client_loop(
    addr: SocketAddr,
    session: String,
    spec_body: String,
    values_body: String,
    side: usize,
    thread: usize,
    iters: usize,
) -> Vec<u64> {
    // Generous timeout: all clients serialize on the one warm session, so
    // a request's queue wait can be many multiples of its service time.
    let mut client = Client::new(addr).with_timeout(Duration::from_secs(120));
    let mut latencies = Vec::with_capacity(iters);
    let row = 1 + 2 * thread;
    let node = (row * side) as u64;
    for i in 0..iters {
        let t0 = Instant::now();
        let response = if i % 16 == 8 {
            let target = if i % 32 == 8 { row - 1 } else { row } as u64;
            let moves = Value::object([(
                "moves",
                Value::Arr(vec![Value::Arr(vec![Value::U64(node), Value::U64(target)])]),
            )]);
            client.post(&format!("/sessions/{session}/reassign_parts"), &moves)
        } else if i % 10 == 0 {
            client.post_raw("/sessions", spec_body.as_bytes())
        } else if i % 3 == 0 {
            client.post_raw(&format!("/sessions/{session}/quality"), b"")
        } else {
            client.post_raw(
                &format!("/sessions/{session}/aggregate"),
                values_body.as_bytes(),
            )
        };
        let response = response.expect("steady-state request");
        assert!(
            response.is_ok(),
            "steady-state request {i} on thread {thread} failed: {} {}",
            response.status,
            json::render(&response.body)
        );
        latencies.push(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
    }
    latencies
}

/// Fires structured-failure requests and asserts every answer is a 4xx.
/// Returns the number of requests sent.
fn malformed_barrage(addr: SocketAddr, session: &str, rounds: usize) -> usize {
    let mut client = Client::new(addr);
    let oversized = vec![b'x'; 300 * 1024];
    let mut sent = 0;
    for _ in 0..rounds {
        let cases: Vec<(String, Vec<u8>, u16)> = vec![
            ("/sessions".to_string(), b"{broken json".to_vec(), 400),
            (
                "/sessions/s999/aggregate".to_string(),
                b"{\"values\": []}".to_vec(),
                404,
            ),
            (
                format!("/sessions/{session}/aggregate"),
                b"{\"values\": \"not an array\"}".to_vec(),
                422,
            ),
            (
                format!("/sessions/{session}/reassign_parts"),
                b"{\"moves\": [[0, 4000000]]}".to_vec(),
                409,
            ),
            (
                format!("/sessions/{session}/update_weights"),
                b"{\"changes\": [[9999999, 1]]}".to_vec(),
                422,
            ),
            (
                format!("/sessions/{session}/aggregate"),
                oversized.clone(),
                413,
            ),
            ("/nope".to_string(), Vec::new(), 404),
        ];
        for (path, body, expected) in cases {
            let response = client
                .post_raw(&path, &body)
                .expect("barrage request reaches the server");
            assert_eq!(
                response.status,
                expected,
                "barrage {path} answered {} ({})",
                response.status,
                json::render(&response.body)
            );
            sent += 1;
        }
    }
    sent
}

struct Measurement {
    qps: f64,
    p50_micros: u64,
    p99_micros: u64,
    requests: usize,
    hit_rate: f64,
    barrage_requests: usize,
}

fn measure(side: usize, threads: usize, iters: usize) -> Measurement {
    let handle = Server::start(ServerConfig {
        workers: threads.max(2),
        max_body: 256 * 1024,
        io_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral loopback port");
    let addr = handle.addr();

    // Setup: create the warm session over HTTP and prepare its shortcut.
    let mut setup = Client::new(addr);
    let spec = grid_spec(side);
    let created = setup.post("/sessions", &spec).expect("create session");
    assert!(created.is_ok(), "create failed: {}", created.status);
    let session = match created.field("id") {
        Some(Value::Str(id)) => id.clone(),
        other => panic!("create response has no id: {other:?}"),
    };
    let prepared = setup
        .post_raw(&format!("/sessions/{session}/prepare"), b"")
        .expect("prepare");
    assert!(prepared.is_ok(), "prepare failed: {}", prepared.status);

    let n = side * side;
    let values = Value::object([
        (
            "values",
            Value::Arr((0..n as u64).map(Value::U64).collect()),
        ),
        ("op", Value::Str("sum".to_string())),
    ]);
    let values_body = json::render(&values);
    let spec_body = json::render(&spec);

    // Steady state: concurrent clients on their own keep-alive sockets.
    let t0 = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let session = session.clone();
            let spec_body = spec_body.clone();
            let values_body = values_body.clone();
            std::thread::spawn(move || {
                client_loop(addr, session, spec_body, values_body, side, t, iters)
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::with_capacity(threads * iters);
    for w in workers {
        latencies.extend(w.join().expect("client thread"));
    }
    let elapsed = t0.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let requests = latencies.len();
    let pct = |q: f64| latencies[(((requests - 1) as f64) * q).round() as usize];

    // Hit rate: every steady-state re-POST of the live spec must have been
    // answered warm (the one miss is the setup create).
    let metrics = setup.get("/metrics").expect("metrics");
    let registry = json::lookup(&metrics.body, "registry").expect("registry stats");
    let hits = u64_field(registry, "hits");
    let misses = u64_field(registry, "misses");
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;

    // Malformed barrage, then prove no worker died: the panic counter is
    // still zero and the daemon still answers.
    let barrage_requests = malformed_barrage(addr, &session, 8);
    let metrics = setup.get("/metrics").expect("metrics after barrage");
    let server_stats = json::lookup(&metrics.body, "server").expect("server stats");
    let panics = u64_field(server_stats, "worker_panics");
    assert_eq!(panics, 0, "the barrage must not panic any handler");
    let health = setup.get("/health").expect("health after barrage");
    assert_eq!(
        health.status, 200,
        "the daemon must keep serving after the barrage"
    );

    handle.shutdown();
    Measurement {
        qps: requests as f64 / elapsed.max(1e-9),
        p50_micros: pct(0.50),
        p99_micros: pct(0.99),
        requests,
        hit_rate,
        barrage_requests,
    }
}

fn render(side: usize, threads: usize, m: &Measurement) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"bench_serve/v1\",");
    out.push_str(
        "  \"note\": \"mixed aggregate/quality/churn/re-create workload over real loopback \
         sockets with keep-alive clients; hit_rate > 0.9 and worker_panics == 0 across the \
         malformed barrage are asserted in-binary; regenerate with `cargo run --release -p \
         lcs_server --bin bench_serve -- --out .`\",\n",
    );
    out.push_str("  \"entries\": [\n");
    let _ = writeln!(
        out,
        "    {{\"family\": \"grid_rows\", \"n\": {}, \"threads\": {}, \"requests\": {}, \
         \"qps\": {:.0}, \"p50_micros\": {}, \"p99_micros\": {}, \"hit_rate\": {:.4}, \
         \"malformed_requests\": {}, \"worker_panics\": 0}}",
        side * side,
        threads,
        m.requests,
        m.qps,
        m.p50_micros,
        m.p99_micros,
        m.hit_rate,
        m.barrage_requests
    );
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| ".".to_string());

    let (side, threads, iters) = if fast { (24, 4, 120) } else { (48, 8, 250) };

    let mut m = measure(side, threads, iters);
    if m.hit_rate <= MIN_HIT_RATE {
        // One re-measure before failing: a single noisy window must not
        // turn the bench red.
        m = measure(side, threads, iters);
    }
    assert!(
        m.hit_rate > MIN_HIT_RATE,
        "steady-state warm-session hit rate {:.4} is below the {MIN_HIT_RATE} bar",
        m.hit_rate
    );

    let json = render(side, threads, &m);
    std::fs::write(format!("{out_dir}/BENCH_serve.json"), &json).expect("write BENCH_serve.json");
    print!("{json}");
}
