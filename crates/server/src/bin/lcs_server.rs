//! The daemon CLI: bind, serve, block until `POST /shutdown`.
//!
//! ```text
//! lcs_server [--addr 127.0.0.1:7420] [--workers 4] [--max-body BYTES]
//!            [--timeout-secs 10] [--sessions 16] [--graphs 32]
//! ```

use lcs_server::{Server, ServerConfig};
use std::time::Duration;

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7420".to_string(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = parse(&value("--workers"), "--workers"),
            "--max-body" => config.max_body = parse(&value("--max-body"), "--max-body"),
            "--timeout-secs" => {
                config.io_timeout =
                    Duration::from_secs(parse(&value("--timeout-secs"), "--timeout-secs"))
            }
            "--sessions" => config.session_capacity = parse(&value("--sessions"), "--sessions"),
            "--graphs" => config.graph_capacity = parse(&value("--graphs"), "--graphs"),
            "--help" | "-h" => {
                println!(
                    "usage: lcs_server [--addr HOST:PORT] [--workers N] [--max-body BYTES] \
                     [--timeout-secs S] [--sessions N] [--graphs N]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let handle = match Server::start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            std::process::exit(1);
        }
    };
    println!("lcs_server listening on {}", handle.addr());
    handle.wait();
    println!("lcs_server stopped");
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| panic!("invalid value for {flag}: {s}"))
}
