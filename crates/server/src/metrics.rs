//! Lock-free serving metrics: request/response counters, a log₂-bucketed
//! latency histogram, and the worker-panic tally the malformed-request
//! barrage asserts on. Exported as JSON by `GET /metrics`.

use serde::Value;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ microsecond buckets (bucket `i` counts latencies in
/// `[2^i, 2^(i+1))` µs; the last bucket absorbs the tail).
const BUCKETS: usize = 32;

/// Process-wide serving counters. All relaxed atomics — the numbers are
/// observability, not synchronization.
#[derive(Default)]
pub struct Metrics {
    /// Requests fully parsed and dispatched to a handler.
    pub requests: AtomicU64,
    /// 2xx responses.
    pub ok: AtomicU64,
    /// 4xx responses (structured client errors).
    pub client_errors: AtomicU64,
    /// 5xx responses (caught panics).
    pub server_errors: AtomicU64,
    /// Handler panics caught by the worker's `catch_unwind` fence. A
    /// healthy server keeps this at zero; the worker survives either way.
    pub worker_panics: AtomicU64,
    latency: [AtomicU64; BUCKETS],
}

impl Metrics {
    /// Records one response with its handler latency.
    pub fn record(&self, status: u16, micros: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &self.ok,
            400..=499 => &self.client_errors,
            _ => &self.server_errors,
        };
        class.fetch_add(1, Ordering::Relaxed);
        let bucket = (64 - micros.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Approximate latency quantile in microseconds (upper edge of the
    /// histogram bucket holding the q-th response), 0 with no samples.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .latency
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }

    /// The metrics as a JSON value.
    pub fn to_value(&self) -> Value {
        let histogram: Vec<Value> = self
            .latency
            .iter()
            .enumerate()
            .filter(|(_, c)| c.load(Ordering::Relaxed) > 0)
            .map(|(i, c)| {
                Value::object([
                    ("le_micros", Value::U64(1u64 << (i + 1))),
                    ("count", Value::U64(c.load(Ordering::Relaxed))),
                ])
            })
            .collect();
        Value::object([
            (
                "requests",
                Value::U64(self.requests.load(Ordering::Relaxed)),
            ),
            ("ok", Value::U64(self.ok.load(Ordering::Relaxed))),
            (
                "client_errors",
                Value::U64(self.client_errors.load(Ordering::Relaxed)),
            ),
            (
                "server_errors",
                Value::U64(self.server_errors.load(Ordering::Relaxed)),
            ),
            (
                "worker_panics",
                Value::U64(self.worker_panics.load(Ordering::Relaxed)),
            ),
            ("p50_micros", Value::U64(self.quantile_micros(0.5))),
            ("p99_micros", Value::U64(self.quantile_micros(0.99))),
            ("latency_histogram", Value::Arr(histogram)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let m = Metrics::default();
        for micros in [1, 2, 3, 100, 1000, 100_000] {
            m.record(200, micros);
        }
        m.record(404, 50);
        assert_eq!(m.requests.load(Ordering::Relaxed), 7);
        assert_eq!(m.ok.load(Ordering::Relaxed), 6);
        assert_eq!(m.client_errors.load(Ordering::Relaxed), 1);
        // p50 of {1,2,3,50,100,1000,100000} lands in the bucket holding 50.
        let p50 = m.quantile_micros(0.5);
        assert!((4..=64).contains(&p50), "p50 bucket edge was {p50}");
        assert!(m.quantile_micros(0.99) >= 65536);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let m = Metrics::default();
        assert_eq!(m.quantile_micros(0.5), 0);
    }
}
