//! A minimal blocking HTTP/1.1 JSON client for the daemon — shared by the
//! integration tests, the `lcs_client` CLI, and `bench_serve` (the
//! container has no curl). One [`Client`] holds one keep-alive connection;
//! a request on a dead connection reconnects once before failing.

use crate::json::{self, Json};
use serde::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One keep-alive connection to the daemon.
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    stream: Option<TcpStream>,
}

/// A parsed response: status code and JSON body.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Parsed JSON body ([`Value::Null`] for an empty body).
    pub body: Value,
}

impl Response {
    /// `true` for 2xx.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Field lookup on the body object, `None` if absent.
    pub fn field<'a>(&'a self, name: &str) -> Option<&'a Value> {
        json::lookup(&self.body, name)
    }
}

impl Client {
    /// A client for the given address (connects lazily).
    pub fn new(addr: SocketAddr) -> Self {
        Client {
            addr,
            timeout: Duration::from_secs(30),
            stream: None,
        }
    }

    /// Overrides the per-request socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    fn connect(&mut self) -> std::io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// GET the path.
    pub fn get(&mut self, path: &str) -> std::io::Result<Response> {
        self.request("GET", path, b"")
    }

    /// POST a JSON value to the path.
    pub fn post(&mut self, path: &str, body: &Value) -> std::io::Result<Response> {
        let rendered = json::render(body);
        self.request("POST", path, rendered.as_bytes())
    }

    /// POST raw bytes (for malformed-payload tests).
    pub fn post_raw(&mut self, path: &str, body: &[u8]) -> std::io::Result<Response> {
        self.request("POST", path, body)
    }

    /// One request; reconnects once if the keep-alive peer went away.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> std::io::Result<Response> {
        match self.try_request(method, path, body) {
            Ok(r) => Ok(r),
            Err(_) => {
                self.stream = None;
                self.try_request(method, path, body)
            }
        }
    }

    fn try_request(&mut self, method: &str, path: &str, body: &[u8]) -> std::io::Result<Response> {
        let stream = self.connect()?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: lcs\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        let response = read_response(stream);
        if response.is_err() {
            self.stream = None;
        }
        response
    }
}

fn read_response(stream: &mut TcpStream) -> std::io::Result<Response> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        let n = stream.read(&mut byte)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        head.push(byte[0]);
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        if head.len() > 64 * 1024 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "response head too large",
            ));
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line: {status_line}"),
            )
        })?;
    let mut content_length = 0usize;
    let mut close = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().unwrap_or(0);
        } else if name.eq_ignore_ascii_case("connection")
            && value.trim().eq_ignore_ascii_case("close")
        {
            close = true;
        }
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    if close {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    let text = String::from_utf8_lossy(&body);
    let value = if text.trim().is_empty() {
        Value::Null
    } else {
        serde_json::from_str::<Json>(&text)
            .map(|j| j.0)
            .map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("response body is not JSON: {e}"),
                )
            })?
    };
    Ok(Response {
        status,
        body: value,
    })
}
