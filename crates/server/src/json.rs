//! JSON plumbing over the vendored serde shim.
//!
//! The shim's [`Value`] tree implements neither `Serialize` nor
//! `Deserialize` itself (it is the *target* of both traits), so the server
//! wraps it in the local [`Json`] newtype to pass arbitrary request and
//! response bodies through `serde_json`. Field extraction distinguishes
//! the two client-error classes the API promises: a body that does not
//! parse at all is a 400 (`malformed_json`), a body that parses but has
//! the wrong shape is a 422 (`bad_args`).

use crate::error::ApiError;
use serde::de::DeserializeOwned;
use serde::{DeError, Deserialize, Serialize, Value};

/// Local newtype making the shim's [`Value`] itself (de)serializable.
#[derive(Clone, Debug, PartialEq)]
pub struct Json(pub Value);

impl Serialize for Json {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

impl<'de> Deserialize<'de> for Json {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Json(v.clone()))
    }
}

/// Parses a request body. An empty body is treated as the empty object so
/// argument-free ops can be POSTed without a payload; anything else must
/// be valid JSON (400 otherwise).
pub fn parse(body: &[u8]) -> Result<Value, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("request body is not valid UTF-8"))?;
    if text.trim().is_empty() {
        return Ok(Value::Obj(Vec::new()));
    }
    serde_json::from_str::<Json>(text)
        .map(|j| j.0)
        .map_err(|e| ApiError::bad_request(format!("malformed JSON: {e}")))
}

/// Renders a response value to a JSON string. The server never produces
/// non-finite floats, so rendering cannot fail.
pub fn render(v: &Value) -> String {
    serde_json::to_string(&Json(v.clone())).expect("server responses contain no non-finite floats")
}

/// The body as an object's field list (422 otherwise).
pub fn object(v: &Value) -> Result<&[(String, Value)], ApiError> {
    match v {
        Value::Obj(fields) => Ok(fields),
        _ => Err(ApiError::bad_args("request body must be a JSON object")),
    }
}

/// Looks up a field, `None` when absent or `null`.
pub fn lookup<'a>(v: &'a Value, name: &str) -> Option<&'a Value> {
    match v {
        Value::Obj(fields) => fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .filter(|v| !matches!(v, Value::Null)),
        _ => None,
    }
}

/// Deserializes a required field (422 when missing or mistyped).
pub fn require<T: DeserializeOwned>(v: &Value, name: &str) -> Result<T, ApiError> {
    object(v)?;
    let field = lookup(v, name)
        .ok_or_else(|| ApiError::bad_args(format!("missing required field `{name}`")))?;
    T::from_value(field).map_err(|e| ApiError::bad_args(format!("field `{name}`: {e}")))
}

/// Deserializes an optional field (`None` when absent or `null`, 422 when
/// present but mistyped).
pub fn optional<T: DeserializeOwned>(v: &Value, name: &str) -> Result<Option<T>, ApiError> {
    object(v)?;
    match lookup(v, name) {
        None => Ok(None),
        Some(field) => T::from_value(field)
            .map(Some)
            .map_err(|e| ApiError::bad_args(format!("field `{name}`: {e}"))),
    }
}
