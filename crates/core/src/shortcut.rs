//! The shortcut object: one edge set `H_i` per part (Definition 2.2).

use lcs_graph::{EdgeId, Graph, PartId, RootedTree};
use serde::{Deserialize, Serialize};

/// A shortcut `H_1, …, H_k`: for each part `P_i` a set of graph edges that,
/// added to `G[P_i]`, shrink the part's diameter (Definition 2.2).
///
/// Stored as deduplicated, sorted edge lists per part.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shortcut {
    per_part: Vec<Vec<EdgeId>>,
}

impl Shortcut {
    /// The trivial shortcut `H_i = ∅` for `k` parts.
    pub fn empty(k: usize) -> Self {
        Shortcut {
            per_part: vec![Vec::new(); k],
        }
    }

    /// Wraps per-part edge lists (deduplicated and sorted internally).
    pub fn from_edge_lists(mut per_part: Vec<Vec<EdgeId>>) -> Self {
        for list in &mut per_part {
            list.sort_unstable();
            list.dedup();
        }
        Shortcut { per_part }
    }

    /// Number of parts this shortcut serves.
    pub fn num_parts(&self) -> usize {
        self.per_part.len()
    }

    /// The edges of `H_i`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn edges_for(&self, p: PartId) -> &[EdgeId] {
        &self.per_part[p.index()]
    }

    /// Whether edge `e` belongs to `H_p` (binary search).
    pub fn contains(&self, p: PartId, e: EdgeId) -> bool {
        self.per_part[p.index()].binary_search(&e).is_ok()
    }

    /// Replaces `H_p` (deduplicated and sorted).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn set_edges(&mut self, p: PartId, mut edges: Vec<EdgeId>) {
        edges.sort_unstable();
        edges.dedup();
        self.per_part[p.index()] = edges;
    }

    /// Adds edges to `H_p`.
    pub fn extend_edges(&mut self, p: PartId, edges: impl IntoIterator<Item = EdgeId>) {
        let list = &mut self.per_part[p.index()];
        list.extend(edges);
        list.sort_unstable();
        list.dedup();
    }

    /// Total size `Σ|H_i|`.
    pub fn total_edges(&self) -> usize {
        self.per_part.iter().map(Vec::len).sum()
    }

    /// Per-edge congestion: `congestion[e]` = number of parts whose `H_i`
    /// contains `e` (property (II) of Definition 2.2).
    pub fn congestion(&self, g: &Graph) -> Vec<u32> {
        let mut cong = vec![0u32; g.num_edges()];
        for list in &self.per_part {
            for &e in list {
                cong[e.index()] += 1;
            }
        }
        cong
    }

    /// Maximum per-edge congestion (0 for an empty shortcut).
    pub fn max_congestion(&self, g: &Graph) -> u32 {
        self.congestion(g).into_iter().max().unwrap_or(0)
    }

    /// Whether every shortcut edge is an edge of the tree `T`
    /// (Definition 2.3: `⋃_i H_i ⊆ T`).
    pub fn is_tree_restricted(&self, tree: &RootedTree) -> bool {
        self.per_part
            .iter()
            .all(|list| list.iter().all(|&e| tree.is_tree_edge(e)))
    }

    /// Merges another shortcut into this one part-by-part (used by the
    /// Observation 2.7 loop: congestions add up, block structure per part
    /// comes from whichever round served it).
    ///
    /// # Panics
    ///
    /// Panics if the part counts differ.
    pub fn union_in_place(&mut self, other: &Shortcut) {
        assert_eq!(
            self.per_part.len(),
            other.per_part.len(),
            "shortcut part counts differ"
        );
        for (mine, theirs) in self.per_part.iter_mut().zip(&other.per_part) {
            mine.extend(theirs.iter().copied());
            mine.sort_unstable();
            mine.dedup();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::{bfs, gen, NodeId};

    #[test]
    fn empty_shortcut() {
        let g = gen::path(4);
        let s = Shortcut::empty(3);
        assert_eq!(s.num_parts(), 3);
        assert_eq!(s.max_congestion(&g), 0);
        assert_eq!(s.total_edges(), 0);
    }

    #[test]
    fn dedup_and_congestion() {
        let g = gen::path(4);
        let s =
            Shortcut::from_edge_lists(vec![vec![EdgeId(0), EdgeId(0), EdgeId(1)], vec![EdgeId(1)]]);
        assert_eq!(s.edges_for(PartId(0)), &[EdgeId(0), EdgeId(1)]);
        let cong = s.congestion(&g);
        assert_eq!(cong, vec![1, 2, 0]);
        assert_eq!(s.max_congestion(&g), 2);
        assert!(s.contains(PartId(1), EdgeId(1)));
        assert!(!s.contains(PartId(1), EdgeId(0)));
    }

    #[test]
    fn tree_restriction_check() {
        let g = gen::cycle(4);
        let t = bfs::bfs_tree(&g, NodeId(0));
        let non_tree: Vec<EdgeId> = g
            .edges()
            .filter(|er| !t.is_tree_edge(er.id))
            .map(|er| er.id)
            .collect();
        assert_eq!(non_tree.len(), 1);
        let ok = Shortcut::from_edge_lists(vec![vec![]]);
        assert!(ok.is_tree_restricted(&t));
        let bad = Shortcut::from_edge_lists(vec![non_tree]);
        assert!(!bad.is_tree_restricted(&t));
    }

    #[test]
    fn union_accumulates() {
        let mut a = Shortcut::from_edge_lists(vec![vec![EdgeId(0)], vec![]]);
        let b = Shortcut::from_edge_lists(vec![vec![EdgeId(1)], vec![EdgeId(2)]]);
        a.union_in_place(&b);
        assert_eq!(a.edges_for(PartId(0)), &[EdgeId(0), EdgeId(1)]);
        assert_eq!(a.edges_for(PartId(1)), &[EdgeId(2)]);
    }

    #[test]
    #[should_panic(expected = "part counts differ")]
    fn union_requires_same_shape() {
        let mut a = Shortcut::empty(1);
        let b = Shortcut::empty(2);
        a.union_in_place(&b);
    }
}
