//! Declarative partition sources: serde-able recipes that resolve to a
//! concrete [`Partition`](crate::Partition) on a given graph.
//!
//! Sessions historically took partitions as explicit node lists; a
//! [`PartitionSource`] instead names *how* to derive one — grid rows,
//! seeded Voronoi growth, singletons, or a nested-dissection level — so
//! the choice travels inside [`SessionConfig`](crate::SessionConfig),
//! through the `Session` builder, and over the wire in `lcs_server`
//! session specs, and so benches can sweep partition sources from one
//! config surface. Every source is deterministic: Voronoi is pinned by
//! its `u64` seed ([`gen::voronoi_parts_seeded`]) and the separator
//! dissection is deterministic by construction.

use lcs_graph::{gen, Graph, NodeId};
use lcs_separator::SeparatorConfig;
use serde::{Deserialize, Serialize};

/// A recipe for deriving a partition from a graph. Resolved at session
/// build time by [`resolve`](Self::resolve); sources always produce
/// covering partitions on connected graphs (validated with
/// [`Partition::from_parts_covering`](crate::Partition::from_parts_covering)
/// by the consumers, so an unassigned node is a structured error).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionSource {
    /// The rows of a `rows × cols` grid (or torus) — each row an induced
    /// path/cycle. Only meaningful on grid-shaped graphs; on anything
    /// else the resolved node lists fail partition validation.
    Rows {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// Voronoi cells grown from `parts` seeds sampled with `seed`
    /// ([`gen::voronoi_parts_seeded`] — the whole partition is pinned by
    /// the one `u64`). The part count is clamped to `[1, n]`.
    Voronoi {
        /// Number of cells to grow.
        parts: usize,
        /// RNG seed the seed nodes are sampled with.
        seed: u64,
    },
    /// Every node its own part.
    Singletons,
    /// The regions of a nested dissection
    /// ([`lcs_separator::nested_dissection`]) flattened at dissection
    /// depth `level` — balanced, connected, cover-all parts whose
    /// boundaries are the computed separators.
    Separator {
        /// Dissection depth to flatten at (`0` = one part; each level
        /// roughly halves the regions).
        level: u32,
        /// Regions of at most this many nodes are never split further.
        min_region: usize,
    },
}

impl PartitionSource {
    /// Resolves the source on `g` into raw part lists. Deterministic for
    /// a fixed `(source, graph)` pair.
    pub fn resolve(&self, g: &Graph) -> Vec<Vec<NodeId>> {
        match *self {
            PartitionSource::Rows { rows, cols } => gen::rows_of_grid(rows, cols),
            PartitionSource::Voronoi { parts, seed } => {
                let clamped = parts.clamp(1, g.num_nodes().max(1));
                if g.num_nodes() == 0 {
                    return Vec::new();
                }
                gen::voronoi_parts_seeded(g, clamped, seed)
            }
            PartitionSource::Singletons => gen::singleton_parts(g),
            PartitionSource::Separator { level, min_region } => {
                // Dissect only as deep as the requested level needs.
                let cfg = SeparatorConfig {
                    min_region,
                    max_levels: level,
                };
                lcs_separator::separator_parts(g, level, &cfg)
            }
        }
    }

    /// The source's short name (`rows` / `voronoi` / `singletons` /
    /// `separator`) — the `partition_source` column of bench snapshots.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionSource::Rows { .. } => "rows",
            PartitionSource::Voronoi { .. } => "voronoi",
            PartitionSource::Singletons => "singletons",
            PartitionSource::Separator { .. } => "separator",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Partition;

    #[test]
    fn sources_resolve_to_covering_partitions() {
        let g = gen::grid(8, 8);
        let sources = [
            PartitionSource::Rows { rows: 8, cols: 8 },
            PartitionSource::Voronoi { parts: 6, seed: 7 },
            PartitionSource::Singletons,
            PartitionSource::Separator {
                level: 3,
                min_region: 4,
            },
        ];
        for src in sources {
            let parts = src.resolve(&g);
            let p = Partition::from_parts_covering(&g, parts)
                .unwrap_or_else(|e| panic!("{}: {e}", src.name()));
            assert!(p.covers_all(), "{} must cover V", src.name());
        }
    }

    #[test]
    fn separator_source_scales_parts_with_level() {
        let g = gen::grid(16, 16);
        let parts_at = |level| {
            PartitionSource::Separator {
                level,
                min_region: 4,
            }
            .resolve(&g)
            .len()
        };
        assert_eq!(parts_at(0), 1);
        assert!(parts_at(2) > parts_at(0));
        assert!(parts_at(4) > parts_at(2));
    }

    #[test]
    fn voronoi_source_is_pinned_by_its_seed_and_clamped() {
        let g = gen::torus(5, 5);
        let src = PartitionSource::Voronoi { parts: 4, seed: 99 };
        assert_eq!(src.resolve(&g), src.resolve(&g));
        let oversized = PartitionSource::Voronoi {
            parts: 1000,
            seed: 1,
        };
        assert_eq!(oversized.resolve(&g).len(), 25);
    }

    #[test]
    fn serde_round_trip_of_every_variant() {
        let sources = [
            PartitionSource::Rows { rows: 3, cols: 4 },
            PartitionSource::Voronoi { parts: 6, seed: 7 },
            PartitionSource::Singletons,
            PartitionSource::Separator {
                level: 2,
                min_region: 8,
            },
        ];
        for src in sources {
            let v = serde::Serialize::to_value(&src);
            let back: PartitionSource = serde::Deserialize::from_value(&v).unwrap();
            assert_eq!(back, src);
        }
    }
}
