//! Declarative graph and partition sources: serde-able recipes that
//! resolve to a concrete [`Graph`] / [`Partition`](crate::Partition).
//!
//! Sessions historically took partitions as explicit node lists; a
//! [`PartitionSource`] instead names *how* to derive one — grid rows,
//! seeded Voronoi growth, singletons, or a nested-dissection level — so
//! the choice travels inside [`SessionConfig`](crate::SessionConfig),
//! through the `Session` builder, and over the wire in `lcs_server`
//! session specs, and so benches can sweep partition sources from one
//! config surface. Every source is deterministic: Voronoi is pinned by
//! its `u64` seed ([`gen::voronoi_parts_seeded`]) and the separator
//! dissection is deterministic by construction.
//!
//! [`GraphSource`] does the same for the *graph* input: a generator
//! family with parameters, a JSON edge-list file, or a flat-binary
//! `.lcsg` file ([`lcs_graph::io`]) — one resolver
//! ([`GraphSource::resolve`]) replaces the formerly divergent ad-hoc
//! construction paths (server family JSON, edge-list files, programmatic
//! `Graph::from_edges`). The source rides
//! [`SessionConfig::graph_source`](crate::SessionConfig), the `Session`
//! builder (where an explicitly supplied graph always wins, mirroring the
//! partition precedence), and the `lcs_server` graph-spec JSON, and its
//! [`canonical_key`](GraphSource::canonical_key) is what registries
//! deduplicate on.

use crate::session::{Session, SessionBuilder};
use lcs_graph::weights::EdgeWeights;
use lcs_graph::{gen, CapacityError, Graph, GraphBuilder, NodeId};
use lcs_separator::SeparatorConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A recipe for deriving a partition from a graph. Resolved at session
/// build time by [`resolve`](Self::resolve); sources always produce
/// covering partitions on connected graphs (validated with
/// [`Partition::from_parts_covering`](crate::Partition::from_parts_covering)
/// by the consumers, so an unassigned node is a structured error).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionSource {
    /// The rows of a `rows × cols` grid (or torus) — each row an induced
    /// path/cycle. Only meaningful on grid-shaped graphs; on anything
    /// else the resolved node lists fail partition validation.
    Rows {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// Voronoi cells grown from `parts` seeds sampled with `seed`
    /// ([`gen::voronoi_parts_seeded`] — the whole partition is pinned by
    /// the one `u64`). The part count is clamped to `[1, n]`.
    Voronoi {
        /// Number of cells to grow.
        parts: usize,
        /// RNG seed the seed nodes are sampled with.
        seed: u64,
    },
    /// Every node its own part.
    Singletons,
    /// The regions of a nested dissection
    /// ([`lcs_separator::nested_dissection`]) flattened at dissection
    /// depth `level` — balanced, connected, cover-all parts whose
    /// boundaries are the computed separators.
    Separator {
        /// Dissection depth to flatten at (`0` = one part; each level
        /// roughly halves the regions).
        level: u32,
        /// Regions of at most this many nodes are never split further.
        min_region: usize,
    },
}

impl PartitionSource {
    /// Resolves the source on `g` into raw part lists. Deterministic for
    /// a fixed `(source, graph)` pair.
    pub fn resolve(&self, g: &Graph) -> Vec<Vec<NodeId>> {
        match *self {
            PartitionSource::Rows { rows, cols } => gen::rows_of_grid(rows, cols),
            PartitionSource::Voronoi { parts, seed } => {
                let clamped = parts.clamp(1, g.num_nodes().max(1));
                if g.num_nodes() == 0 {
                    return Vec::new();
                }
                gen::voronoi_parts_seeded(g, clamped, seed)
            }
            PartitionSource::Singletons => gen::singleton_parts(g),
            PartitionSource::Separator { level, min_region } => {
                // Dissect only as deep as the requested level needs.
                let cfg = SeparatorConfig {
                    min_region,
                    max_levels: level,
                };
                lcs_separator::separator_parts(g, level, &cfg)
            }
        }
    }

    /// The source's short name (`rows` / `voronoi` / `singletons` /
    /// `separator`) — the `partition_source` column of bench snapshots.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionSource::Rows { .. } => "rows",
            PartitionSource::Voronoi { .. } => "voronoi",
            PartitionSource::Singletons => "singletons",
            PartitionSource::Separator { .. } => "separator",
        }
    }
}

/// A generator family with its parameters — the serde-able form of the
/// `lcs_graph::gen` constructors a [`GraphSource::Generator`] names.
/// Deterministic: equal specs build bit-identical graphs (the road-like
/// family is pinned by its `u64` seed).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GeneratorSpec {
    /// [`gen::path`] on `n` nodes.
    Path {
        /// Node count.
        n: usize,
    },
    /// [`gen::cycle`] on `n >= 3` nodes.
    Cycle {
        /// Node count.
        n: usize,
    },
    /// [`gen::complete`] on `n` nodes.
    Complete {
        /// Node count.
        n: usize,
    },
    /// [`gen::wheel`] on `n >= 4` nodes.
    Wheel {
        /// Node count.
        n: usize,
    },
    /// [`gen::grid`], `rows × cols`.
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// [`gen::torus`], `rows × cols`, both `>= 3`.
    Torus {
        /// Torus rows.
        rows: usize,
        /// Torus columns.
        cols: usize,
    },
    /// [`gen::grid_of_cliques`]: a `rows × cols` grid of `clique`-cliques.
    GridOfCliques {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
        /// Clique size per grid cell.
        clique: usize,
    },
    /// [`gen::road_like`]: the seeded near-planar road-network family for
    /// million-node scale-up.
    RoadLike {
        /// Lattice rows.
        rows: usize,
        /// Lattice columns.
        cols: usize,
        /// RNG seed pinning the whole graph.
        seed: u64,
    },
}

impl GeneratorSpec {
    /// The family's short name (the `family` column of bench snapshots).
    pub fn name(&self) -> &'static str {
        match self {
            GeneratorSpec::Path { .. } => "path",
            GeneratorSpec::Cycle { .. } => "cycle",
            GeneratorSpec::Complete { .. } => "complete",
            GeneratorSpec::Wheel { .. } => "wheel",
            GeneratorSpec::Grid { .. } => "grid",
            GeneratorSpec::Torus { .. } => "torus",
            GeneratorSpec::GridOfCliques { .. } => "grid_of_cliques",
            GeneratorSpec::RoadLike { .. } => "road_like",
        }
    }

    /// The node count the spec would build, computed without building —
    /// servers use this to enforce size caps before spending memory.
    pub fn num_nodes(&self) -> u64 {
        match *self {
            GeneratorSpec::Path { n }
            | GeneratorSpec::Cycle { n }
            | GeneratorSpec::Complete { n }
            | GeneratorSpec::Wheel { n } => n as u64,
            GeneratorSpec::Grid { rows, cols }
            | GeneratorSpec::Torus { rows, cols }
            | GeneratorSpec::RoadLike { rows, cols, .. } => rows as u64 * cols as u64,
            GeneratorSpec::GridOfCliques { rows, cols, clique } => {
                rows as u64 * cols as u64 * clique as u64
            }
        }
    }

    /// Checks the family's parameter preconditions without building, so
    /// callers get a typed [`GraphSourceError::InvalidSpec`] instead of a
    /// generator panic.
    pub fn validate(&self) -> Result<(), GraphSourceError> {
        let invalid = |reason: String| Err(GraphSourceError::InvalidSpec { reason });
        match *self {
            GeneratorSpec::Path { n } | GeneratorSpec::Complete { n } => {
                if n == 0 {
                    return invalid(format!("{} needs at least 1 node", self.name()));
                }
            }
            GeneratorSpec::Cycle { n } => {
                if n < 3 {
                    return invalid("cycle needs at least 3 nodes".to_string());
                }
            }
            GeneratorSpec::Wheel { n } => {
                if n < 4 {
                    return invalid("wheel needs at least 4 nodes".to_string());
                }
            }
            GeneratorSpec::Grid { rows, cols } | GeneratorSpec::RoadLike { rows, cols, .. } => {
                if rows == 0 || cols == 0 {
                    return invalid(format!("{} dimensions must be positive", self.name()));
                }
            }
            GeneratorSpec::Torus { rows, cols } => {
                if rows < 3 || cols < 3 {
                    return invalid("torus dimensions must be at least 3".to_string());
                }
            }
            GeneratorSpec::GridOfCliques { rows, cols, clique } => {
                if rows == 0 || cols == 0 || clique == 0 {
                    return invalid("grid_of_cliques dimensions must be positive".to_string());
                }
            }
        }
        lcs_graph::check_csr_capacity(self.num_nodes(), 0)?;
        Ok(())
    }

    /// Builds the graph ([`validate`](Self::validate)d first).
    pub fn build(&self) -> Result<Graph, GraphSourceError> {
        self.validate()?;
        Ok(match *self {
            GeneratorSpec::Path { n } => gen::path(n),
            GeneratorSpec::Cycle { n } => gen::cycle(n),
            GeneratorSpec::Complete { n } => gen::complete(n),
            GeneratorSpec::Wheel { n } => gen::wheel(n),
            GeneratorSpec::Grid { rows, cols } => gen::grid(rows, cols),
            GeneratorSpec::Torus { rows, cols } => gen::torus(rows, cols),
            GeneratorSpec::GridOfCliques { rows, cols, clique } => {
                gen::grid_of_cliques(rows, cols, clique)
            }
            GeneratorSpec::RoadLike { rows, cols, seed } => gen::road_like(rows, cols, seed),
        })
    }
}

/// Resolving a [`GraphSource`] failed. Every variant (and, transitively,
/// every [`lcs_graph::io::IoError`]) has a distinct
/// [`code`](GraphSourceError::code), so servers can map resolution
/// failures onto structured 4xx responses.
#[derive(Debug)]
pub enum GraphSourceError {
    /// Generator parameters violate the family's preconditions.
    InvalidSpec {
        /// What was wrong.
        reason: String,
    },
    /// Reading a JSON edge-list file failed at the filesystem level.
    Io {
        /// The offending path.
        path: String,
        /// The underlying error.
        error: std::io::Error,
    },
    /// A JSON edge-list file does not parse as
    /// `{"n": ..., "edges": [[u, v], ...]}`.
    Json {
        /// The offending path.
        path: String,
        /// Parser message.
        reason: String,
    },
    /// A JSON edge-list file parses but contains an invalid edge
    /// (endpoint out of range, self-loop, or duplicate).
    InvalidEdge {
        /// The offending path.
        path: String,
        /// Which edge, and why it is invalid.
        reason: String,
    },
    /// Reading a flat-binary `.lcsg` file failed (typed: truncation, bad
    /// magic, checksum mismatch, …).
    Flat {
        /// The offending path.
        path: String,
        /// The underlying typed error.
        error: lcs_graph::io::IoError,
    },
    /// The described graph exceeds the CSR capacity limits.
    Capacity(CapacityError),
}

impl GraphSourceError {
    /// A stable snake_case code per failure shape. Flat-binary failures
    /// forward [`lcs_graph::io::IoError::code`]; file-not-found (either
    /// file kind) yields `graph_file_not_found` so servers can answer 404.
    pub fn code(&self) -> &'static str {
        match self {
            GraphSourceError::InvalidSpec { .. } => "graph_invalid_spec",
            GraphSourceError::Io { error, .. } if error.kind() == std::io::ErrorKind::NotFound => {
                "graph_file_not_found"
            }
            GraphSourceError::Io { .. } => "graph_io",
            GraphSourceError::Json { .. } => "graph_json_malformed",
            GraphSourceError::InvalidEdge { .. } => "graph_invalid_edge",
            GraphSourceError::Flat { error, .. } => error.code(),
            GraphSourceError::Capacity(_) => "graph_too_large",
        }
    }
}

impl fmt::Display for GraphSourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphSourceError::InvalidSpec { reason } => write!(f, "invalid graph spec: {reason}"),
            GraphSourceError::Io { path, error } => write!(f, "cannot read `{path}`: {error}"),
            GraphSourceError::Json { path, reason } => {
                write!(f, "edge-list file `{path}` is not valid JSON: {reason}")
            }
            GraphSourceError::InvalidEdge { path, reason } => {
                write!(f, "edge-list file `{path}`: {reason}")
            }
            GraphSourceError::Flat { path, error } => write!(f, "lcsg file `{path}`: {error}"),
            GraphSourceError::Capacity(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GraphSourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphSourceError::Io { error, .. } => Some(error),
            GraphSourceError::Flat { error, .. } => Some(error),
            GraphSourceError::Capacity(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CapacityError> for GraphSourceError {
    fn from(e: CapacityError) -> Self {
        GraphSourceError::Capacity(e)
    }
}

/// The wire form of a JSON edge-list file:
/// `{"n": ..., "edges": [[u, v], ...]}`.
#[derive(Debug, Serialize, Deserialize)]
struct EdgeListFile {
    n: usize,
    edges: Vec<(u32, u32)>,
}

/// A recipe for obtaining a graph — the one graph-construction surface of
/// the workspace. Resolved by [`resolve`](Self::resolve) into a
/// [`ResolvedGraph`]; serde-able, so the recipe travels inside
/// [`SessionConfig`](crate::SessionConfig) and over the wire in
/// `lcs_server` session specs, where its canonical form is the registry
/// dedup key.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphSource {
    /// A deterministic generator family ([`GeneratorSpec`]).
    Generator(GeneratorSpec),
    /// A JSON edge-list file `{"n": ..., "edges": [[u, v], ...]}` — the
    /// legacy interchange form; prefer [`FlatBinary`](Self::FlatBinary)
    /// beyond toy sizes.
    EdgeListJson {
        /// Path to the file.
        path: String,
    },
    /// A flat-binary `.lcsg` file ([`lcs_graph::io`]) — bulk-read loading
    /// for n = 10⁶–10⁷ instances, optionally carrying edge weights.
    FlatBinary {
        /// Path to the file.
        path: String,
    },
}

impl GraphSource {
    /// The source kind's short name (`generator` / `edge_list_json` /
    /// `flat_binary`) — the `graph_source` column of bench snapshots.
    pub fn name(&self) -> &'static str {
        match self {
            GraphSource::Generator(_) => "generator",
            GraphSource::EdgeListJson { .. } => "edge_list_json",
            GraphSource::FlatBinary { .. } => "flat_binary",
        }
    }

    /// The canonical serialized form of the source — structurally equal
    /// sources render identically, so this string is what graph registries
    /// and warm-session caches deduplicate on.
    pub fn canonical_key(&self) -> String {
        serde_json::to_string(self).expect("graph sources always serialize")
    }

    /// Resolves the source into a graph (plus weights, when the backing
    /// `.lcsg` file carries them) — **the** graph-construction path: the
    /// `Session` builder, `lcs_server` and `lcs_convert` all go through
    /// here.
    pub fn resolve(&self) -> Result<ResolvedGraph, GraphSourceError> {
        let (graph, weights) = match self {
            GraphSource::Generator(spec) => (spec.build()?, None),
            GraphSource::EdgeListJson { path } => (Self::resolve_edge_list(path)?, None),
            GraphSource::FlatBinary { path } => {
                let loaded =
                    lcs_graph::io::load_graph(path).map_err(|error| GraphSourceError::Flat {
                        path: path.clone(),
                        error,
                    })?;
                (loaded.graph, loaded.weights)
            }
        };
        Ok(ResolvedGraph {
            source: self.clone(),
            graph,
            weights,
        })
    }

    fn resolve_edge_list(path: &str) -> Result<Graph, GraphSourceError> {
        let text = std::fs::read_to_string(path).map_err(|error| GraphSourceError::Io {
            path: path.to_string(),
            error,
        })?;
        let file: EdgeListFile =
            serde_json::from_str(&text).map_err(|e| GraphSourceError::Json {
                path: path.to_string(),
                reason: e.to_string(),
            })?;
        let invalid_edge = |reason: String| GraphSourceError::InvalidEdge {
            path: path.to_string(),
            reason,
        };
        lcs_graph::check_csr_capacity(file.n as u64, file.edges.len() as u64)?;
        let mut normalized: Vec<(u32, u32)> = Vec::with_capacity(file.edges.len());
        for &(u, v) in &file.edges {
            if u as usize >= file.n || v as usize >= file.n {
                return Err(invalid_edge(format!(
                    "edge ({u}, {v}) out of range for n = {}",
                    file.n
                )));
            }
            if u == v {
                return Err(invalid_edge(format!("self-loop at node {u}")));
            }
            normalized.push(if u < v { (u, v) } else { (v, u) });
        }
        normalized.sort_unstable();
        if let Some(w) = normalized.windows(2).find(|w| w[0] == w[1]) {
            return Err(invalid_edge(format!(
                "duplicate edge ({}, {})",
                w[0].0, w[0].1
            )));
        }
        let mut b = GraphBuilder::new(file.n);
        for (u, v) in file.edges {
            b.add_edge(NodeId(u), NodeId(v));
        }
        b.try_build().map_err(GraphSourceError::from)
    }
}

/// The output of [`GraphSource::resolve`]: the graph, its weights when the
/// source carried any, and the source itself (for provenance — the
/// [`session`](Self::session) shortcut records it in the session config).
#[derive(Clone, Debug)]
pub struct ResolvedGraph {
    /// The source this graph came from.
    pub source: GraphSource,
    /// The resolved graph.
    pub graph: Graph,
    /// Edge weights, when the source was a weighted `.lcsg` file.
    pub weights: Option<EdgeWeights>,
}

impl ResolvedGraph {
    /// Starts a session builder over the resolved graph: weights (if the
    /// file carried them) are pre-seeded and
    /// [`SessionConfig::graph_source`](crate::SessionConfig) records the
    /// provenance. A later `.config(..)` replaces the whole config,
    /// including that record.
    pub fn session(&self) -> SessionBuilder<'_> {
        let mut b = Session::on(&self.graph).graph_source(self.source.clone());
        if let Some(w) = &self.weights {
            b = b.weights(w.clone());
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Partition;

    #[test]
    fn sources_resolve_to_covering_partitions() {
        let g = gen::grid(8, 8);
        let sources = [
            PartitionSource::Rows { rows: 8, cols: 8 },
            PartitionSource::Voronoi { parts: 6, seed: 7 },
            PartitionSource::Singletons,
            PartitionSource::Separator {
                level: 3,
                min_region: 4,
            },
        ];
        for src in sources {
            let parts = src.resolve(&g);
            let p = Partition::from_parts_covering(&g, parts)
                .unwrap_or_else(|e| panic!("{}: {e}", src.name()));
            assert!(p.covers_all(), "{} must cover V", src.name());
        }
    }

    #[test]
    fn separator_source_scales_parts_with_level() {
        let g = gen::grid(16, 16);
        let parts_at = |level| {
            PartitionSource::Separator {
                level,
                min_region: 4,
            }
            .resolve(&g)
            .len()
        };
        assert_eq!(parts_at(0), 1);
        assert!(parts_at(2) > parts_at(0));
        assert!(parts_at(4) > parts_at(2));
    }

    #[test]
    fn voronoi_source_is_pinned_by_its_seed_and_clamped() {
        let g = gen::torus(5, 5);
        let src = PartitionSource::Voronoi { parts: 4, seed: 99 };
        assert_eq!(src.resolve(&g), src.resolve(&g));
        let oversized = PartitionSource::Voronoi {
            parts: 1000,
            seed: 1,
        };
        assert_eq!(oversized.resolve(&g).len(), 25);
    }

    #[test]
    fn serde_round_trip_of_every_variant() {
        let sources = [
            PartitionSource::Rows { rows: 3, cols: 4 },
            PartitionSource::Voronoi { parts: 6, seed: 7 },
            PartitionSource::Singletons,
            PartitionSource::Separator {
                level: 2,
                min_region: 8,
            },
        ];
        for src in sources {
            let v = serde::Serialize::to_value(&src);
            let back: PartitionSource = serde::Deserialize::from_value(&v).unwrap();
            assert_eq!(back, src);
        }
    }

    fn all_generator_specs() -> Vec<GeneratorSpec> {
        vec![
            GeneratorSpec::Path { n: 6 },
            GeneratorSpec::Cycle { n: 5 },
            GeneratorSpec::Complete { n: 4 },
            GeneratorSpec::Wheel { n: 7 },
            GeneratorSpec::Grid { rows: 3, cols: 4 },
            GeneratorSpec::Torus { rows: 3, cols: 5 },
            GeneratorSpec::GridOfCliques {
                rows: 2,
                cols: 2,
                clique: 3,
            },
            GeneratorSpec::RoadLike {
                rows: 6,
                cols: 7,
                seed: 42,
            },
        ]
    }

    #[test]
    fn graph_source_serde_round_trip_of_every_variant() {
        let mut sources: Vec<GraphSource> = all_generator_specs()
            .into_iter()
            .map(GraphSource::Generator)
            .collect();
        sources.push(GraphSource::EdgeListJson {
            path: "g.json".to_string(),
        });
        sources.push(GraphSource::FlatBinary {
            path: "g.lcsg".to_string(),
        });
        for src in sources {
            let v = serde::Serialize::to_value(&src);
            let back: GraphSource = serde::Deserialize::from_value(&v).unwrap();
            assert_eq!(back, src);
        }
    }

    #[test]
    fn generator_sources_resolve_deterministically() {
        for spec in all_generator_specs() {
            let src = GraphSource::Generator(spec.clone());
            let a = src
                .resolve()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
            let b = src.resolve().unwrap();
            assert_eq!(a.graph, b.graph, "{} must be deterministic", spec.name());
            assert_eq!(a.graph.num_nodes() as u64, spec.num_nodes());
            assert!(a.weights.is_none());
            assert_eq!(a.source, src);
        }
    }

    #[test]
    fn canonical_keys_dedup_identical_specs_and_split_distinct_ones() {
        let a = GraphSource::Generator(GeneratorSpec::Grid { rows: 8, cols: 8 });
        let b = GraphSource::Generator(GeneratorSpec::Grid { rows: 8, cols: 8 });
        let c = GraphSource::Generator(GeneratorSpec::Grid { rows: 8, cols: 9 });
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_ne!(a.canonical_key(), c.canonical_key());
        // Different source kinds never collide, even on equal payloads.
        let f1 = GraphSource::EdgeListJson {
            path: "x".to_string(),
        };
        let f2 = GraphSource::FlatBinary {
            path: "x".to_string(),
        };
        assert_ne!(f1.canonical_key(), f2.canonical_key());
    }

    #[test]
    fn invalid_generator_specs_are_typed_not_panics() {
        for (spec, fragment) in [
            (GeneratorSpec::Cycle { n: 2 }, "at least 3"),
            (GeneratorSpec::Wheel { n: 3 }, "at least 4"),
            (GeneratorSpec::Grid { rows: 0, cols: 5 }, "positive"),
            (GeneratorSpec::Torus { rows: 2, cols: 9 }, "at least 3"),
        ] {
            let err = GraphSource::Generator(spec).resolve().unwrap_err();
            assert_eq!(err.code(), "graph_invalid_spec");
            assert!(err.to_string().contains(fragment), "{err}");
        }
    }

    #[test]
    fn missing_files_resolve_to_not_found() {
        for src in [
            GraphSource::EdgeListJson {
                path: "/nonexistent/missing.json".to_string(),
            },
            GraphSource::FlatBinary {
                path: "/nonexistent/missing.lcsg".to_string(),
            },
        ] {
            let err = src.resolve().unwrap_err();
            assert_eq!(err.code(), "graph_file_not_found", "{err}");
        }
    }

    #[test]
    fn resolved_graph_starts_a_session_with_provenance() {
        let src = GraphSource::Generator(GeneratorSpec::Grid { rows: 4, cols: 4 });
        let resolved = src.resolve().unwrap();
        let session = resolved
            .session()
            .partition_source(PartitionSource::Rows { rows: 4, cols: 4 })
            .build()
            .unwrap();
        assert_eq!(session.graph().num_nodes(), 16);
        assert_eq!(session.config().graph_source, Some(src));
        assert_eq!(session.partition().num_parts(), 4);
    }
}
