//! Full shortcuts from partial shortcuts: the Observation 2.7 loop with a
//! doubling search over `δ̂`, plus the certifying output of the remark after
//! Theorem 3.1.

use crate::sweep::{sweep_active, SweepOutcome};
use crate::{Partition, Shortcut, ShortcutConfig};
use lcs_graph::minor::MinorWitness;
use lcs_graph::{Graph, PartId, RootedTree};
use serde::{Deserialize, Serialize};

/// One iteration of the Observation 2.7 loop.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoundLog {
    /// The `δ̂` this round ran with.
    pub delta_hat: u32,
    /// Parts still unserved when the round started.
    pub remaining: usize,
    /// Parts served by this round (0 when the round failed into Case (II)
    /// and δ̂ was doubled instead).
    pub served: usize,
    /// Number of overcongested edges the sweep produced.
    pub over_edges: usize,
}

/// Result of [`full_shortcut`].
#[derive(Clone, Debug)]
pub struct FullShortcutResult {
    /// The union shortcut: every part received `H_i` from the round that
    /// served it.
    pub shortcut: Shortcut,
    /// The final (successful) `δ̂` of the doubling search.
    pub delta_hat: u32,
    /// Successful rounds used (bounded by `log₂ k` at the final `δ̂`).
    pub successful_rounds: usize,
    /// The densest minor certificate from failed rounds, if any: it
    /// certifies `δ(G) > witness.density() >= δ̂_failed`, so the achieved
    /// quality is within `O(log n)` of optimal (certifying output of the
    /// paper's remark after Theorem 3.1).
    pub best_witness: Option<MinorWitness>,
    /// Full round-by-round log.
    pub round_log: Vec<RoundLog>,
}

impl FullShortcutResult {
    /// The congestion bound the construction guarantees:
    /// `c_final · (#successful rounds)`, cf. Observation 2.7's
    /// `c·log₂ n`.
    pub fn congestion_bound(&self, config: &ShortcutConfig, tree_depth: u32) -> u64 {
        u64::from(config.congestion_threshold(self.delta_hat, tree_depth))
            * self.successful_rounds.max(1) as u64
    }
}

/// Builds a full tree-restricted shortcut for every part (Theorem 1.2
/// machinery): doubling search over `δ̂`, and per Observation 2.7 repeated
/// partial-shortcut rounds over the still-unserved parts.
///
/// Guarantees on the output (for the default paper constants):
///
/// * tree-restricted;
/// * per-part block number `<= 8δ̂ + 1`, hence dilation `<= (8δ̂+1)(2D+1)`
///   (Observation 2.6);
/// * congestion `< 8δ̂D · rounds`, with `rounds <= log₂ k + log₂ δ̂`;
/// * `δ̂ < 2δ(G)` — with a dense-minor certificate in
///   [`best_witness`](FullShortcutResult::best_witness) whenever `δ̂ > 1`.
///
/// # Panics
///
/// Panics if some part node lies outside `tree`'s component (parts must live
/// in the tree's — usually the whole — component), or if the internal
/// doubling search exceeds `4n` (impossible for valid inputs: a sweep at
/// `δ̂ >= δ(G)` always succeeds).
pub fn full_shortcut(
    g: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    config: &ShortcutConfig,
) -> FullShortcutResult {
    run_doubling_search(
        g.num_nodes(),
        partition.num_parts(),
        partition.part_ids().collect(),
        config.initial_delta_hat,
        |active, delta_hat| sweep_active(g, tree, partition, active, delta_hat, config),
    )
}

/// The Observation 2.7 driver shared by the centralized and distributed
/// constructions: repeated sweeps over the still-unserved parts with a
/// doubling search over `δ̂`. `sweep` runs one Theorem 3.1 sweep over the
/// given active parts at the given `δ̂` — centrally ([`full_shortcut`]) or
/// on the CONGEST simulator ([`crate::dist::distributed_full_shortcut`]).
///
/// The search runs over `remaining` (any subset of the `num_parts` part
/// ids — the full set for a from-scratch construction, just the touched
/// parts for the session's incremental re-customization) and starts at
/// `initial_delta_hat` (clamped to `>= 1`).
///
/// # Panics
///
/// Panics if the doubling search exceeds `4·num_nodes` (a sweep at
/// `δ̂ >= δ(G)` always succeeds, so this indicates a broken sweep).
pub(crate) fn run_doubling_search(
    num_nodes: usize,
    num_parts: usize,
    remaining: Vec<PartId>,
    initial_delta_hat: u32,
    mut sweep: impl FnMut(&[PartId], u32) -> SweepOutcome,
) -> FullShortcutResult {
    let mut shortcut = Shortcut::empty(num_parts);
    let mut remaining = remaining;
    let mut delta_hat = initial_delta_hat.max(1);
    let mut best_witness: Option<MinorWitness> = None;
    let mut round_log = Vec::new();
    let mut successful_rounds = 0usize;
    let cap = 4 * (num_nodes as u64).max(1);

    while !remaining.is_empty() {
        match sweep(&remaining, delta_hat) {
            SweepOutcome::Shortcut(ps) => {
                round_log.push(RoundLog {
                    delta_hat,
                    remaining: remaining.len(),
                    served: ps.served.len(),
                    over_edges: ps.data.over_edges.len(),
                });
                successful_rounds += 1;
                for &p in &ps.served {
                    shortcut.set_edges(p, ps.shortcut.edges_for(p).to_vec());
                }
                let served: std::collections::HashSet<PartId> = ps.served.iter().copied().collect();
                remaining.retain(|p| !served.contains(p));
            }
            SweepOutcome::DenseMinor { witness, data } => {
                round_log.push(RoundLog {
                    delta_hat,
                    remaining: remaining.len(),
                    served: 0,
                    over_edges: data.over_edges.len(),
                });
                if let Some(w) = witness {
                    let better = best_witness
                        .as_ref()
                        .map(|b| w.density() > b.density())
                        .unwrap_or(true);
                    if better {
                        best_witness = Some(w);
                    }
                }
                delta_hat = delta_hat.saturating_mul(2);
                assert!(
                    u64::from(delta_hat) <= cap,
                    "doubling search exceeded 4n — sweep invariant broken"
                );
            }
        }
    }

    FullShortcutResult {
        shortcut,
        delta_hat,
        successful_rounds,
        best_witness,
        round_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{measure_quality, WitnessMode};
    use lcs_graph::{bfs, gen, minor, NodeId};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn grid_rows_get_quality_shortcuts_at_delta_one() {
        let g = gen::grid(12, 12);
        let partition = Partition::from_parts(&g, gen::rows_of_grid(12, 12)).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let res = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
        assert_eq!(res.delta_hat, 1);
        assert_eq!(res.successful_rounds, 1);
        assert!(res.best_witness.is_none());
        let q = measure_quality(&g, &partition, &tree, &res.shortcut);
        assert!(q.tree_restricted);
        assert!(q.all_connected());
        let d_t = tree.depth_of_tree();
        assert!(q.max_congestion <= 8 * res.delta_hat * d_t * res.successful_rounds as u32);
        assert!(q.max_blocks <= 8 * res.delta_hat + 1);
        assert!(
            u64::from(q.max_dilation_upper) <= u64::from(q.max_blocks) * u64::from(2 * d_t + 1)
        );
    }

    #[test]
    fn comb_forces_doubling_and_produces_certificate() {
        // The comb fails at δ̂ = 1 (Case II) and succeeds at δ̂ = 2.
        let (g, partition) = crate::sweep::tests::comb_instance(10, 24);
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let res = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
        assert_eq!(res.delta_hat, 2);
        let w = res.best_witness.expect("failed round must yield witness");
        assert!(minor::verify_minor(&g, &w).is_ok());
        assert!(w.density() > 1.0);
        let q = measure_quality(&g, &partition, &tree, &res.shortcut);
        assert!(q.all_connected());
        assert!(q.tree_restricted);
    }

    #[test]
    fn every_part_is_served_exactly_once() {
        let g = gen::grid(10, 10);
        let mut rng = SmallRng::seed_from_u64(3);
        let parts = gen::random_connected_parts(&g, 25, &mut rng);
        let partition = Partition::from_parts(&g, parts).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let res = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
        let q = measure_quality(&g, &partition, &tree, &res.shortcut);
        assert!(q.all_connected());
        let total_served: usize = res.round_log.iter().map(|r| r.served).sum();
        assert_eq!(total_served, partition.num_parts());
    }

    #[test]
    fn witness_mode_skip_still_converges() {
        let (g, partition) = crate::sweep::tests::comb_instance(10, 24);
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let cfg = ShortcutConfig {
            witness_mode: WitnessMode::Skip,
            ..ShortcutConfig::default()
        };
        let res = full_shortcut(&g, &tree, &partition, &cfg);
        assert_eq!(res.delta_hat, 2);
        assert!(res.best_witness.is_none());
    }

    #[test]
    fn empty_partition_is_trivial() {
        let g = gen::path(4);
        let partition = Partition::from_parts(&g, vec![]).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let res = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
        assert_eq!(res.successful_rounds, 0);
        assert_eq!(res.shortcut.num_parts(), 0);
    }

    #[test]
    fn lower_bound_topology_round_trip() {
        // The Lemma 3.2 instance: quality must be sandwiched between the
        // lemma's lower bound and the Theorem 1.2 upper bound.
        let lb = gen::lower_bound_topology(5, 24);
        let partition = Partition::from_parts(&lb.graph, lb.rows.clone()).unwrap();
        let tree = bfs::bfs_tree(&lb.graph, lb.top_path[0]);
        let res = full_shortcut(&lb.graph, &tree, &partition, &ShortcutConfig::default());
        let q = measure_quality(&lb.graph, &partition, &tree, &res.shortcut);
        assert!(q.all_connected());
        // Measured quality respects the Ω(δD) lower bound.
        assert!(
            f64::from(q.quality()) >= lb.internal_lower_bound(),
            "quality {} below Lemma 3.2 bound {}",
            q.quality(),
            lb.internal_lower_bound()
        );
    }
}
