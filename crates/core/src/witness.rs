//! Dense-minor certificate extraction (Case (II) of the Theorem 3.1 proof).
//!
//! When more than half the parts have `B`-degree above `8δ̂`, the bipartite
//! graph `B_P'` obtained by sampling each part with probability `1/4D` is a
//! minor of `G` whose expected density exceeds `δ̂`. This module implements
//! both the paper's sampling argument and a deterministic extraction via the
//! method of conditional expectations, returning a [`MinorWitness`] that
//! passes [`lcs_graph::minor::verify_minor`].

use crate::sweep::SweepData;
use crate::{Partition, ShortcutConfig, WitnessMode};
use lcs_graph::minor::MinorWitness;
use lcs_graph::{Graph, NodeId, PartId, RootedTree};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One edge of the bipartite graph `B`: overcongested-edge record × part,
/// with the representative and the *blocker* parts on the representative
/// path (the distinct active parts on the tree path from `v_e` down to, but
/// excluding, the representative).
#[derive(Clone, Debug)]
struct BEdge {
    record: usize,
    part: PartId,
    blockers: Vec<PartId>,
}

/// Builds `B` by walking each representative path. Minimum-depth
/// representatives guarantee `part ∉ blockers`.
fn build_b(tree: &RootedTree, partition: &Partition, data: &SweepData) -> Vec<BEdge> {
    let mut active = vec![false; partition.num_parts()];
    for &p in &data.active {
        active[p.index()] = true;
    }
    let mut edges = Vec::new();
    for (ri, rec) in data.over_edges.iter().enumerate() {
        for &(part, repr) in &rec.parts {
            // Degenerate pair: v_e itself belongs to the part (then the
            // representative IS v_e). Such an edge can never be present —
            // choosing the part kills the edge-node — so it is dropped from
            // B. This costs at most one edge per record against the paper's
            // E[X] > 0 count, which stays positive for tree depth >= 4 (and
            // extraction degrades gracefully to `None` otherwise).
            if repr == rec.v_e {
                continue;
            }
            // Path nodes: parent(repr), …, v_e (inclusive).
            let mut blockers: Vec<PartId> = Vec::new();
            let mut cur = repr;
            while cur != rec.v_e {
                let (parent, _) = tree
                    .parent(cur)
                    .expect("representative must descend from v_e");
                cur = parent;
                if let Some(q) = partition.part_of(cur) {
                    if active[q.index()] && !blockers.contains(&q) {
                        debug_assert_ne!(
                            q, part,
                            "min-depth representative path contains its own part"
                        );
                        blockers.push(q);
                    }
                }
            }
            edges.push(BEdge {
                record: ri,
                part,
                blockers,
            });
        }
    }
    edges
}

/// Realizes the minor `B_{P'}` for a concrete in/out choice of parts.
///
/// Returns the witness and its integer excess `|E_{P'}| - δ̂·|V_{P'}|`.
fn realize(
    g: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    data: &SweepData,
    b: &[BEdge],
    in_set: &[bool],
) -> (MinorWitness, i64) {
    let mut in_node = vec![false; g.num_nodes()];
    for &p in &data.active {
        if in_set[p.index()] {
            for &v in partition.part(p) {
                in_node[v.index()] = true;
            }
        }
    }
    let mut o_mark = vec![false; g.num_edges()];
    for rec in &data.over_edges {
        o_mark[rec.edge.index()] = true;
    }

    let mut branch_sets: Vec<Vec<NodeId>> = Vec::new();
    // Part-nodes first.
    let mut part_index = vec![usize::MAX; partition.num_parts()];
    for &p in &data.active {
        if in_set[p.index()] {
            part_index[p.index()] = branch_sets.len();
            branch_sets.push(partition.part(p).to_vec());
        }
    }
    let num_part_nodes = branch_sets.len();
    // Edge-nodes: records whose v_e lies outside every chosen part; branch
    // set = component of v_e in (T \ O) minus chosen-part nodes, collected
    // by a downward walk over non-cut tree edges.
    let mut record_index = vec![usize::MAX; data.over_edges.len()];
    for (ri, rec) in data.over_edges.iter().enumerate() {
        if in_node[rec.v_e.index()] {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![rec.v_e];
        while let Some(v) = stack.pop() {
            comp.push(v);
            for &ch in tree.children(v) {
                let (_, e) = tree.parent(ch).expect("child has parent edge");
                if !o_mark[e.index()] && !in_node[ch.index()] {
                    stack.push(ch);
                }
            }
        }
        record_index[ri] = branch_sets.len();
        branch_sets.push(comp);
    }
    let num_edge_nodes = branch_sets.len() - num_part_nodes;

    // Present B-edges.
    let mut edges = Vec::new();
    for be in b {
        if !in_set[be.part.index()] {
            continue;
        }
        if be.blockers.iter().any(|q| in_set[q.index()]) {
            continue;
        }
        let ei = record_index[be.record];
        // All blockers out implies v_e's part (a blocker or absent) is out,
        // so the record is an edge-node.
        debug_assert_ne!(ei, usize::MAX, "edge-node must exist for present edge");
        if ei == usize::MAX {
            continue; // defensive: never drop soundness in release builds
        }
        edges.push((ei, part_index[be.part.index()]));
    }

    let excess =
        edges.len() as i64 - i64::from(data.delta_hat) * (num_part_nodes + num_edge_nodes) as i64;
    (MinorWitness { branch_sets, edges }, excess)
}

/// Dispatches Case (II) extraction per the configured
/// [`WitnessMode`] — the single policy point shared by the centralized
/// sweep and the distributed construction.
pub(crate) fn extract_per_mode(
    g: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    data: &SweepData,
    config: &ShortcutConfig,
) -> Option<MinorWitness> {
    match config.witness_mode {
        WitnessMode::Skip => None,
        WitnessMode::Derandomized => extract_witness_derandomized(g, tree, partition, data),
        WitnessMode::Sampled { attempts } => {
            extract_witness_sampled(g, tree, partition, data, attempts, config.seed)
                .or_else(|| extract_witness_derandomized(g, tree, partition, data))
        }
    }
}

/// The paper's sampling extraction: each active part joins `P'`
/// independently with probability `1/4D`; retried up to `attempts` times.
///
/// Returns a witness with density `> δ̂` or `None` if all attempts failed
/// (each attempt succeeds with probability `Ω(1/D)` in Case (II)).
pub fn extract_witness_sampled(
    g: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    data: &SweepData,
    attempts: u32,
    seed: u64,
) -> Option<MinorWitness> {
    let b = build_b(tree, partition, data);
    let p = 1.0 / (4.0 * f64::from(data.tree_depth.max(1)));
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..attempts {
        let mut in_set = vec![false; partition.num_parts()];
        for &q in &data.active {
            in_set[q.index()] = rng.gen_bool(p);
        }
        let (w, excess) = realize(g, tree, partition, data, &b, &in_set);
        if excess > 0 {
            return Some(w);
        }
    }
    None
}

/// Deterministic extraction via the method of conditional expectations.
///
/// Greedily fixes each part in/out, maximizing the conditional expectation
/// of `|E_{P'}| - δ̂·|V_{P'}|`. Under the paper's constants, Case (II)
/// guarantees the initial expectation is positive, so the final integral
/// excess is positive and a density-`> δ̂` witness is returned. With
/// non-standard (ablation) constants the expectation may be non-positive —
/// then `None` is possible.
pub fn extract_witness_derandomized(
    g: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    data: &SweepData,
) -> Option<MinorWitness> {
    let b = build_b(tree, partition, data);
    let p = 1.0 / (4.0 * f64::from(data.tree_depth.max(1)));
    let delta = f64::from(data.delta_hat);
    let num_parts = partition.num_parts();

    // Per-part incidence lists.
    let mut as_endpoint: Vec<Vec<usize>> = vec![Vec::new(); num_parts];
    let mut as_blocker: Vec<Vec<usize>> = vec![Vec::new(); num_parts];
    let mut as_ve: Vec<Vec<usize>> = vec![Vec::new(); num_parts];
    for (j, be) in b.iter().enumerate() {
        as_endpoint[be.part.index()].push(j);
        for &q in &be.blockers {
            as_blocker[q.index()].push(j);
        }
    }
    let mut active = vec![false; num_parts];
    for &q in &data.active {
        active[q.index()] = true;
    }
    for (ri, rec) in data.over_edges.iter().enumerate() {
        if let Some(q) = partition.part_of(rec.v_e) {
            if active[q.index()] {
                as_ve[q.index()].push(ri);
            }
        }
    }

    // Edge states.
    #[derive(Clone, Copy, PartialEq)]
    enum Endpoint {
        Undecided,
        In,
    }
    let mut edge_dead = vec![false; b.len()];
    let mut edge_endpoint = vec![Endpoint::Undecided; b.len()];
    let mut blockers_left: Vec<u32> = b.iter().map(|be| be.blockers.len() as u32).collect();
    let edge_value = |dead: bool, ep: Endpoint, left: u32| -> f64 {
        if dead {
            0.0
        } else {
            let base = match ep {
                Endpoint::Undecided => p,
                Endpoint::In => 1.0,
            };
            base * (1.0 - p).powi(left as i32)
        }
    };
    // Record states: 0 undecided, 1 out (counts), 2 dead (v_e chosen).
    let mut record_state = vec![0u8; data.over_edges.len()];
    for (ri, rec) in data.over_edges.iter().enumerate() {
        match partition.part_of(rec.v_e) {
            Some(q) if active[q.index()] => {}
            _ => record_state[ri] = 1, // unowned or inactive v_e: always counts
        }
    }
    let record_value = |s: u8| -> f64 {
        match s {
            0 => -delta * (1.0 - p),
            1 => -delta,
            _ => 0.0,
        }
    };

    let mut in_set = vec![false; num_parts];
    for &q in &data.active {
        let qi = q.index();
        // Delta of E if q is fixed IN vs OUT, relative to current state.
        let mut d_in = -delta * (1.0 - p); // part term: -δp -> -δ
        let mut d_out = delta * p; // part term: -δp -> 0
        for &j in &as_endpoint[qi] {
            let old = edge_value(edge_dead[j], edge_endpoint[j], blockers_left[j]);
            d_in += edge_value(edge_dead[j], Endpoint::In, blockers_left[j]) - old;
            d_out += -old;
        }
        for &j in &as_blocker[qi] {
            let old = edge_value(edge_dead[j], edge_endpoint[j], blockers_left[j]);
            d_in += -old;
            d_out += edge_value(
                edge_dead[j],
                edge_endpoint[j],
                blockers_left[j].saturating_sub(1),
            ) - old;
        }
        for &ri in &as_ve[qi] {
            let old = record_value(record_state[ri]);
            d_in += -old; // record dies
            d_out += -delta - old; // record certainly counts
        }
        let choose_in = d_in > d_out;
        in_set[qi] = choose_in;
        // Apply the decision.
        for &j in &as_endpoint[qi] {
            if choose_in {
                edge_endpoint[j] = Endpoint::In;
            } else {
                edge_dead[j] = true;
            }
        }
        for &j in &as_blocker[qi] {
            if choose_in {
                edge_dead[j] = true;
            } else {
                blockers_left[j] = blockers_left[j].saturating_sub(1);
            }
        }
        for &ri in &as_ve[qi] {
            record_state[ri] = if choose_in { 2 } else { 1 };
        }
    }

    let (w, excess) = realize(g, tree, partition, data, &b, &in_set);
    if excess > 0 {
        Some(w)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{partial_shortcut_or_witness, SweepOutcome};
    use crate::ShortcutConfig;
    use lcs_graph::{bfs, minor};

    /// Rebuilds the comb instance (see `sweep::tests`) without cross-module
    /// test dependencies.
    fn comb(t: usize, k: usize) -> (Graph, Partition) {
        let n = 1 + t + t * k;
        let mut bld = lcs_graph::GraphBuilder::new(n);
        let leaf = |i: usize, p: usize| NodeId((1 + t + i * k + p) as u32);
        for i in 0..t {
            bld.add_edge(NodeId(0), NodeId((1 + i) as u32));
            for q in 0..k {
                bld.add_edge(NodeId((1 + i) as u32), leaf(i, q));
            }
        }
        for q in 0..k {
            for i in 0..t - 1 {
                bld.add_edge(leaf(i, q), leaf(i + 1, q));
            }
        }
        let g = bld.build();
        let parts = (0..k)
            .map(|q| (0..t).map(|i| leaf(i, q)).collect())
            .collect();
        let partition = Partition::from_parts(&g, parts).unwrap();
        (g, partition)
    }

    fn failing_sweep_data(g: &Graph, partition: &Partition) -> (RootedTree, SweepData) {
        let tree = bfs::bfs_tree(g, NodeId(0));
        let cfg = ShortcutConfig {
            witness_mode: crate::WitnessMode::Skip,
            ..ShortcutConfig::default()
        };
        match partial_shortcut_or_witness(g, &tree, partition, 1, &cfg) {
            SweepOutcome::DenseMinor { data, .. } => (tree, data),
            SweepOutcome::Shortcut(_) => panic!("instance must fail at δ̂ = 1"),
        }
    }

    #[test]
    fn derandomized_extraction_beats_delta_hat() {
        let (g, partition) = comb(10, 24);
        let (tree, data) = failing_sweep_data(&g, &partition);
        let w = extract_witness_derandomized(&g, &tree, &partition, &data)
            .expect("Case (II) with paper constants must extract");
        assert!(minor::verify_minor(&g, &w).is_ok());
        assert!(w.density() > f64::from(data.delta_hat));
    }

    #[test]
    fn sampled_extraction_eventually_succeeds() {
        let (g, partition) = comb(10, 24);
        let (tree, data) = failing_sweep_data(&g, &partition);
        let w = extract_witness_sampled(&g, &tree, &partition, &data, 400, 42)
            .expect("sampling succeeds with Ω(1/D) probability per attempt");
        assert!(minor::verify_minor(&g, &w).is_ok());
        assert!(w.density() > 1.0);
    }

    #[test]
    fn sampled_and_derandomized_agree_on_validity() {
        let (g, partition) = comb(12, 30);
        let (tree, data) = failing_sweep_data(&g, &partition);
        for w in [
            extract_witness_derandomized(&g, &tree, &partition, &data),
            extract_witness_sampled(&g, &tree, &partition, &data, 400, 7),
        ]
        .into_iter()
        .flatten()
        {
            assert!(minor::verify_minor(&g, &w).is_ok());
            assert!(w.density() > 1.0);
        }
    }

    #[test]
    fn weak_constants_may_fail_gracefully() {
        // With a congestion factor far below the paper's 8, the E[X] > 0
        // argument breaks; the extraction must return None (never an
        // invalid witness). We only pin the type-level contract here: any
        // Some(..) it does return still verifies.
        let (g, partition) = comb(4, 60);
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let cfg = ShortcutConfig {
            congestion_factor: 1,
            witness_mode: crate::WitnessMode::Skip,
            ..ShortcutConfig::default()
        };
        if let SweepOutcome::DenseMinor { data, .. } =
            partial_shortcut_or_witness(&g, &tree, &partition, 1, &cfg)
        {
            if let Some(w) = extract_witness_derandomized(&g, &tree, &partition, &data) {
                assert!(minor::verify_minor(&g, &w).is_ok());
                assert!(w.density() > 1.0);
            }
            if let Some(w) = extract_witness_sampled(&g, &tree, &partition, &data, 50, 3) {
                assert!(minor::verify_minor(&g, &w).is_ok());
                assert!(w.density() > 1.0);
            }
        }
    }

    #[test]
    fn witness_branch_sets_avoid_chosen_parts() {
        let (g, partition) = comb(10, 24);
        let (tree, data) = failing_sweep_data(&g, &partition);
        let w = extract_witness_derandomized(&g, &tree, &partition, &data).unwrap();
        // Every node appears in at most one branch set — rechecked here on
        // top of verify_minor for clarity.
        let mut seen = vec![false; g.num_nodes()];
        for set in &w.branch_sets {
            for &v in set {
                assert!(!seen[v.index()]);
                seen[v.index()] = true;
            }
        }
    }

    use lcs_graph::Graph;
}
