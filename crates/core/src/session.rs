//! The `ShortcutSession` facade: build once, serve many operations,
//! mutate cheaply.
//!
//! The whole point of the shortcut framework (and of this paper) is that
//! one object — the shortcut — is *prepared once* for a topology and then
//! *served* to many part-wise operations: aggregation, gossip, unicast
//! routing, MST, connectivity, min-cut. This module is the API that says
//! so. A [`ShortcutSession`] is built via the [`Session`] builder:
//!
//! ```
//! use lcs_core::session::{Backend, Session, TreeSource};
//! use lcs_graph::{gen, NodeId};
//!
//! let g = gen::grid(8, 8);
//! let mut session = Session::on(&g)
//!     .tree(TreeSource::Bfs(NodeId(0)))
//!     .partition(gen::rows_of_grid(8, 8))
//!     .backend(Backend::Centralized)
//!     .build()?;
//! // Artifacts are computed lazily and cached: the first access constructs,
//! // every later access reuses.
//! let delta_hat = session.delta_hat();
//! assert_eq!(session.cache_stats().full.builds, 1);
//! let _ = session.shortcut(); // cached — no second construction
//! assert_eq!(session.cache_stats().full.builds, 1);
//! # Ok::<(), lcs_core::PartitionError>(())
//! ```
//!
//! # The artifact graph
//!
//! The session caches the BFS tree, diameter bounds, the full shortcut
//! (with quality report and dense-minor certificate), per-`δ̂` partial
//! shortcuts, and typed per-op artifacts. Each cached artifact declares
//! which of the five session [`Input`]s it depends on (the constants in
//! [`deps`]), and each input carries an epoch counter ([`Epochs`]): a
//! cached value is served only while its recorded epochs agree with the
//! current ones on every declared dependency, and is invalidated —
//! precisely, lazily — when one of them bumps.
//!
//! # Mutating a live session
//!
//! Sessions are not frozen after the first construction; the mutation API
//! bumps input epochs instead of requiring a rebuild-from-scratch:
//!
//! * [`set_partition`](ShortcutSession::set_partition) /
//!   [`set_partition_object`](ShortcutSession::set_partition_object)
//!   replace the partition wholesale — every partition-scoped artifact is
//!   invalidated and rebuilt on next access;
//! * [`reassign_parts`](ShortcutSession::reassign_parts) moves individual
//!   nodes between existing parts and *re-customizes incrementally*: only
//!   the touched parts' shortcut edges and quality rows are recomputed
//!   (a mini doubling search over just those parts), everything
//!   topology/tree-scoped survives byte-for-byte;
//! * [`set_weights`](ShortcutSession::set_weights) /
//!   [`update_weights`](ShortcutSession::update_weights) mutate the
//!   `Weights` input read by weighted algorithms (MST) — the shortcut and
//!   partition artifacts are weight-independent and survive.
//!
//! The preparation/customization split mirrors customizable contraction
//! hierarchies: the metric- and partition-independent work (tree, diameter)
//! is never repeated, and partition churn pays only for what it touched.
//! [`CacheStats`] reports builds/hits/invalidations per artifact class so a
//! serving process can watch the cache behave.
//!
//! Operations plug in through the [`PartwiseOp`] trait (implemented by
//! `lcs_partwise` and `lcs_algos`; the umbrella crate's `facade` module
//! re-exports the method-call surface `session.aggregate(..)`,
//! `session.mst(..)`, …). Every operation returns a uniform [`OpReport`].
//! All knobs live in one serde-able [`SessionConfig`] with per-op
//! overrides.

use crate::dist::{distributed_full_shortcut, distributed_partial_shortcut, DistConfig, DistMode};
use crate::full::run_doubling_search;
use crate::quality::measure_parts;
use crate::source::{GraphSource, PartitionSource};
use crate::sweep::sweep_active;
use crate::{
    full_shortcut, measure_quality, partial_shortcut_or_witness, Partition, PartitionError,
    QualityReport, Shortcut, ShortcutConfig, SweepData, SweepOutcome,
};
use lcs_congest::{RunMetrics, SimConfig};
use lcs_graph::diameter::{diameter_bounds, DiameterBounds};
use lcs_graph::minor::MinorWitness;
use lcs_graph::weights::EdgeWeights;
use lcs_graph::{bfs, EdgeId, Graph, NodeId, PartId, RootedTree};
use serde::{Deserialize, Serialize};
use std::any::{Any, TypeId};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

const NO_PARTITION: &str = "this session has no partition — pass .partition(..) to the builder";
const NO_WEIGHTS: &str =
    "this session has no weights — pass .weights(..) to the builder or call set_weights(..)";

/// Everything that can go wrong when driving a [`ShortcutSession`] — the
/// typed form of what the panicking accessors report. The `try_*` methods
/// (and the `try_*` operation entry points in `lcs_partwise` /
/// `lcs_algos`) return this, so a long-lived serving process can turn
/// every misuse into a structured error response instead of a dead worker
/// thread. The panicking accessors are thin wrappers that `panic!` with
/// this error's [`Display`](fmt::Display) message, so panic texts and
/// error texts never drift apart.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// The session was built without a partition (partition-based ops
    /// require `.partition(..)` on the builder).
    NoPartition,
    /// The session has no weights — pass `.weights(..)` to the builder or
    /// call [`set_weights`](ShortcutSession::set_weights).
    NoWeights,
    /// A shared-reference accessor ([`ShortcutSession::shortcut_ref`] /
    /// [`ShortcutSession::tree_ref`]) was called before the artifact was
    /// built — call [`prepare`](ShortcutSession::prepare) first.
    NotPrepared {
        /// The artifact that was requested ("shortcut" or "tree").
        artifact: &'static str,
    },
    /// A shared-reference accessor found its cached artifact stale: an
    /// input was mutated since it was built — call
    /// [`prepare`](ShortcutSession::prepare) again.
    Stale {
        /// The artifact that was requested ("shortcut" or "tree").
        artifact: &'static str,
    },
    /// A partial shortcut was requested for `δ̂ = 0`.
    ZeroDeltaHat,
    /// A partition mutation failed validation; the session is unchanged.
    Partition(PartitionError),
    /// A node id exceeds the graph's node count.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes in the session graph.
        num_nodes: usize,
    },
    /// A part id exceeds the partition's part count.
    PartOutOfRange {
        /// The offending part.
        part: PartId,
        /// Number of parts in the session partition.
        num_parts: usize,
    },
    /// An edge id exceeds the graph's edge count.
    EdgeOutOfRange {
        /// The offending edge.
        edge: EdgeId,
        /// Number of edges in the session graph.
        num_edges: usize,
    },
    /// A weight vector's length differs from the graph's edge count.
    WeightCountMismatch {
        /// Provided number of weights.
        got: usize,
        /// The graph's edge count.
        expected: usize,
    },
    /// A weight exceeds the 31-bit budget the MST protocol packs ids into.
    WeightTooLarge {
        /// The offending edge.
        edge: EdgeId,
        /// Its proposed weight.
        weight: u64,
    },
    /// A per-node value vector's length differs from the node count.
    ValueCountMismatch {
        /// Provided number of values.
        got: usize,
        /// The graph's node count.
        expected: usize,
    },
    /// A per-part leader vector's length differs from the part count.
    LeaderCountMismatch {
        /// Provided number of leaders.
        got: usize,
        /// The partition's part count.
        expected: usize,
    },
    /// A proposed aggregation leader does not belong to the part it is
    /// supposed to lead.
    LeaderNotInPart {
        /// The offending leader node.
        leader: NodeId,
        /// Index of the part it was proposed for.
        part: usize,
    },
    /// A unicast demand routes a packet to its own source.
    UnicastSelfLoop {
        /// Index of the offending `(source, target)` pair.
        packet: usize,
    },
    /// The operation needs a larger graph (e.g. min-cut on < 2 nodes).
    GraphTooSmall {
        /// Minimum node count the operation supports.
        need: usize,
        /// The graph's node count.
        have: usize,
    },
    /// The operation requires a connected graph.
    GraphDisconnected,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoPartition => f.write_str(NO_PARTITION),
            Self::NoWeights => f.write_str(NO_WEIGHTS),
            Self::NotPrepared { artifact } => {
                write!(f, "{artifact} not prepared — call prepare() first")
            }
            Self::Stale { artifact } => write!(
                f,
                "{artifact} stale — an input changed since prepare(); call prepare() again"
            ),
            Self::ZeroDeltaHat => f.write_str("δ̂ must be at least 1"),
            Self::Partition(e) => write!(f, "{e}"),
            Self::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node:?} out of range — the graph has {num_nodes} nodes"
                )
            }
            Self::PartOutOfRange { part, num_parts } => {
                write!(
                    f,
                    "part {part:?} out of range — the partition has {num_parts} parts"
                )
            }
            Self::EdgeOutOfRange { edge, num_edges } => {
                write!(
                    f,
                    "edge {edge:?} out of range — the graph has {num_edges} edges"
                )
            }
            Self::WeightCountMismatch { got, expected } => write!(
                f,
                "one weight per edge required — got {got}, the graph has {expected} edges"
            ),
            Self::WeightTooLarge { edge, weight } => write!(
                f,
                "weight {weight} on edge {edge:?} exceeds 2^31 - 1 — weights must fit in 31 bits"
            ),
            Self::ValueCountMismatch { got, expected } => write!(
                f,
                "one value per node required — got {got}, the graph has {expected} nodes"
            ),
            Self::LeaderCountMismatch { got, expected } => write!(
                f,
                "one leader per part required — got {got}, the partition has {expected} parts"
            ),
            Self::LeaderNotInPart { leader, part } => {
                write!(f, "leader {leader:?} is not a member of part {part}")
            }
            Self::UnicastSelfLoop { packet } => {
                write!(f, "source equals target for packet {packet}")
            }
            Self::GraphTooSmall { need, have } => write!(
                f,
                "operation needs at least {need} nodes — the graph has {have}"
            ),
            Self::GraphDisconnected => f.write_str("graph must be connected"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<PartitionError> for SessionError {
    fn from(e: PartitionError) -> Self {
        SessionError::Partition(e)
    }
}

/// Where the session's spanning tree comes from.
#[derive(Clone, Debug)]
pub enum TreeSource {
    /// Run BFS from this root (the canonical min-id-parent rule, identical
    /// to what the distributed BFS protocol builds).
    Bfs(NodeId),
    /// Use a caller-provided rooted tree (e.g. deserialized from a prior
    /// run, or a non-BFS tree for experiments). Note: the distributed
    /// backends run the Theorem 1.5 protocol, which builds its own BFS
    /// tree — they accept a provided tree only if it equals that canonical
    /// tree (asserted at construction time); arbitrary trees require
    /// [`Backend::Centralized`].
    Provided(RootedTree),
}

/// The execution backend shortcut construction runs on.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Backend {
    /// Centralized Theorem 1.2 construction (no simulated rounds charged).
    Centralized,
    /// Distributed Theorem 1.5 construction with exact set streaming on the
    /// CONGEST simulator, using this simulator configuration. Reproduces
    /// the centralized cut set edge-for-edge.
    Distributed(SimConfig),
    /// Distributed Theorem 1.5 construction with the given detection
    /// configuration — typically [`DistMode::Sketch`], which caps per-edge
    /// traffic at `t + 1` messages and makes `n = 10⁵` affordable.
    Sketch(DistConfig),
}

/// The five mutable inputs of the session's artifact graph. Every cached
/// artifact declares the subset it depends on (see [`deps`]); mutating an
/// input bumps its epoch in [`Epochs`] and thereby invalidates exactly the
/// artifacts that declared it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Input {
    /// The graph topology (immutable today — the epoch is reserved).
    Topology,
    /// The spanning tree source (immutable today — the epoch is reserved).
    Tree,
    /// The partition, mutated by
    /// [`set_partition`](ShortcutSession::set_partition) and
    /// [`reassign_parts`](ShortcutSession::reassign_parts).
    Partition,
    /// The edge weights, mutated by
    /// [`set_weights`](ShortcutSession::set_weights) and
    /// [`update_weights`](ShortcutSession::update_weights).
    Weights,
    /// The construction/simulator configuration, conservatively bumped by
    /// [`config_mut`](ShortcutSession::config_mut).
    Sim,
}

/// Per-input epoch counters. A cached artifact records the epochs at build
/// time; it is fresh while that stamp [`agrees_on`](Epochs::agrees_on) the
/// artifact's declared dependencies with the session's current epochs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Epochs {
    /// Epoch of the graph topology.
    pub topology: u64,
    /// Epoch of the spanning tree.
    pub tree: u64,
    /// Epoch of the partition input.
    pub partition: u64,
    /// Epoch of the edge-weights input.
    pub weights: u64,
    /// Epoch of the construction/simulator configuration.
    pub sim: u64,
}

impl Epochs {
    /// The counter of one input.
    pub fn of(&self, input: Input) -> u64 {
        match input {
            Input::Topology => self.topology,
            Input::Tree => self.tree,
            Input::Partition => self.partition,
            Input::Weights => self.weights,
            Input::Sim => self.sim,
        }
    }

    fn bump(&mut self, input: Input) {
        let slot = match input {
            Input::Topology => &mut self.topology,
            Input::Tree => &mut self.tree,
            Input::Partition => &mut self.partition,
            Input::Weights => &mut self.weights,
            Input::Sim => &mut self.sim,
        };
        *slot += 1;
    }

    /// Whether `self` and `other` agree on every input in `deps`.
    pub fn agrees_on(&self, other: &Epochs, deps: &[Input]) -> bool {
        deps.iter().all(|&d| self.of(d) == other.of(d))
    }
}

/// Declared dependency sets of the session's artifact classes. Custom op
/// artifacts pick one of these (or any `&'static [Input]`) when calling
/// [`op_artifact_with`](ShortcutSession::op_artifact_with).
pub mod deps {
    use super::Input;

    /// The spanning tree: topology and tree source only.
    pub const TREE: &[Input] = &[Input::Topology, Input::Tree];
    /// Diameter bounds: same scope as the tree.
    pub const DIAMETER: &[Input] = &[Input::Topology, Input::Tree];
    /// Shortcut-scoped artifacts — the full shortcut, its quality report,
    /// per-`δ̂` partials, and the default for op artifacts (e.g. the
    /// partwise participation map).
    pub const SHORTCUT: &[Input] = &[Input::Topology, Input::Tree, Input::Partition, Input::Sim];
    /// Weighted whole-graph algorithms (MST): weights but no partition.
    pub const WEIGHTED: &[Input] = &[Input::Topology, Input::Weights, Input::Sim];
    /// Unweighted whole-graph algorithms (connectivity, min-cut).
    pub const TOPOLOGY_ONLY: &[Input] = &[Input::Topology, Input::Sim];
}

/// Build/hit/invalidation counters of one artifact class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArtifactStats {
    /// Times the artifact was (re)built from scratch.
    pub builds: u64,
    /// Times a cached value was served.
    pub hits: u64,
    /// Times a cached value was discarded because a dependency epoch
    /// bumped.
    pub invalidations: u64,
}

/// Per-artifact-class cache observability: how often each artifact was
/// built, served from cache, and invalidated — the serving-process view of
/// the [module docs](self)' artifact graph. Serde-able, so a daemon can
/// export it as-is.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// The spanning tree.
    pub tree: ArtifactStats,
    /// Diameter bounds.
    pub diameter: ArtifactStats,
    /// The full shortcut artifact.
    pub full: ArtifactStats,
    /// The quality report.
    pub quality: ArtifactStats,
    /// Per-`δ̂` partial artifacts (summed over `δ̂`).
    pub partials: ArtifactStats,
    /// Typed op artifacts (summed over artifact types).
    pub op_artifacts: ArtifactStats,
    /// Incremental re-customizations of the full shortcut performed by
    /// [`reassign_parts`](ShortcutSession::reassign_parts) churn. These do
    /// **not** count as `full.builds` — that is the point.
    pub recustomizations: u64,
    /// Total parts re-customized across all recustomizations.
    pub recustomized_parts: u64,
    /// Op artifacts refreshed incrementally via
    /// [`op_artifact_patched`](ShortcutSession::op_artifact_patched)
    /// instead of rebuilt.
    pub op_artifact_patches: u64,
}

/// A cached artifact plus the input epochs it was built under.
#[derive(Clone, Debug)]
struct Slot<T> {
    value: T,
    stamp: Epochs,
}

impl<T> Slot<T> {
    fn new(value: T, stamp: Epochs) -> Self {
        Slot { value, stamp }
    }

    fn fresh(&self, now: &Epochs, deps: &[Input]) -> bool {
        self.stamp.agrees_on(now, deps)
    }
}

/// A typed op artifact with its declared dependency set.
struct OpSlot {
    value: Arc<dyn Any + Send + Sync>,
    stamp: Epochs,
    deps: &'static [Input],
}

/// One entry of the partition-mutation log: the partition epoch *after*
/// the change, plus what changed.
enum PartitionDelta {
    /// Node moves touching exactly these parts.
    Reassigned(Vec<PartId>),
    /// A wholesale replacement — no incremental refresh possible across it.
    Wholesale,
}

/// Mutations older than this fall off the log; artifacts stamped before
/// the window rebuild from scratch instead of patching.
const PARTITION_LOG_CAP: usize = 64;

/// Per-op overrides for leader-based aggregation (absorbs the legacy
/// `PartwiseConfig` knobs).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AggregateOpts {
    /// Leaders delay their start uniformly in `[0, delay_range)` rounds;
    /// `0` disables the random-delays smoothing.
    pub delay_range: u32,
    /// Seed for the delays.
    pub seed: u64,
    /// Simulator override for this op; `None` uses [`SessionConfig::sim`].
    pub sim: Option<SimConfig>,
}

impl Default for AggregateOpts {
    fn default() -> Self {
        AggregateOpts {
            delay_range: 0,
            seed: 0xde1af,
            sim: None,
        }
    }
}

/// Per-op overrides for multi-unicast routing (absorbs the legacy
/// `UnicastConfig` knobs).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct UnicastOpts {
    /// Packets start after a uniform random delay in `[0, delay_range)`.
    pub delay_range: u32,
    /// Seed for delays and queue priorities.
    pub seed: u64,
    /// Simulator override for this op; `None` uses [`SessionConfig::sim`].
    pub sim: Option<SimConfig>,
}

impl Default for UnicastOpts {
    fn default() -> Self {
        UnicastOpts {
            delay_range: 0,
            seed: 0x0417,
            sim: None,
        }
    }
}

/// Per-op overrides for Boruvka MST / connectivity (absorbs the legacy
/// `BoruvkaConfig` knobs; the shortcut provider is derived from the
/// session's [`Backend`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MstOpts {
    /// Seed for the merge coin flips.
    pub seed: u64,
    /// Safety cap on phases; `None` = `4·log₂ n + 16`.
    pub max_phases: Option<usize>,
    /// Skip shortcutting fragments of at most `2D + 1` nodes (their own
    /// diameter already meets the dilation bound).
    pub skip_small_fragments: bool,
    /// Simulator override for this op; `None` uses [`SessionConfig::sim`].
    pub sim: Option<SimConfig>,
}

impl Default for MstOpts {
    fn default() -> Self {
        MstOpts {
            seed: 0xb0_aa_12,
            max_phases: None,
            skip_small_fragments: true,
            sim: None,
        }
    }
}

/// Per-op overrides for the min-cut approximation (absorbs the legacy
/// `MincutConfig` knobs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MincutOpts {
    /// Number of trees to pack; `None` = `min(min_degree, 2·⌈ln n⌉ + 4)`.
    pub trees: Option<usize>,
    /// Simulator override for this op; `None` uses [`SessionConfig::sim`].
    pub sim: Option<SimConfig>,
}

/// Every knob of the facade in one serde-able struct: shortcut-construction
/// parameters, the session-wide simulator configuration, and per-op
/// override blocks. This collapses the legacy `PartwiseConfig` /
/// `UnicastConfig` / `BoruvkaConfig` / `MincutConfig` constellation into a
/// single value a service can load from disk.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Theorem 3.1 construction constants and witness policy.
    pub shortcut: ShortcutConfig,
    /// Simulator settings every op inherits (ops force the queue mode they
    /// need; [`SimConfig::threads`] selects the sharded executor and
    /// [`SimConfig::message_packing`] the multi-value packing factor —
    /// `k > 1` coalesces burst sends into multi-value CONGEST messages,
    /// cutting rounds on streaming workloads like the sketch construction
    /// while leaving every result bit-identical).
    pub sim: SimConfig,
    /// Aggregation overrides.
    pub aggregate: AggregateOpts,
    /// Unicast overrides.
    pub unicast: UnicastOpts,
    /// MST / connectivity overrides.
    pub mst: MstOpts,
    /// Min-cut overrides.
    pub mincut: MincutOpts,
    /// Declarative partition source, resolved at
    /// [`build`](SessionBuilder::build) time when the builder was given
    /// no explicit partition (an explicit `.partition(..)` /
    /// `.partition_object(..)` always wins). Lets one serde-able config
    /// carry the whole session recipe — including *how* to partition —
    /// across processes. Sources must cover every node
    /// ([`Partition::from_parts_covering`]).
    pub partition_source: Option<PartitionSource>,
    /// Declarative graph source — *where the graph came from*. Sessions
    /// always run over the explicit [`Graph`] handed to
    /// [`Session::on`] (the graph is the session's borrowed substrate, so
    /// an explicit graph always wins, mirroring the
    /// [`partition_source`](Self::partition_source) precedence); this
    /// field makes the recipe serde-able end to end:
    /// [`GraphSource::resolve`](crate::GraphSource::resolve) +
    /// [`ResolvedGraph::session`](crate::ResolvedGraph::session) start a
    /// builder from the recorded source, and servers canonicalize it into
    /// their dedup keys.
    pub graph_source: Option<GraphSource>,
}

impl SessionConfig {
    /// The simulator configuration for aggregation/gossip ops.
    pub fn aggregate_sim(&self) -> SimConfig {
        self.aggregate.sim.unwrap_or(self.sim)
    }

    /// The simulator configuration for unicast routing.
    pub fn unicast_sim(&self) -> SimConfig {
        self.unicast.sim.unwrap_or(self.sim)
    }

    /// The simulator configuration for MST / connectivity.
    pub fn mst_sim(&self) -> SimConfig {
        self.mst.sim.unwrap_or(self.sim)
    }

    /// The simulator configuration for min-cut.
    pub fn mincut_sim(&self) -> SimConfig {
        self.mincut.sim.unwrap_or(self.sim)
    }
}

/// Simulated cost of constructing the session's cached artifacts (zero for
/// the centralized backend, which charges no simulated rounds).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstructionStats {
    /// Total simulated rounds.
    pub rounds: u64,
    /// Total simulated messages.
    pub messages: u64,
    /// Total simulated bits.
    pub bits: u64,
}

/// The cached full-shortcut artifact (Theorem 1.2 / 1.5 output).
#[derive(Clone, Debug)]
pub struct FullArtifact {
    /// The union shortcut serving every part.
    pub shortcut: Shortcut,
    /// Final `δ̂` of the doubling search (0 for a caller-provided shortcut,
    /// whose construction parameters are unknown).
    pub delta_hat: u32,
    /// Densest dense-minor certificate from failed sweeps, if any.
    pub witness: Option<MinorWitness>,
    /// Simulated construction cost (zero for centralized / provided).
    pub construction: ConstructionStats,
}

/// The cached per-`δ̂` partial-shortcut artifact (one Theorem 3.1 sweep).
#[derive(Clone, Debug)]
pub struct PartialArtifact {
    /// The assembled partial shortcut (empty edge lists for unserved
    /// parts).
    pub shortcut: Shortcut,
    /// Parts served by the sweep, sorted.
    pub served: Vec<PartId>,
    /// Whether at least half the parts were served (Case (I)).
    pub case_one: bool,
    /// The sweep bookkeeping (cut set with true crossing loads, thresholds,
    /// `B`-degrees).
    pub data: SweepData,
    /// Case (II) certificate, when the backend extracts one (centralized
    /// only).
    pub witness: Option<MinorWitness>,
    /// BFS-phase metrics (distributed backends only).
    pub metrics_bfs: Option<RunMetrics>,
    /// Detection-phase metrics (distributed backends only).
    pub metrics_detect: Option<RunMetrics>,
}

/// The uniform result wrapper every session operation returns: the op's
/// typed result plus the simulated cost and the execution configuration it
/// was measured under.
#[derive(Clone, Debug)]
pub struct OpReport<T> {
    /// The operation's own outcome (aggregates, routed packets, MST
    /// edges, …).
    pub result: T,
    /// Simulated rounds of the operation (construction rounds of cached
    /// artifacts are *not* re-charged — that is the point of the session).
    pub rounds: u64,
    /// Simulated messages.
    pub messages: u64,
    /// Simulated bits (id-aware accounting).
    pub bits: u64,
    /// Quality of the served shortcut, when the op ran over the session's
    /// partition (`None` for fragment-based ops like MST, whose partitions
    /// change per phase). Shared via [`Arc`] with the session's cache — the
    /// report is measured once per session and every `OpReport` holds the
    /// same allocation instead of a per-call deep clone of its O(k)
    /// per-part vectors.
    pub quality: Option<Arc<QualityReport>>,
    /// Worker threads the simulator ran with.
    pub threads: usize,
    /// Per-message bandwidth limit (bits) the run enforced.
    pub bandwidth_bits: usize,
}

impl<T> OpReport<T> {
    /// Wraps an op result measured by a single simulator run.
    pub fn from_metrics(
        result: T,
        metrics: &RunMetrics,
        quality: Option<Arc<QualityReport>>,
    ) -> Self {
        OpReport {
            result,
            rounds: metrics.rounds,
            messages: metrics.messages,
            bits: metrics.bits,
            quality,
            threads: metrics.threads,
            bandwidth_bits: metrics.bandwidth_bits,
        }
    }

    /// Maps the result, keeping the measurements.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> OpReport<U> {
        OpReport {
            result: f(self.result),
            rounds: self.rounds,
            messages: self.messages,
            bits: self.bits,
            quality: self.quality,
            threads: self.threads,
            bandwidth_bits: self.bandwidth_bits,
        }
    }
}

/// An operation the session can drive: part-wise aggregation, gossip,
/// unicast routing, MST, connectivity, min-cut. Implementations live next
/// to their protocols (`lcs_partwise`, `lcs_algos`); the session supplies
/// the cached artifacts and collects the uniform [`OpReport`].
pub trait PartwiseOp {
    /// The operation's typed result.
    type Output;

    /// Runs the operation over the session's cached artifacts.
    fn run(self, session: &mut ShortcutSession<'_>) -> OpReport<Self::Output>;
}

/// Entry point of the builder: `Session::on(&graph)`.
pub struct Session;

impl Session {
    /// Starts building a session over `g`.
    pub fn on(g: &Graph) -> SessionBuilder<'_> {
        SessionBuilder {
            g,
            tree: None,
            parts: None,
            partition: None,
            weights: None,
            backend: Backend::Centralized,
            config: SessionConfig::default(),
            provided_shortcut: None,
        }
    }
}

/// Builder for [`ShortcutSession`]. Construction is free: no tree, no
/// diameter, no shortcut is computed until an accessor or operation first
/// needs it.
pub struct SessionBuilder<'g> {
    g: &'g Graph,
    tree: Option<TreeSource>,
    parts: Option<Vec<Vec<NodeId>>>,
    partition: Option<Partition>,
    weights: Option<EdgeWeights>,
    backend: Backend,
    config: SessionConfig,
    provided_shortcut: Option<Shortcut>,
}

impl<'g> SessionBuilder<'g> {
    /// Sets the tree source (default: BFS from `NodeId(0)`).
    pub fn tree(mut self, source: TreeSource) -> Self {
        self.tree = Some(source);
        self
    }

    /// Sets the partition from raw node lists (validated at
    /// [`build`](Self::build)).
    pub fn partition(mut self, parts: Vec<Vec<NodeId>>) -> Self {
        self.parts = Some(parts);
        self.partition = None;
        self
    }

    /// Sets an already-validated partition.
    pub fn partition_object(mut self, partition: Partition) -> Self {
        self.partition = Some(partition);
        self.parts = None;
        self
    }

    /// Sets a declarative [`PartitionSource`], resolved against the graph
    /// at [`build`](Self::build) time (stored in
    /// [`SessionConfig::partition_source`], so the whole recipe stays in
    /// the one serde-able config). An explicit `.partition(..)` /
    /// `.partition_object(..)` takes precedence. The resolved parts must
    /// cover every node — [`build`](Self::build) returns
    /// [`PartitionError::Uncovered`] otherwise (e.g. a Voronoi source on
    /// a disconnected graph).
    pub fn partition_source(mut self, source: PartitionSource) -> Self {
        self.config.partition_source = Some(source);
        self
    }

    /// Records the declarative [`GraphSource`] the session's graph came
    /// from (stored in [`SessionConfig::graph_source`], so the whole
    /// recipe stays in the one serde-able config). The explicit graph
    /// handed to [`Session::on`] always wins — the source is provenance,
    /// resolved (if at all) *before* the builder exists via
    /// [`GraphSource::resolve`](crate::GraphSource::resolve) /
    /// [`ResolvedGraph::session`](crate::ResolvedGraph::session), which
    /// calls this setter for you.
    pub fn graph_source(mut self, source: GraphSource) -> Self {
        self.config.graph_source = Some(source);
        self
    }

    /// Sets the initial edge weights (the `Weights` input read by weighted
    /// ops like MST; mutable later via
    /// [`set_weights`](ShortcutSession::set_weights) /
    /// [`update_weights`](ShortcutSession::update_weights)).
    ///
    /// # Panics
    ///
    /// [`build`](Self::build) panics if the length differs from the
    /// graph's edge count.
    pub fn weights(mut self, weights: EdgeWeights) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Sets the construction backend (default: [`Backend::Centralized`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the session configuration (default: [`SessionConfig::default`]).
    pub fn config(mut self, config: SessionConfig) -> Self {
        self.config = config;
        self
    }

    /// Seeds the shortcut cache with an externally built shortcut (e.g.
    /// deserialized from a prior run, or a baseline for comparison). The
    /// session serves it as-is and charges zero constructions.
    pub fn shortcut(mut self, shortcut: Shortcut) -> Self {
        self.provided_shortcut = Some(shortcut);
        self
    }

    /// Finishes the builder. Validates the partition (if given as raw node
    /// lists); everything else stays lazy.
    pub fn build(self) -> Result<ShortcutSession<'g>, PartitionError> {
        let partition = match (self.partition, self.parts) {
            (Some(p), _) => Some(p),
            (None, Some(lists)) => Some(Partition::from_parts(self.g, lists)?),
            (None, None) => match &self.config.partition_source {
                Some(src) => Some(Partition::from_parts_covering(self.g, src.resolve(self.g))?),
                None => None,
            },
        };
        if let Some(w) = &self.weights {
            assert_eq!(w.len(), self.g.num_edges(), "one weight per edge required");
        }
        let source = self.tree.unwrap_or(TreeSource::Bfs(NodeId(0)));
        let (root, tree) = match source {
            TreeSource::Bfs(r) => (r, None),
            TreeSource::Provided(t) => (t.root(), Some(t)),
        };
        let tree_provided = tree.is_some();
        let stamp = Epochs::default();
        let full = self.provided_shortcut.map(|shortcut| {
            Slot::new(
                FullArtifact {
                    shortcut,
                    delta_hat: 0,
                    witness: None,
                    construction: ConstructionStats::default(),
                },
                stamp,
            )
        });
        Ok(ShortcutSession {
            g: self.g,
            root,
            partition,
            weights: self.weights,
            backend: self.backend,
            config: self.config,
            epochs: stamp,
            tree: tree.map(|t| Slot::new(t, stamp)),
            tree_provided,
            diam: None,
            full,
            quality: None,
            partials: BTreeMap::new(),
            op_artifacts: HashMap::new(),
            partition_log: VecDeque::new(),
            stats: CacheStats::default(),
        })
    }
}

/// A prepared-topology session: one graph, one tree, one backend — with a
/// mutable partition and mutable weights. Artifacts are computed lazily,
/// cached under per-input epoch stamps, invalidated precisely when a
/// declared dependency changes, and served to any number of operations.
/// See the [module docs](self) for the full story.
pub struct ShortcutSession<'g> {
    g: &'g Graph,
    root: NodeId,
    partition: Option<Partition>,
    weights: Option<EdgeWeights>,
    backend: Backend,
    config: SessionConfig,
    /// Current epoch of each [`Input`].
    epochs: Epochs,
    tree: Option<Slot<RootedTree>>,
    /// Whether `tree` came from [`TreeSource::Provided`] (the distributed
    /// backends must verify it matches the protocol's own BFS tree).
    tree_provided: bool,
    diam: Option<Slot<DiameterBounds>>,
    full: Option<Slot<FullArtifact>>,
    quality: Option<Slot<Arc<QualityReport>>>,
    partials: BTreeMap<u32, Slot<PartialArtifact>>,
    /// Per-op-type derived artifacts (e.g. the partwise participation
    /// map), keyed by the artifact's [`TypeId`] and shared via [`Arc`].
    /// See [`op_artifact_with`](ShortcutSession::op_artifact_with).
    op_artifacts: HashMap<TypeId, OpSlot>,
    /// Recent partition mutations: `(partition epoch after the change,
    /// what changed)`, capped at [`PARTITION_LOG_CAP`] entries.
    partition_log: VecDeque<(u64, PartitionDelta)>,
    stats: CacheStats,
}

impl<'g> ShortcutSession<'g> {
    /// The graph this session serves.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// The tree root.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The construction backend.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Mutable access to the configuration (between operations).
    ///
    /// Counts as a mutation of the [`Input::Sim`] input: the epoch is
    /// bumped conservatively on every access, so construction- and
    /// simulator-scoped artifacts rebuild the next time they are needed.
    /// Read through [`config`](Self::config) when nothing changes.
    pub fn config_mut(&mut self) -> &mut SessionConfig {
        self.epochs.bump(Input::Sim);
        &mut self.config
    }

    /// Whether a partition was configured.
    pub fn has_partition(&self) -> bool {
        self.partition.is_some()
    }

    /// The session partition.
    ///
    /// # Panics
    ///
    /// Panics if the session was built without one (partition-based ops
    /// require `.partition(..)` on the builder). Use
    /// [`try_partition`](Self::try_partition) for the fallible form.
    pub fn partition(&self) -> &Partition {
        self.partition.as_ref().expect(NO_PARTITION)
    }

    /// Fallible [`partition`](Self::partition): the session partition, or
    /// [`SessionError::NoPartition`].
    pub fn try_partition(&self) -> Result<&Partition, SessionError> {
        self.partition.as_ref().ok_or(SessionError::NoPartition)
    }

    /// Whether weights were configured.
    pub fn has_weights(&self) -> bool {
        self.weights.is_some()
    }

    /// The session's edge weights (the `Weights` input).
    ///
    /// # Panics
    ///
    /// Panics if the session has no weights — pass `.weights(..)` to the
    /// builder or call [`set_weights`](Self::set_weights). Use
    /// [`try_weights`](Self::try_weights) for the fallible form.
    pub fn weights(&self) -> &EdgeWeights {
        self.weights.as_ref().expect(NO_WEIGHTS)
    }

    /// Fallible [`weights`](Self::weights): the session weights, or
    /// [`SessionError::NoWeights`].
    pub fn try_weights(&self) -> Result<&EdgeWeights, SessionError> {
        self.weights.as_ref().ok_or(SessionError::NoWeights)
    }

    /// The current epoch of every input.
    pub fn epochs(&self) -> Epochs {
        self.epochs
    }

    /// Per-artifact cache counters: builds, hits, invalidations, and the
    /// incremental-recustomization tallies.
    pub fn cache_stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of shortcut constructions this session actually performed
    /// (full builds plus one per distinct partial `δ̂`; incremental
    /// re-customizations do not count).
    #[deprecated(
        note = "use cache_stats() — this equals cache_stats().full.builds + cache_stats().partials.builds"
    )]
    pub fn constructions(&self) -> usize {
        (self.stats.full.builds + self.stats.partials.builds) as usize
    }

    /// Replaces the partition wholesale, validating the raw node lists,
    /// and bumps the [`Input::Partition`] epoch: every partition-scoped
    /// artifact is invalidated (lazily) and rebuilt on next access.
    ///
    /// For small membership changes prefer
    /// [`reassign_parts`](Self::reassign_parts), which re-customizes
    /// incrementally instead.
    ///
    /// # Errors
    ///
    /// Returns the validation error without changing the session.
    pub fn set_partition(&mut self, parts: Vec<Vec<NodeId>>) -> Result<(), PartitionError> {
        let partition = Partition::from_parts(self.g, parts)?;
        self.set_partition_object(partition);
        Ok(())
    }

    /// [`set_partition`](Self::set_partition) with an already-validated
    /// partition.
    pub fn set_partition_object(&mut self, partition: Partition) {
        self.partition = Some(partition);
        self.epochs.bump(Input::Partition);
        self.log_partition_change(PartitionDelta::Wholesale);
    }

    /// Moves nodes between existing parts and re-customizes incrementally.
    ///
    /// Validation is atomic (see [`Partition::reassign`]): on error the
    /// session is unchanged. On success the [`Input::Partition`] epoch
    /// bumps, but the touched parts are remembered — when the full
    /// shortcut (or quality report) is next needed and is stale *only*
    /// because of such tracked reassignments, the session runs a mini
    /// doubling search over just the touched parts and splices their
    /// `H_i` into the cached shortcut instead of rebuilding everything.
    /// Per-part quality rows are re-measured for the touched parts only.
    /// Returns the sorted ids of the touched parts (old and new part of
    /// every moved node); an effect-free move list returns an empty vector
    /// without bumping any epoch.
    ///
    /// The re-customization sweep always runs the centralized Theorem 3.1
    /// sweep over the session tree (a local patch with zero simulated
    /// rounds charged, like a provided shortcut). For
    /// [`Backend::Distributed`] this is cut-identical to what the protocol
    /// would build; for [`Backend::Sketch`] the touched parts get the
    /// exact rather than the sketched cut — still a valid tree-restricted
    /// shortcut for the new partition.
    ///
    /// # Errors
    ///
    /// Returns the [`PartitionError`] of the first violated touched part.
    ///
    /// # Panics
    ///
    /// Panics if the session has no partition, or a target part id is out
    /// of range. Use [`try_reassign_parts`](Self::try_reassign_parts) for
    /// the fully fallible form.
    pub fn reassign_parts(
        &mut self,
        moves: &[(NodeId, PartId)],
    ) -> Result<Vec<PartId>, PartitionError> {
        match self.try_reassign_parts(moves) {
            Ok(touched) => Ok(touched),
            Err(SessionError::Partition(e)) => Err(e),
            Err(e) => panic!("{e}"),
        }
    }

    /// [`reassign_parts`](Self::reassign_parts) with every misuse turned
    /// into a typed error: a missing partition and an out-of-range target
    /// part id are reported as [`SessionError::NoPartition`] /
    /// [`SessionError::PartOutOfRange`] instead of a panic, and validation
    /// failures as [`SessionError::Partition`]. On any `Err` the session
    /// is unchanged.
    pub fn try_reassign_parts(
        &mut self,
        moves: &[(NodeId, PartId)],
    ) -> Result<Vec<PartId>, SessionError> {
        let current = self.partition.as_ref().ok_or(SessionError::NoPartition)?;
        let num_parts = current.num_parts();
        if let Some(&(_, part)) = moves.iter().find(|(_, p)| p.index() >= num_parts) {
            return Err(SessionError::PartOutOfRange { part, num_parts });
        }
        let (next, touched) = current
            .reassign(self.g, moves)
            .map_err(SessionError::Partition)?;
        if touched.is_empty() {
            return Ok(touched);
        }
        self.partition = Some(next);
        self.epochs.bump(Input::Partition);
        self.log_partition_change(PartitionDelta::Reassigned(touched.clone()));
        Ok(touched)
    }

    /// Replaces the edge weights, bumping the [`Input::Weights`] epoch —
    /// unless the new weights equal the current ones, in which case this
    /// is a no-op (so repeated calls with the same metric keep weight-
    /// scoped artifacts cached).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the graph's edge count. Use
    /// [`try_set_weights`](Self::try_set_weights) for the fallible form.
    pub fn set_weights(&mut self, weights: EdgeWeights) {
        self.try_set_weights(weights)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`set_weights`](Self::set_weights) with the length mismatch
    /// reported as [`SessionError::WeightCountMismatch`] instead of a
    /// panic. On `Err` the session is unchanged.
    pub fn try_set_weights(&mut self, weights: EdgeWeights) -> Result<(), SessionError> {
        if weights.len() != self.g.num_edges() {
            return Err(SessionError::WeightCountMismatch {
                got: weights.len(),
                expected: self.g.num_edges(),
            });
        }
        if self.weights.as_ref() == Some(&weights) {
            return Ok(());
        }
        self.weights = Some(weights);
        self.epochs.bump(Input::Weights);
        Ok(())
    }

    /// Applies sparse `(edge, new_weight)` updates to the session weights
    /// and bumps the [`Input::Weights`] epoch (no-op for an empty list).
    ///
    /// # Panics
    ///
    /// Panics if the session has no weights, or an edge id is out of
    /// range. Use [`try_update_weights`](Self::try_update_weights) for the
    /// fallible form.
    pub fn update_weights(&mut self, changes: &[(EdgeId, u64)]) {
        self.try_update_weights(changes)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// [`update_weights`](Self::update_weights) with typed errors: a
    /// missing weight vector is [`SessionError::NoWeights`], an
    /// out-of-range edge id [`SessionError::EdgeOutOfRange`]. Validation
    /// is atomic (via [`EdgeWeights::try_update`]): on `Err` no weight was
    /// written and no epoch bumped, so the serving state stays consistent.
    pub fn try_update_weights(&mut self, changes: &[(EdgeId, u64)]) -> Result<(), SessionError> {
        let w = self.weights.as_mut().ok_or(SessionError::NoWeights)?;
        if changes.is_empty() {
            return Ok(());
        }
        w.try_update(changes)
            .map_err(|e| SessionError::EdgeOutOfRange {
                edge: e.edge,
                num_edges: e.num_edges,
            })?;
        self.epochs.bump(Input::Weights);
        Ok(())
    }

    /// The session's spanning tree (computed on first access).
    pub fn tree(&mut self) -> &RootedTree {
        self.ensure_tree();
        &self.tree.as_ref().expect("just ensured").value
    }

    /// Two-sided diameter bounds of the root's component (double-sweep;
    /// computed on first access).
    pub fn diameter(&mut self) -> DiameterBounds {
        let now = self.epochs;
        if let Some(slot) = &self.diam {
            if slot.fresh(&now, deps::DIAMETER) {
                self.stats.diameter.hits += 1;
                return slot.value;
            }
            self.stats.diameter.invalidations += 1;
        }
        self.stats.diameter.builds += 1;
        let slot = Slot::new(diameter_bounds(self.g, self.root), now);
        let value = slot.value;
        self.diam = Some(slot);
        value
    }

    /// The full-shortcut artifact (constructed on first access via the
    /// session backend).
    ///
    /// # Panics
    ///
    /// Panics if the session has no partition and no fresh provided
    /// shortcut. Use [`try_full_artifact`](Self::try_full_artifact) for
    /// the fallible form.
    pub fn full_artifact(&mut self) -> &FullArtifact {
        self.try_full_artifact().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`full_artifact`](Self::full_artifact) with the missing partition
    /// reported as [`SessionError::NoPartition`] instead of a panic. A
    /// caller-provided shortcut whose cached slot is still fresh is served
    /// without requiring a partition, exactly like the panicking path.
    pub fn try_full_artifact(&mut self) -> Result<&FullArtifact, SessionError> {
        let fresh = self
            .full
            .as_ref()
            .is_some_and(|s| s.fresh(&self.epochs, deps::SHORTCUT));
        if !fresh && self.partition.is_none() {
            return Err(SessionError::NoPartition);
        }
        self.ensure_full();
        Ok(&self.full.as_ref().expect("just built").value)
    }

    /// The served full shortcut.
    pub fn shortcut(&mut self) -> &Shortcut {
        &self.full_artifact().shortcut
    }

    /// [`shortcut`](Self::shortcut) with the missing partition reported as
    /// [`SessionError::NoPartition`] instead of a panic.
    pub fn try_shortcut(&mut self) -> Result<&Shortcut, SessionError> {
        self.try_full_artifact().map(|f| &f.shortcut)
    }

    /// Final `δ̂` of the doubling search (0 for provided shortcuts).
    pub fn delta_hat(&mut self) -> u32 {
        self.full_artifact().delta_hat
    }

    /// The densest dense-minor certificate collected during construction.
    pub fn witness(&mut self) -> Option<&MinorWitness> {
        self.ensure_full();
        self.full.as_ref().and_then(|f| f.value.witness.as_ref())
    }

    /// Simulated cost of constructing the cached full shortcut.
    pub fn construction_stats(&mut self) -> ConstructionStats {
        self.full_artifact().construction
    }

    /// Quality report of the full shortcut against the session tree and
    /// partition (measured once, cached; after
    /// [`reassign_parts`](Self::reassign_parts) only the touched parts'
    /// rows are re-measured).
    ///
    /// # Panics
    ///
    /// Panics if the session has no partition. Use
    /// [`try_quality`](Self::try_quality) for the fallible form.
    pub fn quality(&mut self) -> &QualityReport {
        self.try_quality().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`quality`](Self::quality) with the missing partition reported as
    /// [`SessionError::NoPartition`] instead of a panic.
    pub fn try_quality(&mut self) -> Result<&QualityReport, SessionError> {
        if self.partition.is_none() {
            return Err(SessionError::NoPartition);
        }
        self.ensure_quality();
        Ok(&self.quality.as_ref().expect("just ensured").value)
    }

    /// Shared handle to the cached quality report, if the session has a
    /// partition (measuring it on first use); `None` otherwise. Ops attach
    /// this to their [`OpReport`]s — every report shares one allocation
    /// instead of deep-cloning the O(k) per-part vectors per call.
    pub fn quality_shared(&mut self) -> Option<Arc<QualityReport>> {
        if self.partition.is_some() {
            self.ensure_quality();
            self.quality.as_ref().map(|s| s.value.clone())
        } else {
            None
        }
    }

    /// The per-op-type derived-artifact cache with the default dependency
    /// set [`deps::SHORTCUT`]: returns the artifact of type `T`, building
    /// it with `build` from the graph, partition, and cached full shortcut
    /// on first access and serving the same [`Arc`] afterwards.
    ///
    /// This is where ops park preprocessing that depends only on the
    /// session's shortcut-scoped artifacts — e.g. the partwise O(n + m)
    /// participation map, which the session previously rebuilt on every
    /// aggregate/gossip call. Keyed by [`TypeId`], so each artifact type
    /// has exactly one slot per session. The slot is wired into the
    /// artifact graph: mutating the partition (or any other declared
    /// dependency) invalidates it, and the next access rebuilds against
    /// the refreshed shortcut. Use
    /// [`op_artifact_with`](Self::op_artifact_with) to declare a different
    /// dependency set, or
    /// [`op_artifact_patched`](Self::op_artifact_patched) to refresh
    /// incrementally under part churn.
    ///
    /// # Panics
    ///
    /// Panics if the session has no partition (like every partition op).
    pub fn op_artifact<T, F>(&mut self, build: F) -> Arc<T>
    where
        T: Any + Send + Sync,
        F: FnOnce(&Graph, &Partition, &Shortcut) -> T,
    {
        self.op_artifact_with(deps::SHORTCUT, move |s| {
            s.prepare();
            build(
                s.g,
                s.partition.as_ref().expect(NO_PARTITION),
                &s.full.as_ref().expect("prepared").value.shortcut,
            )
        })
    }

    /// [`op_artifact`](Self::op_artifact) with an explicit dependency set
    /// and full session access in the builder: the artifact of type `T` is
    /// cached under the current epochs and served while every input in
    /// `deps` is unchanged; when one bumps, the slot is invalidated and
    /// `build` runs again.
    ///
    /// `build` may drive the session (e.g. call
    /// [`prepare`](Self::prepare) or read
    /// [`weights`](Self::weights)) but must not mutate inputs.
    pub fn op_artifact_with<T, F>(&mut self, deps: &'static [Input], build: F) -> Arc<T>
    where
        T: Any + Send + Sync,
        F: FnOnce(&mut ShortcutSession<'g>) -> T,
    {
        let key = TypeId::of::<T>();
        let now = self.epochs;
        if let Some(slot) = self.op_artifacts.get(&key) {
            if slot.stamp.agrees_on(&now, slot.deps) {
                self.stats.op_artifacts.hits += 1;
                return slot
                    .value
                    .clone()
                    .downcast::<T>()
                    .unwrap_or_else(|_| unreachable!("slot is keyed by this TypeId"));
            }
            self.op_artifacts.remove(&key);
            self.stats.op_artifacts.invalidations += 1;
        }
        let built = Arc::new(build(self));
        debug_assert_eq!(
            self.epochs, now,
            "op-artifact builders must not mutate session inputs"
        );
        self.stats.op_artifacts.builds += 1;
        self.op_artifacts.insert(
            key,
            OpSlot {
                value: built.clone(),
                stamp: now,
                deps,
            },
        );
        built
    }

    /// [`op_artifact_with`](Self::op_artifact_with) plus an incremental
    /// refresh path: when the cached artifact is stale *only* because of
    /// tracked [`reassign_parts`](Self::reassign_parts) churn, the session
    /// calls `patch(session, old, touched_parts)` instead of `build` —
    /// letting the op recompute just the touched parts' contribution
    /// (keyed off its cached value, e.g. the partwise participation map).
    ///
    /// `patch` runs after the session's own artifacts have been refreshed
    /// for the same churn (so [`shortcut_ref`](Self::shortcut_ref) inside
    /// `patch` sees the incrementally re-customized shortcut, in which
    /// untouched parts' edge lists are unchanged). A wholesale partition
    /// replacement, a pruned mutation log, or staleness in any other
    /// declared dependency falls back to `build`.
    pub fn op_artifact_patched<T, F, P>(
        &mut self,
        deps: &'static [Input],
        build: F,
        patch: P,
    ) -> Arc<T>
    where
        T: Any + Send + Sync,
        F: FnOnce(&mut ShortcutSession<'g>) -> T,
        P: FnOnce(&mut ShortcutSession<'g>, &T, &[PartId]) -> T,
    {
        let key = TypeId::of::<T>();
        let now = self.epochs;
        let cached = self.op_artifacts.get(&key).map(|s| (s.stamp, s.deps));
        if let Some((stamp, slot_deps)) = cached {
            if !stamp.agrees_on(&now, slot_deps) {
                // Patchable iff the only stale dependency is the partition
                // and every change since the stamp was a tracked
                // reassignment.
                let others: Vec<Input> = slot_deps
                    .iter()
                    .copied()
                    .filter(|&d| d != Input::Partition)
                    .collect();
                let touched = if stamp.agrees_on(&now, &others) {
                    self.parts_changed_since(stamp.partition)
                } else {
                    None
                };
                if let Some(touched) = touched {
                    let old = self
                        .op_artifacts
                        .remove(&key)
                        .expect("checked above")
                        .value
                        .downcast::<T>()
                        .unwrap_or_else(|_| unreachable!("slot is keyed by this TypeId"));
                    let patched = Arc::new(patch(self, &old, &touched));
                    self.stats.op_artifact_patches += 1;
                    self.op_artifacts.insert(
                        key,
                        OpSlot {
                            value: patched.clone(),
                            stamp: self.epochs,
                            deps,
                        },
                    );
                    return patched;
                }
            }
        }
        self.op_artifact_with(deps, build)
    }

    /// Ensures tree and full shortcut (and quality, when a partition
    /// exists) are built and fresh — the preparation step ops call once
    /// before taking shared references.
    pub fn prepare(&mut self) {
        self.ensure_tree();
        if self.partition.is_some() {
            self.ensure_full();
            self.ensure_quality();
        }
    }

    /// Shared reference to the cached shortcut.
    ///
    /// # Panics
    ///
    /// Panics if the artifact was not built yet (call
    /// [`prepare`](Self::prepare) or [`shortcut`](Self::shortcut) first),
    /// or if it went stale because an input was mutated since — references
    /// obtained before a mutation must be re-fetched through
    /// [`prepare`](Self::prepare). Use
    /// [`try_shortcut_ref`](Self::try_shortcut_ref) for the fallible form.
    pub fn shortcut_ref(&self) -> &Shortcut {
        self.try_shortcut_ref().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`shortcut_ref`](Self::shortcut_ref) with the misuse states as
    /// typed errors instead of panics: a never-built artifact is
    /// [`SessionError::NotPrepared`], a cached-but-stale one
    /// [`SessionError::Stale`]. A long-lived server uses this to turn a
    /// client racing its own mutation into a structured error response
    /// rather than a dead worker.
    pub fn try_shortcut_ref(&self) -> Result<&Shortcut, SessionError> {
        let slot = self.full.as_ref().ok_or(SessionError::NotPrepared {
            artifact: "shortcut",
        })?;
        if !slot.fresh(&self.epochs, deps::SHORTCUT) {
            return Err(SessionError::Stale {
                artifact: "shortcut",
            });
        }
        Ok(&slot.value.shortcut)
    }

    /// Shared reference to the cached tree.
    ///
    /// # Panics
    ///
    /// Panics like [`shortcut_ref`](Self::shortcut_ref). Use
    /// [`try_tree_ref`](Self::try_tree_ref) for the fallible form.
    pub fn tree_ref(&self) -> &RootedTree {
        self.try_tree_ref().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`tree_ref`](Self::tree_ref) with the misuse states as typed errors
    /// instead of panics, like [`try_shortcut_ref`](Self::try_shortcut_ref).
    pub fn try_tree_ref(&self) -> Result<&RootedTree, SessionError> {
        let slot = self
            .tree
            .as_ref()
            .ok_or(SessionError::NotPrepared { artifact: "tree" })?;
        if !slot.fresh(&self.epochs, deps::TREE) {
            return Err(SessionError::Stale { artifact: "tree" });
        }
        Ok(&slot.value)
    }

    /// The per-`δ̂` partial shortcut (one Theorem 3.1 sweep over all parts),
    /// constructed on first access and cached per `δ̂` (invalidated like
    /// the full shortcut when a declared dependency changes).
    ///
    /// # Panics
    ///
    /// Panics if `δ̂ = 0` or the session has no partition. Use
    /// [`try_partial`](Self::try_partial) for the fallible form.
    pub fn partial(&mut self, delta_hat: u32) -> &PartialArtifact {
        self.try_partial(delta_hat)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`partial`](Self::partial) with `δ̂ = 0` reported as
    /// [`SessionError::ZeroDeltaHat`] and a missing partition as
    /// [`SessionError::NoPartition`] instead of panics.
    pub fn try_partial(&mut self, delta_hat: u32) -> Result<&PartialArtifact, SessionError> {
        if delta_hat == 0 {
            return Err(SessionError::ZeroDeltaHat);
        }
        if self.partition.is_none() {
            return Err(SessionError::NoPartition);
        }
        let now = self.epochs;
        let stale = self
            .partials
            .get(&delta_hat)
            .is_some_and(|s| !s.fresh(&now, deps::SHORTCUT));
        if stale {
            self.partials.remove(&delta_hat);
            self.stats.partials.invalidations += 1;
        }
        if !self.partials.contains_key(&delta_hat) {
            let artifact = self.build_partial(delta_hat);
            self.stats.partials.builds += 1;
            self.partials.insert(delta_hat, Slot::new(artifact, now));
        } else {
            self.stats.partials.hits += 1;
        }
        Ok(&self.partials.get(&delta_hat).expect("just inserted").value)
    }

    /// Drives one operation over the cached artifacts. Equivalent to the
    /// named methods of the facade (`session.aggregate(..)`,
    /// `session.mst(..)`, …), which are extension-trait sugar over this.
    pub fn run<O: PartwiseOp>(&mut self, op: O) -> OpReport<O::Output> {
        op.run(self)
    }

    fn ensure_tree(&mut self) {
        let now = self.epochs;
        if let Some(slot) = &self.tree {
            if slot.fresh(&now, deps::TREE) {
                self.stats.tree.hits += 1;
                return;
            }
            self.stats.tree.invalidations += 1;
        }
        self.stats.tree.builds += 1;
        self.tree = Some(Slot::new(bfs::bfs_tree(self.g, self.root), now));
    }

    /// The union of parts touched by reassignments between partition epoch
    /// `since` and now, or `None` when the span contains a wholesale
    /// replacement or reaches past the bounded mutation log.
    fn parts_changed_since(&self, since: u64) -> Option<Vec<PartId>> {
        if since >= self.epochs.partition {
            return (since == self.epochs.partition).then(Vec::new);
        }
        let mut touched = BTreeSet::new();
        let mut expected = since + 1;
        for (epoch, delta) in &self.partition_log {
            if *epoch <= since {
                continue;
            }
            if *epoch != expected {
                return None; // entries below `expected` fell off the log
            }
            expected += 1;
            match delta {
                PartitionDelta::Wholesale => return None,
                PartitionDelta::Reassigned(parts) => touched.extend(parts.iter().copied()),
            }
        }
        (expected == self.epochs.partition + 1).then(|| touched.into_iter().collect())
    }

    fn log_partition_change(&mut self, delta: PartitionDelta) {
        self.partition_log.push_back((self.epochs.partition, delta));
        if self.partition_log.len() > PARTITION_LOG_CAP {
            self.partition_log.pop_front();
        }
    }

    fn ensure_full(&mut self) {
        let now = self.epochs;
        if let Some(slot) = &self.full {
            if slot.fresh(&now, deps::SHORTCUT) {
                self.stats.full.hits += 1;
                return;
            }
            let stamp = slot.stamp;
            let only_partition_moved =
                stamp.topology == now.topology && stamp.tree == now.tree && stamp.sim == now.sim;
            if only_partition_moved {
                if let Some(touched) = self.parts_changed_since(stamp.partition) {
                    // Non-empty: the slot is stale on the partition epoch,
                    // so at least one tracked reassignment happened.
                    self.recustomize(&touched);
                    return;
                }
            }
            self.stats.full.invalidations += 1;
            self.full = None;
        }
        let artifact = match self.backend.clone() {
            Backend::Centralized => {
                self.ensure_tree();
                let res = full_shortcut(
                    self.g,
                    &self.tree.as_ref().expect("ensured").value,
                    self.partition.as_ref().expect(NO_PARTITION),
                    &self.config.shortcut,
                );
                FullArtifact {
                    shortcut: res.shortcut,
                    delta_hat: res.delta_hat,
                    witness: res.best_witness,
                    construction: ConstructionStats::default(),
                }
            }
            Backend::Distributed(sim) => {
                let dist = DistConfig {
                    mode: DistMode::Exact,
                    sim,
                };
                self.full_from_dist(&dist)
            }
            Backend::Sketch(dist) => self.full_from_dist(&dist),
        };
        self.stats.full.builds += 1;
        self.full = Some(Slot::new(artifact, self.epochs));
    }

    /// Incremental re-customization: one mini doubling search over just
    /// the `touched` parts, splicing their `H_i` into the cached full
    /// shortcut and patching the cached quality report's touched rows.
    /// Runs the centralized sweep over the session tree regardless of
    /// backend (zero simulated rounds charged — see
    /// [`reassign_parts`](Self::reassign_parts)).
    fn recustomize(&mut self, touched: &[PartId]) {
        self.ensure_tree();
        let now = self.epochs;
        let mut slot = self
            .full
            .take()
            .expect("recustomize requires a cached full artifact");
        // Quality can only be patched in lockstep with the shortcut it was
        // measured on; a report from another artifact generation is
        // dropped and re-measured in full instead.
        let quality = match self.quality.take() {
            Some(q) if q.stamp.agrees_on(&slot.stamp, deps::SHORTCUT) => Some(q),
            Some(_) => {
                self.stats.quality.invalidations += 1;
                None
            }
            None => None,
        };
        {
            let tree = &self.tree.as_ref().expect("just ensured").value;
            let partition = self.partition.as_ref().expect(NO_PARTITION);
            let config = &self.config.shortcut;
            let full = &mut slot.value;
            debug_assert_eq!(full.shortcut.num_parts(), partition.num_parts());
            // Start where the cached construction ended: parts that were
            // servable at the final δ̂ before the move usually still are.
            let start = full.delta_hat.max(config.initial_delta_hat).max(1);
            let res = run_doubling_search(
                self.g.num_nodes(),
                partition.num_parts(),
                touched.to_vec(),
                start,
                |active, delta_hat| {
                    sweep_active(self.g, tree, partition, active, delta_hat, config)
                },
            );
            for &p in touched {
                full.shortcut
                    .set_edges(p, res.shortcut.edges_for(p).to_vec());
            }
            full.delta_hat = full.delta_hat.max(res.delta_hat);
            if let Some(w) = res.best_witness {
                let better = full
                    .witness
                    .as_ref()
                    .map(|b| w.density() > b.density())
                    .unwrap_or(true);
                if better {
                    full.witness = Some(w);
                }
            }
            if let Some(qslot) = quality {
                let rows = measure_parts(self.g, partition, &full.shortcut, touched);
                let mut q = (*qslot.value).clone();
                for (&p, row) in touched.iter().zip(rows) {
                    q.per_part[p.index()] = row;
                }
                q.max_blocks = q.per_part.iter().map(|p| p.blocks).max().unwrap_or(0);
                q.max_dilation_lower = q
                    .per_part
                    .iter()
                    .map(|p| p.dilation_lower)
                    .max()
                    .unwrap_or(0);
                q.max_dilation_upper = q
                    .per_part
                    .iter()
                    .map(|p| p.dilation_upper)
                    .max()
                    .unwrap_or(0);
                q.max_congestion = full.shortcut.max_congestion(self.g);
                q.tree_restricted = full.shortcut.is_tree_restricted(tree);
                self.quality = Some(Slot::new(Arc::new(q), now));
            }
        }
        slot.stamp = now;
        self.stats.recustomizations += 1;
        self.stats.recustomized_parts += touched.len() as u64;
        self.full = Some(slot);
    }

    fn ensure_quality(&mut self) {
        // May itself patch the quality report in lockstep with an
        // incremental re-customization.
        self.ensure_full();
        let now = self.epochs;
        if let Some(slot) = &self.quality {
            if slot.fresh(&now, deps::SHORTCUT) {
                self.stats.quality.hits += 1;
                return;
            }
            self.stats.quality.invalidations += 1;
            self.quality = None;
        }
        self.ensure_tree();
        let q = measure_quality(
            self.g,
            self.partition.as_ref().expect(NO_PARTITION),
            &self.tree.as_ref().expect("ensured").value,
            &self.full.as_ref().expect("ensured").value.shortcut,
        );
        self.stats.quality.builds += 1;
        self.quality = Some(Slot::new(Arc::new(q), now));
    }

    /// The distributed backends run the Theorem 1.5 protocol, whose first
    /// phase builds its *own* BFS tree from the root (the canonical
    /// min-id-parent rule). A provided tree is honored only if it IS that
    /// tree — otherwise the shortcut would be restricted to one tree while
    /// quality measurement and unicast routing use another, silently. Fail
    /// loudly instead.
    fn assert_provided_tree_is_canonical(&self) {
        if !self.tree_provided {
            return;
        }
        let provided = &self
            .tree
            .as_ref()
            .expect("provided tree stored at build")
            .value;
        let canonical = bfs::bfs_tree(self.g, self.root);
        for v in self.g.nodes() {
            assert!(
                provided.parent(v) == canonical.parent(v),
                "Backend::Distributed/Sketch construct over the canonical BFS tree of root \
                 {:?} (the simulated protocol builds it itself), but the provided tree \
                 differs at node {v:?} — use Backend::Centralized for non-BFS trees",
                self.root
            );
        }
    }

    fn full_from_dist(&mut self, dist: &DistConfig) -> FullArtifact {
        self.assert_provided_tree_is_canonical();
        let res = distributed_full_shortcut(
            self.g,
            self.root,
            self.partition.as_ref().expect(NO_PARTITION),
            &self.config.shortcut,
            dist,
        );
        FullArtifact {
            shortcut: res.shortcut,
            delta_hat: res.delta_hat,
            witness: res.best_witness,
            construction: ConstructionStats {
                rounds: res.rounds,
                messages: res.messages,
                bits: res.bits,
            },
        }
    }

    fn build_partial(&mut self, delta_hat: u32) -> PartialArtifact {
        match self.backend.clone() {
            Backend::Centralized => {
                self.ensure_tree();
                let outcome = partial_shortcut_or_witness(
                    self.g,
                    &self.tree.as_ref().expect("ensured").value,
                    self.partition.as_ref().expect(NO_PARTITION),
                    delta_hat,
                    &self.config.shortcut,
                );
                match outcome {
                    SweepOutcome::Shortcut(ps) => PartialArtifact {
                        shortcut: ps.shortcut,
                        served: ps.served,
                        case_one: true,
                        data: ps.data,
                        witness: None,
                        metrics_bfs: None,
                        metrics_detect: None,
                    },
                    SweepOutcome::DenseMinor { witness, data } => PartialArtifact {
                        shortcut: Shortcut::empty(self.partition().num_parts()),
                        served: Vec::new(),
                        case_one: false,
                        data,
                        witness,
                        metrics_bfs: None,
                        metrics_detect: None,
                    },
                }
            }
            Backend::Distributed(sim) => self.partial_from_dist(
                delta_hat,
                &DistConfig {
                    mode: DistMode::Exact,
                    sim,
                },
            ),
            Backend::Sketch(dist) => self.partial_from_dist(delta_hat, &dist),
        }
    }

    fn partial_from_dist(&mut self, delta_hat: u32, dist: &DistConfig) -> PartialArtifact {
        self.assert_provided_tree_is_canonical();
        let res = distributed_partial_shortcut(
            self.g,
            self.root,
            self.partition.as_ref().expect(NO_PARTITION),
            delta_hat,
            &self.config.shortcut,
            dist,
        );
        PartialArtifact {
            shortcut: res.shortcut,
            served: res.served,
            case_one: res.case_one,
            data: res.data,
            witness: None,
            metrics_bfs: Some(res.metrics_bfs),
            metrics_detect: Some(res.metrics_shortcut),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]

    use super::*;
    use lcs_graph::gen;

    fn grid_session(side: usize) -> ShortcutSession<'static> {
        // Leak the graph for 'static test sessions (tests only).
        let g = Box::leak(Box::new(gen::grid(side, side)));
        Session::on(g)
            .tree(TreeSource::Bfs(NodeId(0)))
            .partition(gen::rows_of_grid(side, side))
            .build()
            .expect("grid rows are valid parts")
    }

    #[test]
    fn builder_is_lazy_and_artifacts_cache() {
        let mut s = grid_session(8);
        assert_eq!(s.constructions(), 0, "build() must not construct");
        let dh = s.delta_hat();
        assert_eq!(dh, 1);
        assert_eq!(s.constructions(), 1);
        // Every later access is served from the cache.
        let edges_a = s.shortcut().total_edges();
        let edges_b = s.shortcut().total_edges();
        assert_eq!(edges_a, edges_b);
        let _ = s.quality();
        let _ = s.witness();
        assert_eq!(s.constructions(), 1);
        assert_eq!(s.cache_stats().full.builds, 1);
        assert!(s.cache_stats().full.hits >= 3);
        assert_eq!(s.cache_stats().full.invalidations, 0);
    }

    #[test]
    fn tree_and_diameter_are_cached() {
        let mut s = grid_session(6);
        let d1 = s.tree().depth_of_tree();
        let d2 = s.tree().depth_of_tree();
        assert_eq!(d1, d2);
        let db = s.diameter();
        assert!(db.lower <= db.upper);
        assert_eq!(s.constructions(), 0, "tree/diameter are not constructions");
        assert_eq!(s.cache_stats().tree.builds, 1);
        assert_eq!(s.cache_stats().tree.hits, 1);
        assert_eq!(s.cache_stats().diameter.builds, 1);
    }

    #[test]
    fn partials_cache_per_delta_hat() {
        let mut s = grid_session(8);
        let served1 = s.partial(1).served.len();
        assert_eq!(s.constructions(), 1);
        let served1_again = s.partial(1).served.len();
        assert_eq!(served1, served1_again);
        assert_eq!(s.constructions(), 1, "same δ̂ reuses the cache");
        let _ = s.partial(2);
        assert_eq!(s.constructions(), 2, "a new δ̂ constructs once");
        assert_eq!(s.cache_stats().partials.builds, 2);
        assert_eq!(s.cache_stats().partials.hits, 1);
    }

    #[test]
    fn distributed_backend_matches_centralized_shortcut() {
        let g = gen::grid(8, 8);
        let parts = gen::rows_of_grid(8, 8);
        let mut central = Session::on(&g)
            .partition(parts.clone())
            .backend(Backend::Centralized)
            .build()
            .unwrap();
        let mut dist = Session::on(&g)
            .partition(parts)
            .backend(Backend::Distributed(SimConfig::default()))
            .build()
            .unwrap();
        // Exact streaming reproduces the centralized construction.
        assert_eq!(central.shortcut(), dist.shortcut());
        assert_eq!(central.delta_hat(), dist.delta_hat());
        // The distributed backend charges simulated construction cost.
        let stats = dist.construction_stats();
        assert!(stats.rounds > 0 && stats.messages > 0 && stats.bits > 0);
        assert_eq!(central.construction_stats(), ConstructionStats::default());
    }

    #[test]
    fn provided_shortcut_is_served_without_construction() {
        let g = gen::grid(6, 6);
        let parts = gen::rows_of_grid(6, 6);
        let mut built = Session::on(&g).partition(parts.clone()).build().unwrap();
        let sc = built.shortcut().clone();
        let mut served = Session::on(&g)
            .partition(parts)
            .shortcut(sc.clone())
            .build()
            .unwrap();
        assert_eq!(served.shortcut(), &sc);
        assert_eq!(served.delta_hat(), 0, "provided shortcuts have unknown δ̂");
        assert_eq!(served.constructions(), 0);
    }

    #[test]
    fn distributed_backend_accepts_the_canonical_provided_tree() {
        let g = gen::grid(5, 5);
        let tree = bfs::bfs_tree(&g, NodeId(3));
        let mut s = Session::on(&g)
            .tree(TreeSource::Provided(tree))
            .partition(gen::rows_of_grid(5, 5))
            .backend(Backend::Distributed(SimConfig::default()))
            .build()
            .unwrap();
        let _ = s.shortcut(); // the provided tree IS the protocol's tree
        assert_eq!(s.constructions(), 1);
    }

    #[test]
    #[should_panic(expected = "differs at node")]
    fn distributed_backend_rejects_non_canonical_trees() {
        // On a cycle, the path tree (parent(i) = i-1) is a valid spanning
        // tree rooted at 0 but NOT the BFS tree (BFS splits both ways).
        let g = gen::cycle(6);
        let n = 6u32;
        let parent: Vec<_> = (0..n)
            .map(|i| {
                (i > 0).then(|| {
                    let p = NodeId(i - 1);
                    let e = g.find_edge(p, NodeId(i)).expect("cycle edge");
                    (p, e)
                })
            })
            .collect();
        let dist: Vec<u32> = (0..n).collect();
        let order: Vec<NodeId> = (0..n).map(NodeId).collect();
        let path_tree = lcs_graph::RootedTree::from_parents(&g, NodeId(0), &parent, &dist, &order);
        let mut sess = Session::on(&g)
            .tree(TreeSource::Provided(path_tree))
            .partition(vec![vec![NodeId(0), NodeId(1)]])
            .backend(Backend::Distributed(SimConfig::default()))
            .build()
            .unwrap();
        let _ = sess.shortcut();
    }

    #[test]
    fn provided_tree_sets_the_root() {
        let g = gen::grid(5, 5);
        let tree = bfs::bfs_tree(&g, NodeId(12));
        let mut s = Session::on(&g)
            .tree(TreeSource::Provided(tree.clone()))
            .build()
            .unwrap();
        assert_eq!(s.root(), NodeId(12));
        assert_eq!(s.tree().parent(NodeId(0)), tree.parent(NodeId(0)));
    }

    #[test]
    #[should_panic(expected = "no partition")]
    fn partition_ops_demand_a_partition() {
        let g = gen::path(4);
        let mut s = Session::on(&g).build().unwrap();
        let _ = s.shortcut();
    }

    #[test]
    fn op_artifacts_build_once_and_share_one_allocation() {
        struct Expensive(usize);
        let mut s = grid_session(6);
        let mut builds = 0;
        let a = s.op_artifact(|g, partition, shortcut| {
            builds += 1;
            Expensive(g.num_nodes() + partition.num_parts() + shortcut.num_parts())
        });
        let b = s.op_artifact(|_, _, _| -> Expensive { unreachable!("cached after first build") });
        assert_eq!(builds, 1);
        assert!(Arc::ptr_eq(&a, &b), "one shared allocation");
        assert_eq!(a.0, 36 + 6 + 6);
        // Accessing the artifact forced the full shortcut exactly once.
        assert_eq!(s.constructions(), 1);
        assert_eq!(s.cache_stats().op_artifacts.builds, 1);
        assert_eq!(s.cache_stats().op_artifacts.hits, 1);
    }

    #[test]
    fn op_artifacts_are_invalidated_by_partition_changes() {
        // The pre-epoch cache served stale op artifacts across partition
        // changes; pin the fix.
        struct PartCount(usize);
        let mut s = grid_session(4);
        let a = s.op_artifact(|_, partition, _| PartCount(partition.num_parts()));
        assert_eq!(a.0, 4);
        let two_rows: Vec<Vec<NodeId>> =
            vec![(0..8).map(NodeId).collect(), (8..16).map(NodeId).collect()];
        s.set_partition(two_rows).unwrap();
        let b = s.op_artifact(|_, partition, _| PartCount(partition.num_parts()));
        assert_eq!(b.0, 2, "artifact must rebuild against the new partition");
        assert_eq!(s.cache_stats().op_artifacts.builds, 2);
        assert_eq!(s.cache_stats().op_artifacts.invalidations, 1);
    }

    #[test]
    fn op_artifacts_respect_declared_dependency_sets() {
        struct TreeScoped(#[allow(dead_code)] u32);
        let mut s = grid_session(4);
        let a = s.op_artifact_with(deps::TREE, |s| TreeScoped(s.tree().depth_of_tree()));
        s.set_partition(gen::rows_of_grid(4, 4)).unwrap();
        let b = s.op_artifact_with(deps::TREE, |_| -> TreeScoped {
            unreachable!("tree-scoped artifacts survive partition churn")
        });
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn reassign_recustomizes_incrementally() {
        let mut s = grid_session(8);
        let _ = s.quality();
        assert_eq!(s.cache_stats().full.builds, 1);
        // Move the first node of row 1 into row 0's part: both stay
        // connected (rows are paths; (1,0)-(0,0) is a grid edge).
        let touched = s
            .reassign_parts(&[(NodeId(8), PartId(0))])
            .expect("move keeps both parts connected");
        assert_eq!(touched, vec![PartId(0), PartId(1)]);
        assert_eq!(s.partition().part_of(NodeId(8)), Some(PartId(0)));
        let q_patched = s.quality().clone();
        // No full rebuild happened — one incremental re-customization did.
        assert_eq!(s.cache_stats().full.builds, 1);
        assert_eq!(s.cache_stats().full.invalidations, 0);
        assert_eq!(s.cache_stats().recustomizations, 1);
        assert_eq!(s.cache_stats().recustomized_parts, 2);
        // The patched report is exactly what a fresh measurement of the
        // mutated session's shortcut yields.
        let tree = s.tree().clone();
        let fresh = measure_quality(s.graph(), s.partition(), &tree, s.shortcut_ref());
        assert_eq!(q_patched, fresh);
        assert!(q_patched.all_connected());
    }

    #[test]
    fn repeated_reassignments_accumulate_into_one_patch() {
        let mut s = grid_session(8);
        let _ = s.shortcut();
        // Two mutations before the next artifact access: the refresh must
        // cover the union of touched parts.
        s.reassign_parts(&[(NodeId(8), PartId(0))]).unwrap();
        s.reassign_parts(&[(NodeId(63), PartId(6))]).unwrap();
        let _ = s.quality();
        assert_eq!(s.cache_stats().full.builds, 1);
        assert_eq!(s.cache_stats().recustomizations, 1);
        assert_eq!(s.cache_stats().recustomized_parts, 4);
        let tree = s.tree().clone();
        let fresh = measure_quality(s.graph(), s.partition(), &tree, s.shortcut_ref());
        assert_eq!(s.quality(), &fresh);
    }

    #[test]
    fn reassign_error_leaves_the_session_untouched() {
        let mut s = grid_session(6);
        let _ = s.shortcut();
        let before = s.epochs();
        // Moving an interior row node away would disconnect its row.
        let err = s.reassign_parts(&[(NodeId(9), PartId(0))]).unwrap_err();
        assert!(matches!(err, PartitionError::Disconnected(1)));
        assert_eq!(s.epochs(), before, "failed mutations must not bump epochs");
        assert_eq!(s.partition().part_of(NodeId(9)), Some(PartId(1)));
        let _ = s.shortcut();
        assert_eq!(s.cache_stats().full.builds, 1);
    }

    #[test]
    fn noop_reassignment_is_free() {
        let mut s = grid_session(6);
        let _ = s.shortcut();
        let before = s.epochs();
        let touched = s.reassign_parts(&[(NodeId(7), PartId(1))]).unwrap();
        assert!(touched.is_empty(), "node already in its target part");
        assert_eq!(s.epochs(), before);
    }

    #[test]
    fn set_partition_invalidates_wholesale() {
        let mut s = grid_session(6);
        let _ = s.quality();
        assert_eq!(s.cache_stats().full.builds, 1);
        s.set_partition(gen::rows_of_grid(6, 6)).unwrap();
        let _ = s.quality();
        assert_eq!(s.cache_stats().full.builds, 2);
        assert_eq!(s.cache_stats().full.invalidations, 1);
        assert_eq!(s.cache_stats().quality.builds, 2);
        assert_eq!(s.cache_stats().recustomizations, 0);
    }

    #[test]
    fn config_mut_bumps_the_sim_epoch() {
        let mut s = grid_session(6);
        let _ = s.shortcut();
        let _ = s.config_mut(); // conservative: any access may change knobs
        let _ = s.shortcut();
        assert_eq!(s.cache_stats().full.builds, 2);
        assert_eq!(s.cache_stats().full.invalidations, 1);
    }

    #[test]
    fn weights_input_is_epoch_tracked() {
        struct TotalWeight(u64);
        let g = gen::grid(4, 4);
        let mut s = Session::on(&g)
            .partition(gen::rows_of_grid(4, 4))
            .weights(EdgeWeights::unit(&g))
            .build()
            .unwrap();
        let before = s.epochs();
        // Re-setting equal weights is a no-op.
        s.set_weights(EdgeWeights::unit(&g));
        assert_eq!(s.epochs(), before);
        let a = s.op_artifact_with(deps::WEIGHTED, |s| {
            TotalWeight(s.weights().total(s.graph().edges().map(|e| e.id)))
        });
        assert_eq!(a.0, g.num_edges() as u64);
        // Weight-scoped artifacts survive partition churn...
        s.set_partition(gen::rows_of_grid(4, 4)).unwrap();
        let b = s.op_artifact_with(deps::WEIGHTED, |_| -> TotalWeight {
            unreachable!("weight-scoped artifacts ignore the partition epoch")
        });
        assert!(Arc::ptr_eq(&a, &b));
        // ...but not weight updates.
        s.update_weights(&[(EdgeId(0), 11)]);
        let c = s.op_artifact_with(deps::WEIGHTED, |s| {
            TotalWeight(s.weights().total(s.graph().edges().map(|e| e.id)))
        });
        assert_eq!(c.0, g.num_edges() as u64 + 10);
    }

    #[test]
    fn op_artifact_patched_takes_the_incremental_path() {
        /// Tracks which parts were patched.
        struct EdgesPerPart(Vec<usize>);
        fn build(s: &mut ShortcutSession<'_>) -> EdgesPerPart {
            s.prepare();
            let sc = s.shortcut_ref();
            EdgesPerPart(
                (0..sc.num_parts())
                    .map(|p| sc.edges_for(PartId(p as u32)).len())
                    .collect(),
            )
        }
        let mut s = grid_session(8);
        let a = s.op_artifact_patched(deps::SHORTCUT, build, |_, _, _| {
            unreachable!("first access builds")
        });
        s.reassign_parts(&[(NodeId(8), PartId(0))]).unwrap();
        let b = s.op_artifact_patched(
            deps::SHORTCUT,
            |_| -> EdgesPerPart { unreachable!("tracked churn must patch, not rebuild") },
            |s, old, touched| {
                s.prepare();
                let sc = s.shortcut_ref();
                let mut v = old.0.clone();
                for &p in touched {
                    v[p.index()] = sc.edges_for(p).len();
                }
                EdgesPerPart(v)
            },
        );
        assert_eq!(b.0, build(&mut s).0, "patched == rebuilt from scratch");
        assert_eq!(s.cache_stats().op_artifact_patches, 1);
        // A wholesale replacement falls back to build.
        s.set_partition(gen::rows_of_grid(8, 8)).unwrap();
        let c = s.op_artifact_patched(deps::SHORTCUT, build, |_, _, _| {
            unreachable!("wholesale changes cannot be patched")
        });
        assert_eq!(c.0.len(), 8);
        drop(a);
    }

    #[test]
    fn quality_is_shared_not_cloned() {
        let mut s = grid_session(6);
        let a = s.quality_shared().expect("session has a partition");
        let b = s.quality_shared().expect("session has a partition");
        assert!(Arc::ptr_eq(&a, &b), "reports share the cached allocation");
        assert_eq!(s.constructions(), 1);
    }

    #[test]
    fn constructions_wrapper_matches_cache_stats() {
        let mut s = grid_session(8);
        let _ = s.shortcut();
        let _ = s.partial(1);
        let _ = s.partial(2);
        assert_eq!(
            s.constructions() as u64,
            s.cache_stats().full.builds + s.cache_stats().partials.builds
        );
        assert_eq!(s.constructions(), 3);
    }

    #[test]
    fn config_sim_overrides_resolve() {
        let mut cfg = SessionConfig::default();
        assert_eq!(cfg.aggregate_sim(), cfg.sim);
        let over = SimConfig {
            threads: 4,
            ..SimConfig::default()
        };
        cfg.unicast.sim = Some(over);
        assert_eq!(cfg.unicast_sim(), over);
        assert_eq!(cfg.mst_sim(), cfg.sim);
        assert_eq!(cfg.mincut_sim(), cfg.sim);
    }

    #[test]
    fn try_refs_report_lifecycle_states() {
        let mut s = grid_session(5);
        // Never prepared: both shared-reference accessors are NotPrepared.
        assert_eq!(
            s.try_shortcut_ref().unwrap_err(),
            SessionError::NotPrepared {
                artifact: "shortcut"
            }
        );
        assert_eq!(
            s.try_tree_ref().unwrap_err(),
            SessionError::NotPrepared { artifact: "tree" }
        );
        s.prepare();
        assert!(s.try_shortcut_ref().is_ok());
        assert!(s.try_tree_ref().is_ok());
        // Partition churn stales the shortcut (the tree does not depend on
        // the partition, so it stays fresh).
        s.reassign_parts(&[(NodeId(0), PartId(1))])
            .expect("row move keeps parts connected");
        assert_eq!(
            s.try_shortcut_ref().unwrap_err(),
            SessionError::Stale {
                artifact: "shortcut"
            }
        );
        assert!(s.try_tree_ref().is_ok());
        s.prepare();
        assert!(s.try_shortcut_ref().is_ok());
    }

    #[test]
    #[should_panic(expected = "shortcut stale — an input changed since prepare()")]
    fn shortcut_ref_panic_message_is_unchanged() {
        let mut s = grid_session(5);
        s.prepare();
        s.reassign_parts(&[(NodeId(0), PartId(1))])
            .expect("row move keeps parts connected");
        let _ = s.shortcut_ref();
    }

    #[test]
    fn try_accessors_report_missing_inputs() {
        let g = gen::path(4);
        let mut s = Session::on(&g).build().unwrap();
        assert_eq!(s.try_partition().unwrap_err(), SessionError::NoPartition);
        assert_eq!(s.try_weights().unwrap_err(), SessionError::NoWeights);
        assert_eq!(s.try_quality().unwrap_err(), SessionError::NoPartition);
        assert_eq!(
            s.try_full_artifact().unwrap_err(),
            SessionError::NoPartition
        );
        assert_eq!(s.try_partial(1).unwrap_err(), SessionError::NoPartition);
        assert_eq!(
            s.try_update_weights(&[(EdgeId(0), 2)]).unwrap_err(),
            SessionError::NoWeights
        );
    }

    #[test]
    fn try_partial_rejects_zero_delta_hat() {
        let mut s = grid_session(4);
        assert_eq!(s.try_partial(0).unwrap_err(), SessionError::ZeroDeltaHat);
        assert!(s.try_partial(1).is_ok());
    }

    #[test]
    fn try_update_weights_validates_edges_atomically() {
        let mut s = grid_session(4);
        let m = s.graph().num_edges();
        s.set_weights(EdgeWeights::unit(s.graph()));
        let before = s.epochs();
        let err = s
            .try_update_weights(&[(EdgeId(0), 7), (EdgeId(m as u32), 9)])
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::EdgeOutOfRange {
                edge: EdgeId(m as u32),
                num_edges: m
            }
        );
        // Rejected updates leave weights and epochs untouched.
        assert_eq!(s.epochs(), before);
        assert_eq!(s.weights().weight(EdgeId(0)), 1);
        s.try_update_weights(&[(EdgeId(0), 7)]).expect("in range");
        assert_eq!(s.weights().weight(EdgeId(0)), 7);
    }

    #[test]
    fn try_set_weights_validates_length() {
        let mut s = grid_session(4);
        let g2 = gen::path(3);
        let err = s.try_set_weights(EdgeWeights::unit(&g2)).unwrap_err();
        assert_eq!(
            err,
            SessionError::WeightCountMismatch {
                got: 2,
                expected: s.graph().num_edges()
            }
        );
        assert!(
            s.try_weights().is_err(),
            "rejected weights are not installed"
        );
    }

    #[test]
    fn try_reassign_parts_reports_typed_errors() {
        let mut s = grid_session(4);
        let parts = s.partition().num_parts();
        // Target part out of range: typed error instead of the panic the
        // legacy `reassign_parts` keeps.
        let err = s
            .try_reassign_parts(&[(NodeId(0), PartId(parts as u32))])
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::PartOutOfRange {
                part: PartId(parts as u32),
                num_parts: parts
            }
        );
        // Node out of range flows through as a wrapped PartitionError.
        let n = s.graph().num_nodes();
        let err = s
            .try_reassign_parts(&[(NodeId(n as u32), PartId(0))])
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::Partition(PartitionError::OutOfRange(NodeId(n as u32)))
        );
        // And the happy path still reassigns.
        let touched = s
            .try_reassign_parts(&[(NodeId(0), PartId(1))])
            .expect("row move keeps parts connected");
        assert_eq!(touched.len(), 2);
    }

    #[test]
    fn session_error_display_matches_legacy_messages() {
        assert_eq!(SessionError::NoPartition.to_string(), NO_PARTITION);
        assert_eq!(SessionError::NoWeights.to_string(), NO_WEIGHTS);
        assert_eq!(
            SessionError::NotPrepared {
                artifact: "shortcut"
            }
            .to_string(),
            "shortcut not prepared — call prepare() first"
        );
        assert_eq!(
            SessionError::Stale { artifact: "tree" }.to_string(),
            "tree stale — an input changed since prepare(); call prepare() again"
        );
        assert_eq!(
            SessionError::ZeroDeltaHat.to_string(),
            "δ̂ must be at least 1"
        );
    }
}
