//! The `ShortcutSession` facade: build once, serve many operations.
//!
//! The whole point of the shortcut framework (and of this paper) is that
//! one object — the shortcut — is *prepared once* for a topology and then
//! *served* to many part-wise operations: aggregation, gossip, unicast
//! routing, MST, connectivity, min-cut. This module is the API that says
//! so. A [`ShortcutSession`] is built via the [`Session`] builder:
//!
//! ```
//! use lcs_core::session::{Backend, Session, TreeSource};
//! use lcs_graph::{gen, NodeId};
//!
//! let g = gen::grid(8, 8);
//! let mut session = Session::on(&g)
//!     .tree(TreeSource::Bfs(NodeId(0)))
//!     .partition(gen::rows_of_grid(8, 8))
//!     .backend(Backend::Centralized)
//!     .build()?;
//! // Artifacts are computed lazily and cached: the first access constructs,
//! // every later access reuses.
//! let delta_hat = session.delta_hat();
//! assert_eq!(session.constructions(), 1);
//! let _ = session.shortcut(); // cached — no second construction
//! assert_eq!(session.constructions(), 1);
//! # Ok::<(), lcs_core::PartitionError>(())
//! ```
//!
//! The session lazily computes and caches the BFS tree, diameter bounds,
//! the full shortcut (with quality report and dense-minor certificate),
//! and per-`δ̂` partial shortcuts, over one of three pluggable backends:
//!
//! * [`Backend::Centralized`] — the Theorem 1.2 construction in plain Rust,
//! * [`Backend::Distributed`] — the Theorem 1.5 exact-streaming protocol on
//!   the CONGEST simulator,
//! * [`Backend::Sketch`] — Theorem 1.5 with KMV-sketch detection.
//!
//! Operations plug in through the [`PartwiseOp`] trait (implemented by
//! `lcs_partwise` and `lcs_algos`; the umbrella crate's `facade` module
//! re-exports the method-call surface `session.aggregate(..)`,
//! `session.mst(..)`, …). Every operation returns a uniform [`OpReport`].
//! All knobs live in one serde-able [`SessionConfig`] with per-op
//! overrides.

use crate::dist::{distributed_full_shortcut, distributed_partial_shortcut, DistConfig, DistMode};
use crate::{
    full_shortcut, measure_quality, partial_shortcut_or_witness, Partition, PartitionError,
    QualityReport, Shortcut, ShortcutConfig, SweepData, SweepOutcome,
};
use lcs_congest::{RunMetrics, SimConfig};
use lcs_graph::diameter::{diameter_bounds, DiameterBounds};
use lcs_graph::minor::MinorWitness;
use lcs_graph::{bfs, Graph, NodeId, PartId, RootedTree};
use serde::{Deserialize, Serialize};
use std::any::{Any, TypeId};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Where the session's spanning tree comes from.
#[derive(Clone, Debug)]
pub enum TreeSource {
    /// Run BFS from this root (the canonical min-id-parent rule, identical
    /// to what the distributed BFS protocol builds).
    Bfs(NodeId),
    /// Use a caller-provided rooted tree (e.g. deserialized from a prior
    /// run, or a non-BFS tree for experiments). Note: the distributed
    /// backends run the Theorem 1.5 protocol, which builds its own BFS
    /// tree — they accept a provided tree only if it equals that canonical
    /// tree (asserted at construction time); arbitrary trees require
    /// [`Backend::Centralized`].
    Provided(RootedTree),
}

/// The execution backend shortcut construction runs on.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Backend {
    /// Centralized Theorem 1.2 construction (no simulated rounds charged).
    Centralized,
    /// Distributed Theorem 1.5 construction with exact set streaming on the
    /// CONGEST simulator, using this simulator configuration. Reproduces
    /// the centralized cut set edge-for-edge.
    Distributed(SimConfig),
    /// Distributed Theorem 1.5 construction with the given detection
    /// configuration — typically [`DistMode::Sketch`], which caps per-edge
    /// traffic at `t + 1` messages and makes `n = 10⁵` affordable.
    Sketch(DistConfig),
}

/// Per-op overrides for leader-based aggregation (absorbs the legacy
/// `PartwiseConfig` knobs).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AggregateOpts {
    /// Leaders delay their start uniformly in `[0, delay_range)` rounds;
    /// `0` disables the random-delays smoothing.
    pub delay_range: u32,
    /// Seed for the delays.
    pub seed: u64,
    /// Simulator override for this op; `None` uses [`SessionConfig::sim`].
    pub sim: Option<SimConfig>,
}

impl Default for AggregateOpts {
    fn default() -> Self {
        AggregateOpts {
            delay_range: 0,
            seed: 0xde1af,
            sim: None,
        }
    }
}

/// Per-op overrides for multi-unicast routing (absorbs the legacy
/// `UnicastConfig` knobs).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct UnicastOpts {
    /// Packets start after a uniform random delay in `[0, delay_range)`.
    pub delay_range: u32,
    /// Seed for delays and queue priorities.
    pub seed: u64,
    /// Simulator override for this op; `None` uses [`SessionConfig::sim`].
    pub sim: Option<SimConfig>,
}

impl Default for UnicastOpts {
    fn default() -> Self {
        UnicastOpts {
            delay_range: 0,
            seed: 0x0417,
            sim: None,
        }
    }
}

/// Per-op overrides for Boruvka MST / connectivity (absorbs the legacy
/// `BoruvkaConfig` knobs; the shortcut provider is derived from the
/// session's [`Backend`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MstOpts {
    /// Seed for the merge coin flips.
    pub seed: u64,
    /// Safety cap on phases; `None` = `4·log₂ n + 16`.
    pub max_phases: Option<usize>,
    /// Skip shortcutting fragments of at most `2D + 1` nodes (their own
    /// diameter already meets the dilation bound).
    pub skip_small_fragments: bool,
    /// Simulator override for this op; `None` uses [`SessionConfig::sim`].
    pub sim: Option<SimConfig>,
}

impl Default for MstOpts {
    fn default() -> Self {
        MstOpts {
            seed: 0xb0_aa_12,
            max_phases: None,
            skip_small_fragments: true,
            sim: None,
        }
    }
}

/// Per-op overrides for the min-cut approximation (absorbs the legacy
/// `MincutConfig` knobs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MincutOpts {
    /// Number of trees to pack; `None` = `min(min_degree, 2·⌈ln n⌉ + 4)`.
    pub trees: Option<usize>,
    /// Simulator override for this op; `None` uses [`SessionConfig::sim`].
    pub sim: Option<SimConfig>,
}

/// Every knob of the facade in one serde-able struct: shortcut-construction
/// parameters, the session-wide simulator configuration, and per-op
/// override blocks. This collapses the legacy `PartwiseConfig` /
/// `UnicastConfig` / `BoruvkaConfig` / `MincutConfig` constellation into a
/// single value a service can load from disk.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Theorem 3.1 construction constants and witness policy.
    pub shortcut: ShortcutConfig,
    /// Simulator settings every op inherits (ops force the queue mode they
    /// need; [`SimConfig::threads`] selects the sharded executor and
    /// [`SimConfig::message_packing`] the multi-value packing factor —
    /// `k > 1` coalesces burst sends into multi-value CONGEST messages,
    /// cutting rounds on streaming workloads like the sketch construction
    /// while leaving every result bit-identical).
    pub sim: SimConfig,
    /// Aggregation overrides.
    pub aggregate: AggregateOpts,
    /// Unicast overrides.
    pub unicast: UnicastOpts,
    /// MST / connectivity overrides.
    pub mst: MstOpts,
    /// Min-cut overrides.
    pub mincut: MincutOpts,
}

impl SessionConfig {
    /// The simulator configuration for aggregation/gossip ops.
    pub fn aggregate_sim(&self) -> SimConfig {
        self.aggregate.sim.unwrap_or(self.sim)
    }

    /// The simulator configuration for unicast routing.
    pub fn unicast_sim(&self) -> SimConfig {
        self.unicast.sim.unwrap_or(self.sim)
    }

    /// The simulator configuration for MST / connectivity.
    pub fn mst_sim(&self) -> SimConfig {
        self.mst.sim.unwrap_or(self.sim)
    }

    /// The simulator configuration for min-cut.
    pub fn mincut_sim(&self) -> SimConfig {
        self.mincut.sim.unwrap_or(self.sim)
    }
}

/// Simulated cost of constructing the session's cached artifacts (zero for
/// the centralized backend, which charges no simulated rounds).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstructionStats {
    /// Total simulated rounds.
    pub rounds: u64,
    /// Total simulated messages.
    pub messages: u64,
    /// Total simulated bits.
    pub bits: u64,
}

/// The cached full-shortcut artifact (Theorem 1.2 / 1.5 output).
#[derive(Clone, Debug)]
pub struct FullArtifact {
    /// The union shortcut serving every part.
    pub shortcut: Shortcut,
    /// Final `δ̂` of the doubling search (0 for a caller-provided shortcut,
    /// whose construction parameters are unknown).
    pub delta_hat: u32,
    /// Densest dense-minor certificate from failed sweeps, if any.
    pub witness: Option<MinorWitness>,
    /// Simulated construction cost (zero for centralized / provided).
    pub construction: ConstructionStats,
}

/// The cached per-`δ̂` partial-shortcut artifact (one Theorem 3.1 sweep).
#[derive(Clone, Debug)]
pub struct PartialArtifact {
    /// The assembled partial shortcut (empty edge lists for unserved
    /// parts).
    pub shortcut: Shortcut,
    /// Parts served by the sweep, sorted.
    pub served: Vec<PartId>,
    /// Whether at least half the parts were served (Case (I)).
    pub case_one: bool,
    /// The sweep bookkeeping (cut set with true crossing loads, thresholds,
    /// `B`-degrees).
    pub data: SweepData,
    /// Case (II) certificate, when the backend extracts one (centralized
    /// only).
    pub witness: Option<MinorWitness>,
    /// BFS-phase metrics (distributed backends only).
    pub metrics_bfs: Option<RunMetrics>,
    /// Detection-phase metrics (distributed backends only).
    pub metrics_detect: Option<RunMetrics>,
}

/// The uniform result wrapper every session operation returns: the op's
/// typed result plus the simulated cost and the execution configuration it
/// was measured under.
#[derive(Clone, Debug)]
pub struct OpReport<T> {
    /// The operation's own outcome (aggregates, routed packets, MST
    /// edges, …).
    pub result: T,
    /// Simulated rounds of the operation (construction rounds of cached
    /// artifacts are *not* re-charged — that is the point of the session).
    pub rounds: u64,
    /// Simulated messages.
    pub messages: u64,
    /// Simulated bits (id-aware accounting).
    pub bits: u64,
    /// Quality of the served shortcut, when the op ran over the session's
    /// partition (`None` for fragment-based ops like MST, whose partitions
    /// change per phase). Shared via [`Arc`] with the session's cache — the
    /// report is measured once per session and every `OpReport` holds the
    /// same allocation instead of a per-call deep clone of its O(k)
    /// per-part vectors.
    pub quality: Option<Arc<QualityReport>>,
    /// Worker threads the simulator ran with.
    pub threads: usize,
    /// Per-message bandwidth limit (bits) the run enforced.
    pub bandwidth_bits: usize,
}

impl<T> OpReport<T> {
    /// Wraps an op result measured by a single simulator run.
    pub fn from_metrics(
        result: T,
        metrics: &RunMetrics,
        quality: Option<Arc<QualityReport>>,
    ) -> Self {
        OpReport {
            result,
            rounds: metrics.rounds,
            messages: metrics.messages,
            bits: metrics.bits,
            quality,
            threads: metrics.threads,
            bandwidth_bits: metrics.bandwidth_bits,
        }
    }

    /// Maps the result, keeping the measurements.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> OpReport<U> {
        OpReport {
            result: f(self.result),
            rounds: self.rounds,
            messages: self.messages,
            bits: self.bits,
            quality: self.quality,
            threads: self.threads,
            bandwidth_bits: self.bandwidth_bits,
        }
    }
}

/// An operation the session can drive: part-wise aggregation, gossip,
/// unicast routing, MST, connectivity, min-cut. Implementations live next
/// to their protocols (`lcs_partwise`, `lcs_algos`); the session supplies
/// the cached artifacts and collects the uniform [`OpReport`].
pub trait PartwiseOp {
    /// The operation's typed result.
    type Output;

    /// Runs the operation over the session's cached artifacts.
    fn run(self, session: &mut ShortcutSession<'_>) -> OpReport<Self::Output>;
}

/// Entry point of the builder: `Session::on(&graph)`.
pub struct Session;

impl Session {
    /// Starts building a session over `g`.
    pub fn on(g: &Graph) -> SessionBuilder<'_> {
        SessionBuilder {
            g,
            tree: None,
            parts: None,
            partition: None,
            backend: Backend::Centralized,
            config: SessionConfig::default(),
            provided_shortcut: None,
        }
    }
}

/// Builder for [`ShortcutSession`]. Construction is free: no tree, no
/// diameter, no shortcut is computed until an accessor or operation first
/// needs it.
pub struct SessionBuilder<'g> {
    g: &'g Graph,
    tree: Option<TreeSource>,
    parts: Option<Vec<Vec<NodeId>>>,
    partition: Option<Partition>,
    backend: Backend,
    config: SessionConfig,
    provided_shortcut: Option<Shortcut>,
}

impl<'g> SessionBuilder<'g> {
    /// Sets the tree source (default: BFS from `NodeId(0)`).
    pub fn tree(mut self, source: TreeSource) -> Self {
        self.tree = Some(source);
        self
    }

    /// Sets the partition from raw node lists (validated at
    /// [`build`](Self::build)).
    pub fn partition(mut self, parts: Vec<Vec<NodeId>>) -> Self {
        self.parts = Some(parts);
        self.partition = None;
        self
    }

    /// Sets an already-validated partition.
    pub fn partition_object(mut self, partition: Partition) -> Self {
        self.partition = Some(partition);
        self.parts = None;
        self
    }

    /// Sets the construction backend (default: [`Backend::Centralized`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the session configuration (default: [`SessionConfig::default`]).
    pub fn config(mut self, config: SessionConfig) -> Self {
        self.config = config;
        self
    }

    /// Seeds the shortcut cache with an externally built shortcut (e.g.
    /// deserialized from a prior run, or a baseline for comparison). The
    /// session serves it as-is and charges zero constructions.
    pub fn shortcut(mut self, shortcut: Shortcut) -> Self {
        self.provided_shortcut = Some(shortcut);
        self
    }

    /// Finishes the builder. Validates the partition (if given as raw node
    /// lists); everything else stays lazy.
    pub fn build(self) -> Result<ShortcutSession<'g>, PartitionError> {
        let partition = match (self.partition, self.parts) {
            (Some(p), _) => Some(p),
            (None, Some(lists)) => Some(Partition::from_parts(self.g, lists)?),
            (None, None) => None,
        };
        let source = self.tree.unwrap_or(TreeSource::Bfs(NodeId(0)));
        let (root, tree) = match source {
            TreeSource::Bfs(r) => (r, None),
            TreeSource::Provided(t) => (t.root(), Some(t)),
        };
        let tree_provided = tree.is_some();
        let full = self.provided_shortcut.map(|shortcut| FullArtifact {
            shortcut,
            delta_hat: 0,
            witness: None,
            construction: ConstructionStats::default(),
        });
        Ok(ShortcutSession {
            g: self.g,
            root,
            partition,
            backend: self.backend,
            config: self.config,
            tree,
            tree_provided,
            diam: None,
            full,
            quality: None,
            partials: BTreeMap::new(),
            op_artifacts: HashMap::new(),
            constructions: 0,
        })
    }
}

/// A prepared-topology session: one graph, one tree, one partition, one
/// backend — artifacts computed lazily, cached forever, and served to any
/// number of operations. See the [module docs](self) for the full story.
pub struct ShortcutSession<'g> {
    g: &'g Graph,
    root: NodeId,
    partition: Option<Partition>,
    backend: Backend,
    config: SessionConfig,
    tree: Option<RootedTree>,
    /// Whether `tree` came from [`TreeSource::Provided`] (the distributed
    /// backends must verify it matches the protocol's own BFS tree).
    tree_provided: bool,
    diam: Option<DiameterBounds>,
    full: Option<FullArtifact>,
    quality: Option<Arc<QualityReport>>,
    partials: BTreeMap<u32, PartialArtifact>,
    /// Per-op-type derived artifacts (e.g. the partwise participation
    /// map), keyed by the artifact's [`TypeId`] and shared via [`Arc`].
    /// See [`op_artifact`](ShortcutSession::op_artifact).
    op_artifacts: HashMap<TypeId, Arc<dyn Any + Send + Sync>>,
    constructions: usize,
}

impl<'g> ShortcutSession<'g> {
    /// The graph this session serves.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// The tree root.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The construction backend.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Mutable access to the configuration (between operations).
    pub fn config_mut(&mut self) -> &mut SessionConfig {
        &mut self.config
    }

    /// Whether a partition was configured.
    pub fn has_partition(&self) -> bool {
        self.partition.is_some()
    }

    /// The session partition.
    ///
    /// # Panics
    ///
    /// Panics if the session was built without one (partition-based ops
    /// require `.partition(..)` on the builder).
    pub fn partition(&self) -> &Partition {
        self.partition
            .as_ref()
            .expect("this session has no partition — pass .partition(..) to the builder")
    }

    /// Number of shortcut constructions this session actually performed.
    /// Repeated operations on the same session reuse the cache, so this
    /// stays at 1 (full) plus one per distinct partial `δ̂` — the metric the
    /// serving scenario cares about.
    pub fn constructions(&self) -> usize {
        self.constructions
    }

    /// The session's spanning tree (computed on first access).
    pub fn tree(&mut self) -> &RootedTree {
        if self.tree.is_none() {
            self.tree = Some(bfs::bfs_tree(self.g, self.root));
        }
        self.tree.as_ref().expect("just set")
    }

    /// Two-sided diameter bounds of the root's component (double-sweep;
    /// computed on first access).
    pub fn diameter(&mut self) -> DiameterBounds {
        if self.diam.is_none() {
            self.diam = Some(diameter_bounds(self.g, self.root));
        }
        self.diam.expect("just set")
    }

    /// The full-shortcut artifact (constructed on first access via the
    /// session backend).
    pub fn full_artifact(&mut self) -> &FullArtifact {
        self.ensure_full();
        self.full.as_ref().expect("just built")
    }

    /// The served full shortcut.
    pub fn shortcut(&mut self) -> &Shortcut {
        &self.full_artifact().shortcut
    }

    /// Final `δ̂` of the doubling search (0 for provided shortcuts).
    pub fn delta_hat(&mut self) -> u32 {
        self.full_artifact().delta_hat
    }

    /// The densest dense-minor certificate collected during construction.
    pub fn witness(&mut self) -> Option<&MinorWitness> {
        self.ensure_full();
        self.full.as_ref().and_then(|f| f.witness.as_ref())
    }

    /// Simulated cost of constructing the cached full shortcut.
    pub fn construction_stats(&mut self) -> ConstructionStats {
        self.full_artifact().construction
    }

    /// Quality report of the full shortcut against the session tree and
    /// partition (measured once, cached).
    pub fn quality(&mut self) -> &QualityReport {
        if self.quality.is_none() {
            self.ensure_full();
            self.tree();
            let q = measure_quality(
                self.g,
                self.partition(),
                self.tree.as_ref().expect("ensured"),
                &self.full.as_ref().expect("ensured").shortcut,
            );
            self.quality = Some(Arc::new(q));
        }
        self.quality.as_ref().expect("just set")
    }

    /// Shared handle to the cached quality report, if the session has a
    /// partition (measuring it on first use); `None` otherwise. Ops attach
    /// this to their [`OpReport`]s — every report shares one allocation
    /// instead of deep-cloning the O(k) per-part vectors per call.
    pub fn quality_shared(&mut self) -> Option<Arc<QualityReport>> {
        if self.partition.is_some() {
            self.quality();
            self.quality.clone()
        } else {
            None
        }
    }

    /// The per-op-type derived-artifact cache: returns the artifact of
    /// type `T`, building it with `build` from the graph, partition, and
    /// cached full shortcut on first access and serving the same
    /// [`Arc`] afterwards.
    ///
    /// This is where ops park preprocessing that depends only on the
    /// session's immutable artifacts — e.g. the partwise O(n + m)
    /// participation map, which the session previously rebuilt on every
    /// aggregate/gossip call. Keyed by [`TypeId`], so each artifact type
    /// has exactly one slot per session; the cache is never invalidated
    /// because graph, partition, and full shortcut are themselves
    /// immutable once built.
    ///
    /// # Panics
    ///
    /// Panics if the session has no partition (like every partition op).
    pub fn op_artifact<T, F>(&mut self, build: F) -> Arc<T>
    where
        T: Any + Send + Sync,
        F: FnOnce(&Graph, &Partition, &Shortcut) -> T,
    {
        let key = TypeId::of::<T>();
        if !self.op_artifacts.contains_key(&key) {
            self.prepare();
            let built = build(
                self.g,
                self.partition
                    .as_ref()
                    .expect("this session has no partition — pass .partition(..) to the builder"),
                &self.full.as_ref().expect("prepared").shortcut,
            );
            self.op_artifacts.insert(key, Arc::new(built));
        }
        self.op_artifacts
            .get(&key)
            .cloned()
            .expect("just inserted")
            .downcast::<T>()
            .unwrap_or_else(|_| unreachable!("slot is keyed by this TypeId"))
    }

    /// Ensures tree and full shortcut (and quality, when a partition
    /// exists) are built — the preparation step ops call once before
    /// taking shared references.
    pub fn prepare(&mut self) {
        self.tree();
        if self.partition.is_some() {
            self.ensure_full();
            self.quality();
        }
    }

    /// Shared reference to the cached shortcut.
    ///
    /// # Panics
    ///
    /// Panics if the artifact was not built yet (call
    /// [`prepare`](Self::prepare) or [`shortcut`](Self::shortcut) first).
    pub fn shortcut_ref(&self) -> &Shortcut {
        &self
            .full
            .as_ref()
            .expect("shortcut not prepared — call prepare() first")
            .shortcut
    }

    /// Shared reference to the cached tree.
    ///
    /// # Panics
    ///
    /// Panics like [`shortcut_ref`](Self::shortcut_ref).
    pub fn tree_ref(&self) -> &RootedTree {
        self.tree
            .as_ref()
            .expect("tree not prepared — call prepare() first")
    }

    /// The per-`δ̂` partial shortcut (one Theorem 3.1 sweep over all parts),
    /// constructed on first access and cached per `δ̂`.
    ///
    /// # Panics
    ///
    /// Panics if `δ̂ = 0` or the session has no partition.
    pub fn partial(&mut self, delta_hat: u32) -> &PartialArtifact {
        assert!(delta_hat >= 1, "δ̂ must be at least 1");
        if !self.partials.contains_key(&delta_hat) {
            let artifact = self.build_partial(delta_hat);
            self.constructions += 1;
            self.partials.insert(delta_hat, artifact);
        }
        self.partials.get(&delta_hat).expect("just inserted")
    }

    /// Drives one operation over the cached artifacts. Equivalent to the
    /// named methods of the facade (`session.aggregate(..)`,
    /// `session.mst(..)`, …), which are extension-trait sugar over this.
    pub fn run<O: PartwiseOp>(&mut self, op: O) -> OpReport<O::Output> {
        op.run(self)
    }

    fn ensure_full(&mut self) {
        if self.full.is_some() {
            return;
        }
        let artifact = match self.backend.clone() {
            Backend::Centralized => {
                self.tree();
                let res = full_shortcut(
                    self.g,
                    self.tree.as_ref().expect("ensured"),
                    self.partition(),
                    &self.config.shortcut,
                );
                FullArtifact {
                    shortcut: res.shortcut,
                    delta_hat: res.delta_hat,
                    witness: res.best_witness,
                    construction: ConstructionStats::default(),
                }
            }
            Backend::Distributed(sim) => {
                let dist = DistConfig {
                    mode: DistMode::Exact,
                    sim,
                };
                self.full_from_dist(&dist)
            }
            Backend::Sketch(dist) => self.full_from_dist(&dist),
        };
        self.constructions += 1;
        self.full = Some(artifact);
    }

    /// The distributed backends run the Theorem 1.5 protocol, whose first
    /// phase builds its *own* BFS tree from the root (the canonical
    /// min-id-parent rule). A provided tree is honored only if it IS that
    /// tree — otherwise the shortcut would be restricted to one tree while
    /// quality measurement and unicast routing use another, silently. Fail
    /// loudly instead.
    fn assert_provided_tree_is_canonical(&self) {
        if !self.tree_provided {
            return;
        }
        let provided = self.tree.as_ref().expect("provided tree stored at build");
        let canonical = bfs::bfs_tree(self.g, self.root);
        for v in self.g.nodes() {
            assert!(
                provided.parent(v) == canonical.parent(v),
                "Backend::Distributed/Sketch construct over the canonical BFS tree of root \
                 {:?} (the simulated protocol builds it itself), but the provided tree \
                 differs at node {v:?} — use Backend::Centralized for non-BFS trees",
                self.root
            );
        }
    }

    fn full_from_dist(&mut self, dist: &DistConfig) -> FullArtifact {
        self.assert_provided_tree_is_canonical();
        let res = distributed_full_shortcut(
            self.g,
            self.root,
            self.partition
                .as_ref()
                .expect("this session has no partition — pass .partition(..) to the builder"),
            &self.config.shortcut,
            dist,
        );
        FullArtifact {
            shortcut: res.shortcut,
            delta_hat: res.delta_hat,
            witness: res.best_witness,
            construction: ConstructionStats {
                rounds: res.rounds,
                messages: res.messages,
                bits: res.bits,
            },
        }
    }

    fn build_partial(&mut self, delta_hat: u32) -> PartialArtifact {
        match self.backend.clone() {
            Backend::Centralized => {
                self.tree();
                let outcome = partial_shortcut_or_witness(
                    self.g,
                    self.tree.as_ref().expect("ensured"),
                    self.partition(),
                    delta_hat,
                    &self.config.shortcut,
                );
                match outcome {
                    SweepOutcome::Shortcut(ps) => PartialArtifact {
                        shortcut: ps.shortcut,
                        served: ps.served,
                        case_one: true,
                        data: ps.data,
                        witness: None,
                        metrics_bfs: None,
                        metrics_detect: None,
                    },
                    SweepOutcome::DenseMinor { witness, data } => PartialArtifact {
                        shortcut: Shortcut::empty(self.partition().num_parts()),
                        served: Vec::new(),
                        case_one: false,
                        data,
                        witness,
                        metrics_bfs: None,
                        metrics_detect: None,
                    },
                }
            }
            Backend::Distributed(sim) => self.partial_from_dist(
                delta_hat,
                &DistConfig {
                    mode: DistMode::Exact,
                    sim,
                },
            ),
            Backend::Sketch(dist) => self.partial_from_dist(delta_hat, &dist),
        }
    }

    fn partial_from_dist(&mut self, delta_hat: u32, dist: &DistConfig) -> PartialArtifact {
        self.assert_provided_tree_is_canonical();
        let res = distributed_partial_shortcut(
            self.g,
            self.root,
            self.partition
                .as_ref()
                .expect("this session has no partition — pass .partition(..) to the builder"),
            delta_hat,
            &self.config.shortcut,
            dist,
        );
        PartialArtifact {
            shortcut: res.shortcut,
            served: res.served,
            case_one: res.case_one,
            data: res.data,
            witness: None,
            metrics_bfs: Some(res.metrics_bfs),
            metrics_detect: Some(res.metrics_shortcut),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::gen;

    fn grid_session(side: usize) -> ShortcutSession<'static> {
        // Leak the graph for 'static test sessions (tests only).
        let g = Box::leak(Box::new(gen::grid(side, side)));
        Session::on(g)
            .tree(TreeSource::Bfs(NodeId(0)))
            .partition(gen::rows_of_grid(side, side))
            .build()
            .expect("grid rows are valid parts")
    }

    #[test]
    fn builder_is_lazy_and_artifacts_cache() {
        let mut s = grid_session(8);
        assert_eq!(s.constructions(), 0, "build() must not construct");
        let dh = s.delta_hat();
        assert_eq!(dh, 1);
        assert_eq!(s.constructions(), 1);
        // Every later access is served from the cache.
        let edges_a = s.shortcut().total_edges();
        let edges_b = s.shortcut().total_edges();
        assert_eq!(edges_a, edges_b);
        let _ = s.quality();
        let _ = s.witness();
        assert_eq!(s.constructions(), 1);
    }

    #[test]
    fn tree_and_diameter_are_cached() {
        let mut s = grid_session(6);
        let d1 = s.tree().depth_of_tree();
        let d2 = s.tree().depth_of_tree();
        assert_eq!(d1, d2);
        let db = s.diameter();
        assert!(db.lower <= db.upper);
        assert_eq!(s.constructions(), 0, "tree/diameter are not constructions");
    }

    #[test]
    fn partials_cache_per_delta_hat() {
        let mut s = grid_session(8);
        let served1 = s.partial(1).served.len();
        assert_eq!(s.constructions(), 1);
        let served1_again = s.partial(1).served.len();
        assert_eq!(served1, served1_again);
        assert_eq!(s.constructions(), 1, "same δ̂ reuses the cache");
        let _ = s.partial(2);
        assert_eq!(s.constructions(), 2, "a new δ̂ constructs once");
    }

    #[test]
    fn distributed_backend_matches_centralized_shortcut() {
        let g = gen::grid(8, 8);
        let parts = gen::rows_of_grid(8, 8);
        let mut central = Session::on(&g)
            .partition(parts.clone())
            .backend(Backend::Centralized)
            .build()
            .unwrap();
        let mut dist = Session::on(&g)
            .partition(parts)
            .backend(Backend::Distributed(SimConfig::default()))
            .build()
            .unwrap();
        // Exact streaming reproduces the centralized construction.
        assert_eq!(central.shortcut(), dist.shortcut());
        assert_eq!(central.delta_hat(), dist.delta_hat());
        // The distributed backend charges simulated construction cost.
        let stats = dist.construction_stats();
        assert!(stats.rounds > 0 && stats.messages > 0 && stats.bits > 0);
        assert_eq!(central.construction_stats(), ConstructionStats::default());
    }

    #[test]
    fn provided_shortcut_is_served_without_construction() {
        let g = gen::grid(6, 6);
        let parts = gen::rows_of_grid(6, 6);
        let mut built = Session::on(&g).partition(parts.clone()).build().unwrap();
        let sc = built.shortcut().clone();
        let mut served = Session::on(&g)
            .partition(parts)
            .shortcut(sc.clone())
            .build()
            .unwrap();
        assert_eq!(served.shortcut(), &sc);
        assert_eq!(served.delta_hat(), 0, "provided shortcuts have unknown δ̂");
        assert_eq!(served.constructions(), 0);
    }

    #[test]
    fn distributed_backend_accepts_the_canonical_provided_tree() {
        let g = gen::grid(5, 5);
        let tree = bfs::bfs_tree(&g, NodeId(3));
        let mut s = Session::on(&g)
            .tree(TreeSource::Provided(tree))
            .partition(gen::rows_of_grid(5, 5))
            .backend(Backend::Distributed(SimConfig::default()))
            .build()
            .unwrap();
        let _ = s.shortcut(); // the provided tree IS the protocol's tree
        assert_eq!(s.constructions(), 1);
    }

    #[test]
    #[should_panic(expected = "differs at node")]
    fn distributed_backend_rejects_non_canonical_trees() {
        // On a cycle, the path tree (parent(i) = i-1) is a valid spanning
        // tree rooted at 0 but NOT the BFS tree (BFS splits both ways).
        let g = gen::cycle(6);
        let n = 6u32;
        let parent: Vec<_> = (0..n)
            .map(|i| {
                (i > 0).then(|| {
                    let p = NodeId(i - 1);
                    let e = g.find_edge(p, NodeId(i)).expect("cycle edge");
                    (p, e)
                })
            })
            .collect();
        let dist: Vec<u32> = (0..n).collect();
        let order: Vec<NodeId> = (0..n).map(NodeId).collect();
        let path_tree = lcs_graph::RootedTree::from_parents(&g, NodeId(0), &parent, &dist, &order);
        let mut sess = Session::on(&g)
            .tree(TreeSource::Provided(path_tree))
            .partition(vec![vec![NodeId(0), NodeId(1)]])
            .backend(Backend::Distributed(SimConfig::default()))
            .build()
            .unwrap();
        let _ = sess.shortcut();
    }

    #[test]
    fn provided_tree_sets_the_root() {
        let g = gen::grid(5, 5);
        let tree = bfs::bfs_tree(&g, NodeId(12));
        let mut s = Session::on(&g)
            .tree(TreeSource::Provided(tree.clone()))
            .build()
            .unwrap();
        assert_eq!(s.root(), NodeId(12));
        assert_eq!(s.tree().parent(NodeId(0)), tree.parent(NodeId(0)));
    }

    #[test]
    #[should_panic(expected = "no partition")]
    fn partition_ops_demand_a_partition() {
        let g = gen::path(4);
        let mut s = Session::on(&g).build().unwrap();
        let _ = s.shortcut();
    }

    #[test]
    fn op_artifacts_build_once_and_share_one_allocation() {
        struct Expensive(usize);
        let mut s = grid_session(6);
        let mut builds = 0;
        let a = s.op_artifact(|g, partition, shortcut| {
            builds += 1;
            Expensive(g.num_nodes() + partition.num_parts() + shortcut.num_parts())
        });
        let b = s.op_artifact(|_, _, _| -> Expensive { unreachable!("cached after first build") });
        assert_eq!(builds, 1);
        assert!(Arc::ptr_eq(&a, &b), "one shared allocation");
        assert_eq!(a.0, 36 + 6 + 6);
        // Accessing the artifact forced the full shortcut exactly once.
        assert_eq!(s.constructions(), 1);
    }

    #[test]
    fn quality_is_shared_not_cloned() {
        let mut s = grid_session(6);
        let a = s.quality_shared().expect("session has a partition");
        let b = s.quality_shared().expect("session has a partition");
        assert!(Arc::ptr_eq(&a, &b), "reports share the cached allocation");
        assert_eq!(s.constructions(), 1);
    }

    #[test]
    fn config_sim_overrides_resolve() {
        let mut cfg = SessionConfig::default();
        assert_eq!(cfg.aggregate_sim(), cfg.sim);
        let over = SimConfig {
            threads: 4,
            ..SimConfig::default()
        };
        cfg.unicast.sim = Some(over);
        assert_eq!(cfg.unicast_sim(), over);
        assert_eq!(cfg.mst_sim(), cfg.sim);
        assert_eq!(cfg.mincut_sim(), cfg.sim);
    }
}
