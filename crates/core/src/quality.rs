//! Measuring shortcut quality: congestion, dilation, block number
//! (Definitions 2.2/2.3, Observation 2.6).

use crate::{Partition, Shortcut};
use lcs_graph::{bfs, Graph, NodeId, PartId, RootedTree, UnionFind};
use serde::{Deserialize, Serialize};

/// Parts with at most this many nodes in `G[P_i] + H_i` get an exact
/// diameter (all-pairs BFS); larger parts get double-sweep bounds.
const EXACT_DIAMETER_THRESHOLD: usize = 200;

/// Measured quality of one part's shortcut.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartQuality {
    /// Number of connected components of `(P_i ∪ V(H_i), H_i)` — the block
    /// number of Definition 2.3 (isolated part nodes count as blocks).
    pub blocks: u32,
    /// Lower bound on the diameter of `G[P_i] + H_i` (a realized distance).
    pub dilation_lower: u32,
    /// Upper bound on the diameter of `G[P_i] + H_i`; equals
    /// `dilation_lower` when exact. `u32::MAX` if the subgraph is
    /// disconnected.
    pub dilation_upper: u32,
    /// Whether `G[P_i] + H_i` is connected.
    pub connected: bool,
}

/// Measured quality of a whole shortcut.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QualityReport {
    /// Per-part measurements.
    pub per_part: Vec<PartQuality>,
    /// Maximum per-edge congestion `max_e |{i : e ∈ H_i}|`.
    pub max_congestion: u32,
    /// Maximum block number over parts.
    pub max_blocks: u32,
    /// Maximum dilation lower bound over parts.
    pub max_dilation_lower: u32,
    /// Maximum dilation upper bound over parts (`u32::MAX` if some part is
    /// disconnected).
    pub max_dilation_upper: u32,
    /// Whether `⋃ H_i` lies inside the measured tree.
    pub tree_restricted: bool,
}

impl QualityReport {
    /// The shortcut quality `Q = c + d` (Definition 2.2), using the dilation
    /// upper bound. Saturates at `u32::MAX`.
    pub fn quality(&self) -> u32 {
        self.max_congestion.saturating_add(self.max_dilation_upper)
    }

    /// Whether every part's `G[P_i] + H_i` is connected.
    pub fn all_connected(&self) -> bool {
        self.per_part.iter().all(|p| p.connected)
    }
}

/// Measures congestion, dilation and block number of `shortcut` for
/// `partition` on `g`, with `tree` used only for the tree-restriction flag.
///
/// # Panics
///
/// Panics if the shortcut's part count differs from the partition's.
pub fn measure_quality(
    g: &Graph,
    partition: &Partition,
    tree: &RootedTree,
    shortcut: &Shortcut,
) -> QualityReport {
    let all: Vec<PartId> = partition.part_ids().collect();
    let per_part = measure_parts(g, partition, shortcut, &all);

    QualityReport {
        max_congestion: shortcut.max_congestion(g),
        max_blocks: per_part.iter().map(|p| p.blocks).max().unwrap_or(0),
        max_dilation_lower: per_part.iter().map(|p| p.dilation_lower).max().unwrap_or(0),
        max_dilation_upper: per_part.iter().map(|p| p.dilation_upper).max().unwrap_or(0),
        tree_restricted: shortcut.is_tree_restricted(tree),
        per_part,
    }
}

/// Measures [`PartQuality`] rows for a subset of parts — the incremental
/// counterpart of [`measure_quality`], used to patch only the touched rows
/// of a cached report after partition churn. The returned rows are in the
/// order of `parts`.
pub(crate) fn measure_parts(
    g: &Graph,
    partition: &Partition,
    shortcut: &Shortcut,
    parts: &[PartId],
) -> Vec<PartQuality> {
    assert_eq!(
        shortcut.num_parts(),
        partition.num_parts(),
        "shortcut and partition part counts differ"
    );
    let n = g.num_nodes();
    // Per-part stamps to avoid clearing O(n)/O(m) arrays per part.
    let mut node_stamp = vec![0u32; n];
    let mut edge_stamp = vec![0u32; g.num_edges()];
    let mut per_part = Vec::with_capacity(parts.len());

    for &pid in parts {
        let nodes = partition.part(pid);
        let stamp = pid.0 + 1;
        let h = shortcut.edges_for(pid);
        // Node set of G[P_i] + H_i.
        let mut subgraph_nodes: Vec<NodeId> = Vec::with_capacity(nodes.len());
        for &v in nodes {
            node_stamp[v.index()] = stamp;
            subgraph_nodes.push(v);
        }
        for &e in h {
            edge_stamp[e.index()] = stamp;
            let (u, v) = g.endpoints(e);
            for w in [u, v] {
                if node_stamp[w.index()] != stamp {
                    node_stamp[w.index()] = stamp;
                    subgraph_nodes.push(w);
                }
            }
        }

        // Blocks: components of (P_i ∪ V(H_i), H_i).
        let mut local_index = std::collections::HashMap::new();
        for (i, &v) in subgraph_nodes.iter().enumerate() {
            local_index.insert(v, i);
        }
        let mut uf = UnionFind::new(subgraph_nodes.len());
        for &e in h {
            let (u, v) = g.endpoints(e);
            uf.union(local_index[&u], local_index[&v]);
        }
        let blocks = uf.num_sets() as u32;

        // Dilation: BFS restricted to part-internal edges plus H_i, over
        // the subgraph's nodes.
        let part_of = partition.assignment();
        let allow = |e: lcs_graph::EdgeId, _next: NodeId| {
            if edge_stamp[e.index()] == stamp {
                return true;
            }
            // Otherwise the edge must be part-internal: both endpoints in P_i.
            let (u, v) = g.endpoints(e);
            part_of[u.index()] == Some(pid) && part_of[v.index()] == Some(pid)
        };
        let first = bfs::bfs_filtered(g, &subgraph_nodes[..1], allow);
        let connected = subgraph_nodes.iter().all(|&v| first.reached(v));
        let (dl, du) = if !connected {
            (0, u32::MAX)
        } else if subgraph_nodes.len() <= EXACT_DIAMETER_THRESHOLD {
            let mut best = 0;
            for &v in &subgraph_nodes {
                let r = bfs::bfs_filtered(g, std::slice::from_ref(&v), allow);
                best = best.max(r.eccentricity());
            }
            (best, best)
        } else {
            let (far, _) = first.farthest().expect("non-empty part");
            let second = bfs::bfs_filtered(g, std::slice::from_ref(&far), allow);
            let ecc = second.eccentricity();
            (ecc, 2 * ecc)
        };

        per_part.push(PartQuality {
            blocks,
            dilation_lower: dl,
            dilation_upper: du,
            connected,
        });
    }

    per_part
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::{gen, EdgeId};

    fn wheel_setup() -> (Graph, Partition, RootedTree) {
        // Wheel: hub 0, rim 1..=9. One part = the whole rim.
        let g = gen::wheel(10);
        let rim: Vec<NodeId> = (1..10).map(NodeId).collect();
        let partition = Partition::from_parts(&g, vec![rim]).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        (g, partition, tree)
    }

    #[test]
    fn empty_shortcut_on_wheel_rim() {
        let (g, partition, tree) = wheel_setup();
        let s = Shortcut::empty(1);
        let q = measure_quality(&g, &partition, &tree, &s);
        assert_eq!(q.max_congestion, 0);
        // Rim alone is a 9-cycle: diameter 4.
        assert_eq!(q.max_dilation_lower, 4);
        assert_eq!(q.max_dilation_upper, 4);
        // With no shortcut edges, each rim node is its own block.
        assert_eq!(q.max_blocks, 9);
        assert!(q.tree_restricted);
        assert!(q.all_connected());
        assert_eq!(q.quality(), 4);
    }

    #[test]
    fn spoke_shortcut_shrinks_dilation() {
        let (g, partition, tree) = wheel_setup();
        // H_0 = two opposite spokes (tree edges, since the BFS tree from the
        // hub is exactly the spokes).
        let e1 = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e5 = g.find_edge(NodeId(0), NodeId(5)).unwrap();
        let s = Shortcut::from_edge_lists(vec![vec![e1, e5]]);
        let q = measure_quality(&g, &partition, &tree, &s);
        assert_eq!(q.max_congestion, 1);
        assert!(q.max_dilation_upper <= 4);
        assert!(q.tree_restricted);
        // Blocks: one component {0,1,5} plus 7 isolated rim nodes.
        assert_eq!(q.max_blocks, 8);
    }

    #[test]
    fn disconnected_subgraph_detected() {
        // Two parts on a path, shortcut edge far away from part 0? Use a
        // shortcut whose H contains an edge disjoint from the part.
        let g = gen::path(6);
        let partition = Partition::from_parts(&g, vec![vec![NodeId(0), NodeId(1)]]).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        // Edge (4,5) is disconnected from part {0,1} in G[P]+H.
        let far_edge = g.find_edge(NodeId(4), NodeId(5)).unwrap();
        let s = Shortcut::from_edge_lists(vec![vec![far_edge]]);
        let q = measure_quality(&g, &partition, &tree, &s);
        assert!(!q.all_connected());
        assert_eq!(q.max_dilation_upper, u32::MAX);
        assert_eq!(q.quality(), u32::MAX);
    }

    #[test]
    fn congestion_counts_sharing() {
        let g = gen::path(4);
        let partition = Partition::from_parts(&g, vec![vec![NodeId(0)], vec![NodeId(3)]]).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let all: Vec<EdgeId> = g.edges().map(|er| er.id).collect();
        let s = Shortcut::from_edge_lists(vec![all.clone(), all]);
        let q = measure_quality(&g, &partition, &tree, &s);
        assert_eq!(q.max_congestion, 2);
        assert!(q.all_connected());
        assert_eq!(q.max_dilation_upper, 3);
        // Each part: one block spanning the whole path.
        assert_eq!(q.max_blocks, 1);
    }

    #[test]
    #[should_panic(expected = "part counts differ")]
    fn shape_mismatch_panics() {
        let (g, partition, tree) = wheel_setup();
        measure_quality(&g, &partition, &tree, &Shortcut::empty(2));
    }
}
