//! Baseline shortcuts for comparison experiments.
//!
//! Section 1.3 of the paper recalls the folklore result that *any* graph
//! admits shortcuts of quality `D + √n`: give every part larger than `√n`
//! the whole BFS tree (`H_i = T`) and every smaller part nothing
//! (`H_i = ∅`). At most `√n` parts can exceed `√n` nodes, so congestion is
//! at most `√n`; big parts have dilation `<= 2D`, small parts at most their
//! own size. This is the general-graph baseline the minor-density shortcuts
//! are compared against (experiment E6).

use crate::{Partition, Shortcut};
use lcs_graph::{EdgeId, Graph, RootedTree};

/// The folklore `D + √n` shortcut: `H_i = T` for parts with more than `√n`
/// nodes, `H_i = ∅` otherwise.
pub fn general_graph_shortcut(g: &Graph, tree: &RootedTree, partition: &Partition) -> Shortcut {
    let threshold = (g.num_nodes() as f64).sqrt() as usize;
    let tree_edges: Vec<EdgeId> = tree.tree_edges().map(|(e, _)| e).collect();
    let lists = partition
        .iter()
        .map(|(_, nodes)| {
            if nodes.len() > threshold {
                tree_edges.clone()
            } else {
                Vec::new()
            }
        })
        .collect();
    Shortcut::from_edge_lists(lists)
}

/// The trivial shortcut `H_i = ∅` for every part (parts communicate inside
/// `G[P_i]` only) — the "no shortcuts" strawman.
pub fn no_shortcut(partition: &Partition) -> Shortcut {
    Shortcut::empty(partition.num_parts())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure_quality;
    use lcs_graph::{bfs, gen, NodeId};

    #[test]
    fn big_parts_get_the_tree_small_parts_nothing() {
        let g = gen::grid(10, 10); // √n = 10
        let rows = gen::rows_of_grid(10, 10);
        // Merge two rows into one big part of 20 nodes; keep two rows of 10.
        let mut parts = Vec::new();
        let mut big = rows[0].clone();
        big.extend(rows[1].iter().copied());
        parts.push(big);
        parts.push(rows[2].clone());
        let partition = Partition::from_parts(&g, parts).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let s = general_graph_shortcut(&g, &tree, &partition);
        assert_eq!(s.edges_for(lcs_graph::PartId(0)).len(), 99);
        assert!(s.edges_for(lcs_graph::PartId(1)).is_empty());
        assert!(s.is_tree_restricted(&tree));
    }

    #[test]
    fn quality_is_diameter_plus_sqrt_n_shaped() {
        let g = gen::grid(8, 8);
        let partition = Partition::from_parts(&g, gen::rows_of_grid(8, 8)).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let s = general_graph_shortcut(&g, &tree, &partition);
        let q = measure_quality(&g, &partition, &tree, &s);
        // Rows of 8 == √64: not strictly greater, so every H_i is empty and
        // dilation is the row length.
        assert_eq!(q.max_congestion, 0);
        assert_eq!(q.max_dilation_upper, 7);
    }

    #[test]
    fn no_shortcut_shape() {
        let g = gen::path(6);
        let partition = Partition::from_parts(&g, vec![vec![NodeId(0), NodeId(1)]]).unwrap();
        let s = no_shortcut(&partition);
        assert_eq!(s.num_parts(), 1);
        assert_eq!(s.total_edges(), 0);
    }
}
