//! Low-congestion shortcuts for graphs excluding dense minors — the core
//! construction of Ghaffari & Haeupler (PODC 2021).
//!
//! The crate implements, centrally and distributedly:
//!
//! * [`Partition`] / [`Shortcut`]: the objects of Definition 2.1/2.2,
//! * [`partial_shortcut_or_witness`]: the Theorem 3.1 sweep — either a
//!   tree-restricted `8δ̂D`-congestion `8δ̂`-block *partial* shortcut for at
//!   least half the parts, or a certified minor of density `> δ̂`
//!   (Case (II), extracted by sampling or derandomized via conditional
//!   expectations),
//! * [`full_shortcut`]: the Observation 2.7 loop plus doubling search over
//!   `δ̂`, yielding the full shortcuts of Theorem 1.2 together with a
//!   dense-minor certificate for near-optimality,
//! * [`measure_quality`]: congestion / dilation / block-number measurement
//!   (Definition 2.2/2.3, Observation 2.6),
//! * [`baseline`]: the folklore `D + √n` shortcut for general graphs,
//! * [`dist`]: the distributed `Õ(δD)`-round construction of Theorem 1.5 on
//!   the CONGEST simulator.
//!
//! # Example
//!
//! ```
//! use lcs_core::{full_shortcut, measure_quality, Partition, ShortcutConfig};
//! use lcs_graph::{bfs, gen, NodeId};
//!
//! let g = gen::grid(8, 8);
//! let parts = Partition::from_parts(&g, gen::rows_of_grid(8, 8))?;
//! let tree = bfs::bfs_tree(&g, NodeId(0));
//! let built = full_shortcut(&g, &tree, &parts, &ShortcutConfig::default());
//! let q = measure_quality(&g, &parts, &tree, &built.shortcut);
//! assert!(q.max_blocks <= 8 * built.delta_hat + 1);
//! # Ok::<(), lcs_core::PartitionError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
mod config;
mod full;
mod partition;
mod quality;
mod shortcut;
mod sweep;
mod witness;

pub mod dist;

pub use config::{ShortcutConfig, WitnessMode};
pub use full::{full_shortcut, FullShortcutResult, RoundLog};
pub use partition::{Partition, PartitionError};
pub use quality::{measure_quality, PartQuality, QualityReport};
pub use shortcut::Shortcut;
pub use sweep::{partial_shortcut_or_witness, OverEdge, PartialShortcut, SweepData, SweepOutcome};
pub use witness::{extract_witness_derandomized, extract_witness_sampled};
