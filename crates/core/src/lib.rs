//! Low-congestion shortcuts for graphs excluding dense minors — the core
//! construction of Ghaffari & Haeupler (PODC 2021), fronted by the
//! [`ShortcutSession`] facade.
//!
//! # The session facade
//!
//! A shortcut is built once per topology and *served* to many part-wise
//! operations — that serving shape is the [`session`] module:
//! [`Session::on(&graph)`](Session::on) starts a typed builder
//! (`.tree(..)`, `.partition(..)`, `.backend(..)`, `.config(..)`), and the
//! resulting [`ShortcutSession`] lazily computes and caches the BFS tree,
//! diameter bounds, the full shortcut (with quality report and dense-minor
//! certificate), and per-`δ̂` partial sweeps. Construction runs on one of
//! three pluggable [`Backend`]s — centralized Theorem 1.2, the simulated
//! exact Theorem 1.5 protocol, or KMV-sketch detection — and every
//! operation ([`PartwiseOp`] impls in `lcs_partwise` / `lcs_algos`)
//! returns a uniform [`OpReport`]. All knobs live in one serde-able
//! [`SessionConfig`].
//!
//! ```
//! use lcs_core::session::{Backend, Session, TreeSource};
//! use lcs_graph::{gen, NodeId};
//!
//! let g = gen::grid(8, 8);
//! let mut session = Session::on(&g)
//!     .tree(TreeSource::Bfs(NodeId(0)))
//!     .partition(gen::rows_of_grid(8, 8))
//!     .backend(Backend::Centralized)
//!     .build()?;
//! let q = session.quality().clone();                 // constructs + caches
//! assert!(q.max_blocks <= 8 * session.delta_hat() + 1);
//! assert_eq!(session.cache_stats().full.builds, 1);  // …and stays cached
//! # Ok::<(), lcs_core::PartitionError>(())
//! ```
//!
//! Sessions are mutable: [`ShortcutSession::set_partition`] swaps the
//! partition wholesale, [`ShortcutSession::reassign_parts`] moves nodes
//! between parts and re-customizes only the touched parts, and
//! [`ShortcutSession::update_weights`] mutates the weight input of MST.
//! Each cached artifact declares which inputs it depends on and is
//! invalidated precisely when one changes — see the [`session`] module
//! docs for the epoch model.
//!
//! # The underlying machinery
//!
//! The construction itself is implemented, centrally and distributedly, by:
//!
//! * [`Partition`] / [`Shortcut`]: the objects of Definition 2.1/2.2,
//! * [`partial_shortcut_or_witness`]: the Theorem 3.1 sweep — either a
//!   tree-restricted `8δ̂D`-congestion `8δ̂`-block *partial* shortcut for at
//!   least half the parts, or a certified minor of density `> δ̂`
//!   (Case (II), extracted by sampling or derandomized via conditional
//!   expectations),
//! * [`full_shortcut`]: the Observation 2.7 loop plus doubling search over
//!   `δ̂`, yielding the full shortcuts of Theorem 1.2 together with a
//!   dense-minor certificate for near-optimality,
//! * [`measure_quality`]: congestion / dilation / block-number measurement
//!   (Definition 2.2/2.3, Observation 2.6),
//! * [`baseline`]: the folklore `D + √n` shortcut for general graphs,
//! * [`dist`]: the distributed `Õ(δD)`-round construction of Theorem 1.5 on
//!   the CONGEST simulator.
//!
//! These free functions remain the explicit-artifact surface (and what the
//! session drives internally); prefer the session for anything that
//! queries one topology more than once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
mod config;
mod full;
mod partition;
mod quality;
mod shortcut;
mod source;
mod sweep;
mod witness;

pub mod dist;
pub mod hierarchy;
pub mod session;

pub use config::{ShortcutConfig, WitnessMode};
pub use full::{full_shortcut, FullShortcutResult, RoundLog};
pub use hierarchy::HierarchySession;
pub use partition::{Partition, PartitionError};
pub use quality::{measure_quality, PartQuality, QualityReport};
pub use session::{
    ArtifactStats, Backend, CacheStats, Epochs, Input, OpReport, PartwiseOp, Session,
    SessionBuilder, SessionConfig, ShortcutSession, TreeSource,
};
pub use shortcut::Shortcut;
pub use source::{GeneratorSpec, GraphSource, GraphSourceError, PartitionSource, ResolvedGraph};
pub use sweep::{partial_shortcut_or_witness, OverEdge, PartialShortcut, SweepData, SweepOutcome};
pub use witness::{extract_witness_derandomized, extract_witness_sampled};
