//! Hierarchy mode: multi-level sessions over a nested-dissection tree.
//!
//! A [`SeparatorTree`] is a chain of refining partitions — every level-`k`
//! part is a union of level-`k+1` parts. A [`HierarchySession`] keeps one
//! epoch-tracked [`ShortcutSession`] per dissection level over the *same*
//! graph, so a serving process can answer part-wise operations at any
//! granularity while paying the preparation-time work once per level and
//! caching every artifact per level (each level's session is the full
//! epoch/artifact cache of the flat facade).
//!
//! The construction is amortized across the levels:
//! [`prepare_all`](HierarchySession::prepare_all) builds the **finest**
//! level first and warm-starts each coarser level's doubling search at the
//! `δ̂` the finer level settled on (`initial_delta_hat`), skipping the
//! sweeps the finer level already paid for. The warm start is a pure
//! scheduling hint: any start value yields a valid Theorem 3.1 shortcut,
//! and the Theorem 1.1 envelope is stated in terms of the `δ̂` actually
//! used — the bounds tests normalize by it either way.
//!
//! Lazily accessed levels ([`session_at`](HierarchySession::session_at))
//! are built with the pristine config, so the leaf-level session is
//! **bit-identical** to a flat [`Session`] built on the
//! leaf partition — the hierarchy differential in `tests/` pins exactly
//! that, over 30 seeds × 3 graph families.

use crate::session::{Backend, Session, SessionConfig, ShortcutSession};
use crate::{Partition, PartitionError};
use lcs_graph::Graph;
use lcs_separator::{nested_dissection, SeparatorConfig, SeparatorTree};

/// One [`ShortcutSession`] per dissection level of a [`SeparatorTree`],
/// finest level last. See the [module docs](self).
pub struct HierarchySession<'g> {
    g: &'g Graph,
    tree: SeparatorTree,
    backend: Backend,
    config: SessionConfig,
    /// `partitions[k]` = the validated level-`k` partition.
    partitions: Vec<Partition>,
    /// Lazily built per-level sessions.
    sessions: Vec<Option<ShortcutSession<'g>>>,
}

impl<'g> HierarchySession<'g> {
    /// Runs the nested dissection on `g` and builds the hierarchy over
    /// its recursion tree.
    ///
    /// # Errors
    ///
    /// Propagates partition validation; in particular a disconnected `g`
    /// fails level 0 (one part spanning all of `V`) with
    /// [`PartitionError::Disconnected`].
    pub fn build(
        g: &'g Graph,
        sep: &SeparatorConfig,
        backend: Backend,
        config: SessionConfig,
    ) -> Result<Self, PartitionError> {
        Self::from_tree(g, nested_dissection(g, sep), backend, config)
    }

    /// Builds the hierarchy over a caller-provided recursion tree (e.g.
    /// deserialized from a prior run). Validates every level's partition
    /// up front — each must cover `V` with connected parts.
    pub fn from_tree(
        g: &'g Graph,
        tree: SeparatorTree,
        backend: Backend,
        config: SessionConfig,
    ) -> Result<Self, PartitionError> {
        let levels = tree.num_levels().max(1);
        let mut partitions = Vec::with_capacity(levels as usize);
        for level in 0..levels {
            partitions.push(Partition::from_parts_covering(
                g,
                tree.partition_at_level(level),
            )?);
        }
        let sessions = (0..levels).map(|_| None).collect();
        Ok(HierarchySession {
            g,
            tree,
            backend,
            config,
            partitions,
            sessions,
        })
    }

    /// The graph the hierarchy serves.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// The dissection tree the levels come from.
    pub fn tree(&self) -> &SeparatorTree {
        &self.tree
    }

    /// Number of levels (≥ 1; level 0 is the coarsest — one part per
    /// graph component).
    pub fn num_levels(&self) -> usize {
        self.partitions.len()
    }

    /// The finest (leaf) level index.
    pub fn leaf_level(&self) -> usize {
        self.partitions.len() - 1
    }

    /// The validated partition of one level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn partition_at(&self, level: usize) -> &Partition {
        &self.partitions[level]
    }

    /// The session serving `level`, built on first access with the
    /// pristine session config (no warm start — lazy access must match a
    /// flat build bit-for-bit; the amortized path is
    /// [`prepare_all`](Self::prepare_all)).
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn session_at(&mut self, level: usize) -> &mut ShortcutSession<'g> {
        self.ensure_level(level, None);
        self.sessions[level].as_mut().expect("just built")
    }

    /// The finest-level session — where ops over the leaf partition run.
    pub fn leaf_session(&mut self) -> &mut ShortcutSession<'g> {
        self.session_at(self.leaf_level())
    }

    /// Prepares every level's shortcut, finest first, warm-starting each
    /// coarser level's doubling search at the finer level's final `δ̂`.
    /// Returns the per-level `δ̂`, coarsest first. Levels that were
    /// already built (e.g. the leaf, via
    /// [`leaf_session`](Self::leaf_session)) keep their artifacts — the
    /// warm start never rewrites an existing session.
    pub fn prepare_all(&mut self) -> Vec<u32> {
        let mut delta_hats = vec![0u32; self.num_levels()];
        let mut warm: Option<u32> = None;
        for level in (0..self.num_levels()).rev() {
            self.ensure_level(level, warm);
            let session = self.sessions[level].as_mut().expect("just built");
            session.prepare();
            let dh = session.delta_hat();
            delta_hats[level] = dh;
            warm = Some(dh.max(warm.unwrap_or(1)));
        }
        delta_hats
    }

    /// Builds the session of `level` if absent. `warm_delta_hat` raises
    /// the doubling search's starting `δ̂` (never lowers it below the
    /// configured initial).
    fn ensure_level(&mut self, level: usize, warm_delta_hat: Option<u32>) {
        if self.sessions[level].is_some() {
            return;
        }
        let mut config = self.config.clone();
        // The partition is explicit per level; a stray source in the
        // config must not shadow it (and could not — explicit partitions
        // win — but keep the per-level spec self-describing).
        config.partition_source = None;
        if let Some(dh) = warm_delta_hat {
            config.shortcut.initial_delta_hat = config.shortcut.initial_delta_hat.max(dh);
        }
        let session = Session::on(self.g)
            .partition_object(self.partitions[level].clone())
            .backend(self.backend.clone())
            .config(config)
            .build()
            .expect("level partitions were validated in from_tree");
        self.sessions[level] = Some(session);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::gen;

    fn hierarchy(g: &Graph) -> HierarchySession<'_> {
        let sep = SeparatorConfig {
            min_region: 4,
            max_levels: 30,
        };
        HierarchySession::build(g, &sep, Backend::Centralized, SessionConfig::default()).unwrap()
    }

    #[test]
    fn levels_refine_from_one_part_to_leaves() {
        let g = gen::grid(10, 10);
        let h = hierarchy(&g);
        assert!(h.num_levels() >= 3);
        assert_eq!(h.partition_at(0).num_parts(), 1);
        let leaf_parts = h.partition_at(h.leaf_level()).num_parts();
        assert!(leaf_parts > 4);
        for level in 0..h.num_levels() {
            assert!(h.partition_at(level).covers_all());
        }
        // Coarser levels never have more parts than finer ones.
        for level in 1..h.num_levels() {
            assert!(h.partition_at(level - 1).num_parts() <= h.partition_at(level).num_parts());
        }
    }

    #[test]
    fn prepare_all_reports_a_delta_hat_per_level_and_caches() {
        let g = gen::grid(9, 9);
        let mut h = hierarchy(&g);
        let dhs = h.prepare_all();
        assert_eq!(dhs.len(), h.num_levels());
        assert!(dhs.iter().all(|&d| d >= 1));
        // Preparing again is pure cache: no level rebuilds its shortcut.
        let before: Vec<u64> = (0..h.num_levels())
            .map(|l| h.session_at(l).cache_stats().full.builds)
            .collect();
        let dhs2 = h.prepare_all();
        assert_eq!(dhs, dhs2);
        for (l, b) in before.iter().enumerate() {
            assert_eq!(h.session_at(l).cache_stats().full.builds, *b);
        }
    }

    #[test]
    fn coarser_levels_warm_start_at_the_finer_delta_hat() {
        let g = gen::grid(12, 12);
        let mut h = hierarchy(&g);
        let dhs = h.prepare_all();
        // The warm start makes δ̂ monotone from leaf to root: each coarser
        // search starts at the finer level's result.
        for level in 1..h.num_levels() {
            assert!(
                dhs[level - 1] >= dhs[level] || dhs[level - 1] >= 1,
                "coarse δ̂ must not restart below the warm start"
            );
        }
        let leaf = h.leaf_level();
        assert!(dhs[0] >= dhs[leaf]);
    }

    #[test]
    fn lazy_leaf_access_is_pristine() {
        let g = gen::grid(8, 8);
        let mut h = hierarchy(&g);
        // Touch the leaf before prepare_all: it must be built with the
        // untouched config (differential vs flat sessions relies on it).
        let dh_lazy = h.leaf_session().delta_hat();
        let flat_parts = h.tree().leaf_partition();
        let mut flat = Session::on(&g).partition(flat_parts).build().unwrap();
        assert_eq!(dh_lazy, flat.delta_hat());
        // prepare_all afterwards keeps the leaf session untouched.
        let dhs = h.prepare_all();
        assert_eq!(dhs[h.leaf_level()], dh_lazy);
    }

    #[test]
    fn disconnected_graphs_are_rejected_at_level_zero() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let sep = SeparatorConfig::default();
        let err = HierarchySession::build(&g, &sep, Backend::Centralized, SessionConfig::default())
            .err()
            .expect("level 0 of a disconnected graph must fail validation");
        assert_eq!(err, PartitionError::Disconnected(0));
    }
}
