//! Configuration of the shortcut construction.

use serde::{Deserialize, Serialize};

/// How to produce the dense-minor certificate in Case (II) of Theorem 3.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WitnessMode {
    /// Derandomized extraction via the method of conditional expectations —
    /// deterministic and guaranteed to return a minor of density `> δ̂`.
    Derandomized,
    /// The paper's random sampling (`P_i ∈ P'` with probability `1/4D`),
    /// retried up to the given number of attempts. Falls back to the
    /// derandomized extraction when all attempts fail.
    Sampled {
        /// Maximum sampling attempts before falling back.
        attempts: u32,
    },
    /// Do not extract a witness (fastest; Case (II) reports only that the
    /// congestion threshold failed).
    Skip,
}

/// Parameters of the Theorem 3.1 construction.
///
/// The defaults reproduce the paper's constants: congestion threshold
/// `c = 8·δ̂·D` and block threshold `8·δ̂` (footnote 3 notes the constants
/// were not optimized — they are exposed here for the E11 ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShortcutConfig {
    /// Initial guess `δ̂` for the doubling search (default 1).
    pub initial_delta_hat: u32,
    /// The `8` in `c = 8δD`.
    pub congestion_factor: u32,
    /// The `8` in the `8δ` block threshold.
    pub block_factor: u32,
    /// Witness extraction policy for failed rounds.
    pub witness_mode: WitnessMode,
    /// Seed for sampled witness extraction.
    pub seed: u64,
}

impl Default for ShortcutConfig {
    fn default() -> Self {
        ShortcutConfig {
            initial_delta_hat: 1,
            congestion_factor: 8,
            block_factor: 8,
            witness_mode: WitnessMode::Derandomized,
            seed: 0x5ca1ab1e,
        }
    }
}

impl ShortcutConfig {
    /// The congestion threshold `c = congestion_factor · δ̂ · D` for tree
    /// depth `d` (at least 1, so single-level trees still have a positive
    /// threshold).
    pub fn congestion_threshold(&self, delta_hat: u32, tree_depth: u32) -> u32 {
        self.congestion_factor
            .saturating_mul(delta_hat)
            .saturating_mul(tree_depth.max(1))
    }

    /// The block-degree threshold `block_factor · δ̂`.
    pub fn block_threshold(&self, delta_hat: u32) -> u32 {
        self.block_factor.saturating_mul(delta_hat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = ShortcutConfig::default();
        assert_eq!(c.congestion_factor, 8);
        assert_eq!(c.block_factor, 8);
        assert_eq!(c.congestion_threshold(2, 10), 160);
        assert_eq!(c.block_threshold(2), 16);
    }

    #[test]
    fn zero_depth_trees_still_get_positive_threshold() {
        let c = ShortcutConfig::default();
        assert_eq!(c.congestion_threshold(1, 0), 8);
    }
}
