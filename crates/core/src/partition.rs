//! Partitions of the vertex set into connected parts (Definition 2.1).

use lcs_graph::{components, Graph, NodeId, PartId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A collection of node-disjoint parts, each inducing a connected subgraph —
/// the input of the part-wise aggregation problem (Definition 2.1).
///
/// Parts need not cover every node (the paper's definition partitions all of
/// `V`, but the shortcut machinery and Boruvka fragments are naturally
/// defined for sub-collections too; uncovered nodes simply belong to no
/// part).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    part_of: Vec<Option<PartId>>,
    parts: Vec<Vec<NodeId>>,
}

/// Ways a part collection can be invalid. [`code`](Self::code) gives each
/// variant a stable machine-readable name, so API layers can map "part not
/// connected" and "node unassigned" to distinct structured errors instead
/// of one collapsed message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// A part is empty.
    EmptyPart(usize),
    /// A node occurs in two parts.
    Overlap(NodeId),
    /// A node id is out of range for the graph.
    OutOfRange(NodeId),
    /// A part does not induce a connected subgraph.
    Disconnected(usize),
    /// A node is not assigned to any part, but the caller required a
    /// covering partition ([`Partition::from_parts_covering`]).
    Uncovered(NodeId),
}

impl PartitionError {
    /// A stable machine-readable code for this variant — what structured
    /// API errors carry alongside the human-readable message.
    pub fn code(&self) -> &'static str {
        match self {
            Self::EmptyPart(_) => "partition_empty_part",
            Self::Overlap(_) => "partition_overlap",
            Self::OutOfRange(_) => "partition_out_of_range",
            Self::Disconnected(_) => "partition_disconnected",
            Self::Uncovered(_) => "partition_uncovered",
        }
    }
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyPart(i) => write!(f, "part {i} is empty"),
            Self::Overlap(v) => write!(f, "node {v:?} occurs in two parts"),
            Self::OutOfRange(v) => write!(f, "node {v:?} out of range"),
            Self::Disconnected(i) => write!(f, "part {i} does not induce a connected subgraph"),
            Self::Uncovered(v) => write!(f, "node {v:?} is not assigned to any part"),
        }
    }
}

impl std::error::Error for PartitionError {}

impl Partition {
    /// Validates and wraps a part collection.
    ///
    /// # Errors
    ///
    /// Returns a [`PartitionError`] if a part is empty, parts overlap, a node
    /// is out of range, or a part does not induce a connected subgraph.
    pub fn from_parts(g: &Graph, parts: Vec<Vec<NodeId>>) -> Result<Self, PartitionError> {
        let n = g.num_nodes();
        let mut part_of: Vec<Option<PartId>> = vec![None; n];
        for (i, part) in parts.iter().enumerate() {
            if part.is_empty() {
                return Err(PartitionError::EmptyPart(i));
            }
            for &v in part {
                if v.index() >= n {
                    return Err(PartitionError::OutOfRange(v));
                }
                if part_of[v.index()].is_some() {
                    return Err(PartitionError::Overlap(v));
                }
                part_of[v.index()] = Some(PartId(i as u32));
            }
        }
        for (i, part) in parts.iter().enumerate() {
            if !components::induces_connected(g, part) {
                return Err(PartitionError::Disconnected(i));
            }
        }
        Ok(Partition { part_of, parts })
    }

    /// [`from_parts`](Self::from_parts), additionally requiring every node
    /// of `g` to be covered — the validation partition *sources* (rows,
    /// voronoi, separator levels) and hierarchy sessions use, where an
    /// unassigned node is a bug, not a choice.
    ///
    /// # Errors
    ///
    /// Everything [`from_parts`](Self::from_parts) rejects, plus
    /// [`PartitionError::Uncovered`] for the smallest-id node outside
    /// every part.
    pub fn from_parts_covering(g: &Graph, parts: Vec<Vec<NodeId>>) -> Result<Self, PartitionError> {
        let p = Self::from_parts(g, parts)?;
        if let Some(v) = p.part_of.iter().position(Option::is_none) {
            return Err(PartitionError::Uncovered(NodeId(v as u32)));
        }
        Ok(p)
    }

    /// Every node of `g` as its own part (Boruvka's initial fragments).
    pub fn singletons(g: &Graph) -> Self {
        let parts: Vec<Vec<NodeId>> = g.nodes().map(|v| vec![v]).collect();
        let part_of = g.nodes().map(|v| Some(PartId(v.0))).collect();
        Partition { part_of, parts }
    }

    /// Number of parts `k`.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// The nodes of part `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn part(&self, p: PartId) -> &[NodeId] {
        &self.parts[p.index()]
    }

    /// The part containing `v`, or `None` if `v` is uncovered.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the original graph.
    pub fn part_of(&self, v: NodeId) -> Option<PartId> {
        self.part_of[v.index()]
    }

    /// Iterates over `(PartId, nodes)`.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (PartId, &[NodeId])> {
        self.parts
            .iter()
            .enumerate()
            .map(|(i, p)| (PartId(i as u32), p.as_slice()))
    }

    /// All part ids.
    pub fn part_ids(&self) -> impl ExactSizeIterator<Item = PartId> + Clone {
        (0..self.parts.len() as u32).map(PartId)
    }

    /// Whether every node of the graph belongs to some part.
    pub fn covers_all(&self) -> bool {
        self.part_of.iter().all(Option::is_some)
    }

    /// Total number of covered nodes.
    pub fn covered_nodes(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }

    /// The per-node assignment vector (indexed by node id).
    pub fn assignment(&self) -> &[Option<PartId>] {
        &self.part_of
    }

    /// Applies node-to-part `moves` and returns the resulting partition
    /// together with the sorted ids of the touched parts (each moved
    /// node's old part, if any, and its new part). Later moves see the
    /// effect of earlier ones; moving a node to the part it is already in
    /// is a no-op that touches nothing; uncovered nodes may be moved into
    /// a part. `self` is untouched — validation failures cost nothing
    /// (atomicity for callers).
    ///
    /// Only the touched parts are re-validated (they must stay non-empty
    /// and induce connected subgraphs); untouched parts are valid by
    /// construction.
    ///
    /// # Errors
    ///
    /// [`PartitionError::OutOfRange`] for a bad node id,
    /// [`PartitionError::EmptyPart`] /
    /// [`PartitionError::Disconnected`] for a touched part left empty or
    /// disconnected.
    ///
    /// # Panics
    ///
    /// Panics if a target [`PartId`] is out of range — parts cannot be
    /// created or destroyed by reassignment.
    pub fn reassign(
        &self,
        g: &Graph,
        moves: &[(NodeId, PartId)],
    ) -> Result<(Partition, Vec<PartId>), PartitionError> {
        let k = self.parts.len();
        let mut next = self.clone();
        let mut touched = std::collections::BTreeSet::new();
        for &(v, target) in moves {
            if v.index() >= next.part_of.len() {
                return Err(PartitionError::OutOfRange(v));
            }
            assert!(
                target.index() < k,
                "target part {target:?} out of range — reassignment cannot create parts"
            );
            let old = next.part_of[v.index()];
            if old == Some(target) {
                continue;
            }
            if let Some(old) = old {
                let members = &mut next.parts[old.index()];
                let pos = members.iter().position(|&u| u == v).expect("member list");
                members.remove(pos);
                touched.insert(old);
            }
            next.parts[target.index()].push(v);
            next.part_of[v.index()] = Some(target);
            touched.insert(target);
        }
        for &p in &touched {
            if next.parts[p.index()].is_empty() {
                return Err(PartitionError::EmptyPart(p.index()));
            }
            if !components::induces_connected(g, &next.parts[p.index()]) {
                return Err(PartitionError::Disconnected(p.index()));
            }
        }
        Ok((next, touched.into_iter().collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::gen;

    #[test]
    fn valid_partition() {
        let g = gen::grid(2, 3);
        let parts = gen::rows_of_grid(2, 3);
        let p = Partition::from_parts(&g, parts).unwrap();
        assert_eq!(p.num_parts(), 2);
        assert!(p.covers_all());
        assert_eq!(p.part_of(NodeId(4)), Some(PartId(1)));
        assert_eq!(p.covered_nodes(), 6);
    }

    #[test]
    fn singleton_partition() {
        let g = gen::path(4);
        let p = Partition::singletons(&g);
        assert_eq!(p.num_parts(), 4);
        assert!(p.covers_all());
        assert_eq!(p.part(PartId(2)), &[NodeId(2)]);
    }

    #[test]
    fn partial_coverage_is_allowed() {
        let g = gen::path(5);
        let p = Partition::from_parts(&g, vec![vec![NodeId(0), NodeId(1)]]).unwrap();
        assert!(!p.covers_all());
        assert_eq!(p.part_of(NodeId(4)), None);
        assert_eq!(p.covered_nodes(), 2);
    }

    #[test]
    fn rejects_overlap() {
        let g = gen::path(3);
        let err = Partition::from_parts(
            &g,
            vec![vec![NodeId(0), NodeId(1)], vec![NodeId(1), NodeId(2)]],
        )
        .unwrap_err();
        assert_eq!(err, PartitionError::Overlap(NodeId(1)));
    }

    #[test]
    fn rejects_disconnected_part() {
        let g = gen::path(4);
        let err = Partition::from_parts(&g, vec![vec![NodeId(0), NodeId(3)]]).unwrap_err();
        assert_eq!(err, PartitionError::Disconnected(0));
    }

    #[test]
    fn rejects_empty_and_out_of_range() {
        let g = gen::path(2);
        assert_eq!(
            Partition::from_parts(&g, vec![vec![]]).unwrap_err(),
            PartitionError::EmptyPart(0)
        );
        assert_eq!(
            Partition::from_parts(&g, vec![vec![NodeId(9)]]).unwrap_err(),
            PartitionError::OutOfRange(NodeId(9))
        );
    }

    #[test]
    fn covering_constructor_distinguishes_uncovered_from_disconnected() {
        let g = gen::path(5);
        // A disconnected part is a `Disconnected` error under both
        // constructors…
        let err = Partition::from_parts_covering(&g, vec![vec![NodeId(0), NodeId(2)]]).unwrap_err();
        assert_eq!(err, PartitionError::Disconnected(0));
        assert_eq!(err.code(), "partition_disconnected");
        // …while a merely-partial cover is `Uncovered` (smallest missing
        // node surfaced) only under the covering constructor.
        let parts = vec![vec![NodeId(0), NodeId(1)]];
        assert!(Partition::from_parts(&g, parts.clone()).is_ok());
        let err = Partition::from_parts_covering(&g, parts).unwrap_err();
        assert_eq!(err, PartitionError::Uncovered(NodeId(2)));
        assert_eq!(err.code(), "partition_uncovered");
        // A full cover passes.
        let p = Partition::from_parts_covering(&g, vec![(0..5).map(NodeId).collect()]).unwrap();
        assert!(p.covers_all());
    }

    #[test]
    fn reassign_moves_nodes_and_reports_touched_parts() {
        let g = gen::grid(3, 3);
        let p = Partition::from_parts(&g, gen::rows_of_grid(3, 3)).unwrap();
        // Move the first node of row 1 into row 0 (stays connected via the
        // column edge).
        let (next, touched) = p.reassign(&g, &[(NodeId(3), PartId(0))]).unwrap();
        assert_eq!(touched, vec![PartId(0), PartId(1)]);
        assert_eq!(next.part_of(NodeId(3)), Some(PartId(0)));
        assert_eq!(next.part(PartId(1)), &[NodeId(4), NodeId(5)]);
        // The original is untouched.
        assert_eq!(p.part_of(NodeId(3)), Some(PartId(1)));
    }

    #[test]
    fn reassign_noop_touches_nothing() {
        let g = gen::grid(3, 3);
        let p = Partition::from_parts(&g, gen::rows_of_grid(3, 3)).unwrap();
        let (next, touched) = p.reassign(&g, &[(NodeId(4), PartId(1))]).unwrap();
        assert!(touched.is_empty());
        assert_eq!(next, p);
    }

    #[test]
    fn reassign_rejects_disconnecting_moves() {
        let g = gen::grid(3, 3);
        let p = Partition::from_parts(&g, gen::rows_of_grid(3, 3)).unwrap();
        // Taking the middle of row 1 splits it into {3} and {5}.
        let err = p.reassign(&g, &[(NodeId(4), PartId(0))]).unwrap_err();
        assert_eq!(err, PartitionError::Disconnected(1));
    }

    #[test]
    fn reassign_rejects_emptying_a_part() {
        let g = gen::path(4);
        let p =
            Partition::from_parts(&g, vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2)]]).unwrap();
        let err = p.reassign(&g, &[(NodeId(2), PartId(0))]).unwrap_err();
        assert_eq!(err, PartitionError::EmptyPart(1));
    }

    #[test]
    fn reassign_covers_uncovered_nodes() {
        let g = gen::path(4);
        let p = Partition::from_parts(&g, vec![vec![NodeId(0), NodeId(1)]]).unwrap();
        let (next, touched) = p.reassign(&g, &[(NodeId(2), PartId(0))]).unwrap();
        assert_eq!(touched, vec![PartId(0)]);
        assert_eq!(next.covered_nodes(), 3);
    }

    use lcs_graph::{NodeId, PartId};
}
