//! The Theorem 3.1 sweep: overcongested edges, the bipartite graph `B`, and
//! partial-shortcut extraction.
//!
//! Processing tree edges by decreasing depth, an edge `e` is *overcongested*
//! when at least `c = 8δ̂D` parts intersect the descendants of `v_e` in
//! `T \ O`. The bipartite graph `B` relates overcongested edges to the parts
//! that congested them; parts of small `B`-degree receive their forest
//! ancestor edges as the shortcut (Case (I)), and if fewer than half the
//! parts qualify, `B` contains a dense minor (Case (II), extracted in
//! [`crate::witness`]).

use crate::witness;
use crate::{Partition, Shortcut, ShortcutConfig};
use lcs_graph::minor::MinorWitness;
use lcs_graph::{EdgeId, Graph, NodeId, PartId, RootedTree};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An overcongested tree edge together with `I_e` — the parts intersecting
/// the descendants of `v_e` in `T \ O` — and, per part, the minimum-depth
/// representative node reachable from `v_e` through `T \ O`.
///
/// Minimum-depth representatives guarantee the representative path contains
/// no other node of the same part, which the witness extraction's
/// independence argument requires.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OverEdge {
    /// The overcongested tree edge.
    pub edge: EdgeId,
    /// Its deeper endpoint `v_e`.
    pub v_e: NodeId,
    /// `I_e` with representatives, sorted by part id.
    pub parts: Vec<(PartId, NodeId)>,
}

/// Everything the sweep learned: the set `O`, the `B`-degrees, and the
/// thresholds used. Input to witness extraction and to the experiment
/// harness.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepData {
    /// The guess `δ̂` the sweep ran with.
    pub delta_hat: u32,
    /// Congestion threshold `c = congestion_factor·δ̂·D`.
    pub congestion_threshold: u32,
    /// Block-degree threshold `block_factor·δ̂`.
    pub block_threshold: u32,
    /// Depth of the tree the sweep used.
    pub tree_depth: u32,
    /// The overcongested edges `O`, in cut order (deepest first).
    pub over_edges: Vec<OverEdge>,
    /// `deg_B[i]` = degree of part `i` in the bipartite graph `B`
    /// (0 for parts outside `active`).
    pub deg_b: Vec<u32>,
    /// The parts this sweep considered.
    pub active: Vec<PartId>,
}

/// A successful Case (I) outcome: at least half the active parts served.
#[derive(Clone, Debug)]
pub struct PartialShortcut {
    /// Parts that received a shortcut this round (`deg_B <= 8δ̂`), sorted.
    pub served: Vec<PartId>,
    /// `H_i` for served parts (empty for others); sized like the partition.
    pub shortcut: Shortcut,
    /// The sweep's bookkeeping.
    pub data: SweepData,
}

/// Result of one sweep: a partial shortcut or a dense-minor certificate.
#[derive(Clone, Debug)]
pub enum SweepOutcome {
    /// Case (I): at least half the active parts have `B`-degree at most
    /// `8δ̂` and receive their forest ancestor edges.
    Shortcut(PartialShortcut),
    /// Case (II): more than half the active parts have large `B`-degree,
    /// certifying a minor of density `> δ̂`.
    DenseMinor {
        /// The extracted minor (present unless
        /// [`WitnessMode::Skip`](crate::WitnessMode::Skip) was configured or
        /// extraction failed, which cannot happen in `Derandomized` mode for
        /// paper constants).
        witness: Option<MinorWitness>,
        /// The sweep's bookkeeping.
        data: SweepData,
    },
}

/// Runs one Theorem 3.1 sweep on all parts of `partition` with guess `δ̂`.
///
/// See `sweep_active` for the variant restricted to a sub-collection of
/// parts (used by the Observation 2.7 loop).
///
/// # Panics
///
/// Panics if some part node lies outside `tree`'s component.
pub fn partial_shortcut_or_witness(
    g: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    delta_hat: u32,
    config: &ShortcutConfig,
) -> SweepOutcome {
    let all: Vec<PartId> = partition.part_ids().collect();
    sweep_active(g, tree, partition, &all, delta_hat, config)
}

/// Runs one sweep considering only the parts in `active`.
///
/// # Panics
///
/// Panics if some active part's node lies outside `tree`'s component, or if
/// `active` contains duplicates or out-of-range part ids.
pub fn sweep_active(
    g: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    active: &[PartId],
    delta_hat: u32,
    config: &ShortcutConfig,
) -> SweepOutcome {
    assert!(delta_hat >= 1, "δ̂ must be at least 1");
    let num_parts = partition.num_parts();
    let mut seen = vec![false; num_parts];
    for &p in active {
        assert!(p.index() < num_parts, "active part {p:?} out of range");
        assert!(!seen[p.index()], "duplicate active part {p:?}");
        seen[p.index()] = true;
        for &v in partition.part(p) {
            assert!(
                tree.contains(v),
                "part node {v:?} outside the tree's component"
            );
        }
    }

    let (data, o_mark, served) = sweep_core(
        g,
        tree,
        partition,
        active,
        delta_hat,
        config,
        CutRule::Threshold,
    );
    finish_sweep(
        g,
        tree,
        partition,
        data,
        |served| build_shortcut(g, tree, partition, served, &o_mark, num_parts),
        served,
        config,
    )
}

/// How one sweep decides which tree edges to cut.
pub(crate) enum CutRule<'a> {
    /// Cut when at least `c = congestion_factor·δ̂·D` active parts intersect
    /// the descendants — the Theorem 3.1 rule of the centralized sweep.
    Threshold,
    /// Cut exactly the marked edges — re-deriving the bookkeeping under a
    /// cut set the distributed protocol already detected.
    Fixed(&'a [bool]),
}

/// The bookkeeping every sweep shares: threshold computation, the bottom-up
/// merge under the given cut rule, [`SweepData`] assembly, and the served
/// filter (`deg_B <= block threshold`). Returns `(data, o_mark, served)`.
pub(crate) fn sweep_core(
    g: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    active: &[PartId],
    delta_hat: u32,
    config: &ShortcutConfig,
    rule: CutRule<'_>,
) -> (SweepData, Vec<bool>, Vec<PartId>) {
    let mut is_active = vec![false; partition.num_parts()];
    for &p in active {
        is_active[p.index()] = true;
    }
    let d_t = tree.depth_of_tree();
    let c = config.congestion_threshold(delta_hat, d_t);
    let b_thr = config.block_threshold(delta_hat);

    let (over_edges, o_mark, deg_b) = match rule {
        CutRule::Threshold => bottom_up(g, tree, partition, &is_active, |set_len, _| {
            set_len >= c as usize
        }),
        CutRule::Fixed(fixed_o) => {
            bottom_up(g, tree, partition, &is_active, |_, e| fixed_o[e.index()])
        }
    };

    let data = SweepData {
        delta_hat,
        congestion_threshold: c,
        block_threshold: b_thr,
        tree_depth: d_t,
        over_edges,
        deg_b,
        active: active.to_vec(),
    };
    let served: Vec<PartId> = active
        .iter()
        .copied()
        .filter(|&p| data.deg_b[p.index()] <= b_thr)
        .collect();
    (data, o_mark, served)
}

/// The Case (I) acceptance rule of Theorem 3.1: a sweep succeeds when at
/// least half its active parts were served.
pub(crate) fn case_one_accepts(served: usize, active: usize) -> bool {
    2 * served >= active
}

/// Completes a sweep from its bookkeeping: applies [`case_one_accepts`] and
/// assembles the [`SweepOutcome`] — building the shortcut (via `build`) only
/// on success, extracting the Case (II) certificate per the configured
/// witness mode on failure. The single decision point shared by the
/// centralized sweep and the distributed construction.
pub(crate) fn finish_sweep(
    g: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    data: SweepData,
    build: impl FnOnce(&[PartId]) -> Shortcut,
    served: Vec<PartId>,
    config: &ShortcutConfig,
) -> SweepOutcome {
    if case_one_accepts(served.len(), data.active.len()) {
        let shortcut = build(&served);
        SweepOutcome::Shortcut(PartialShortcut {
            served,
            shortcut,
            data,
        })
    } else {
        let witness = witness::extract_per_mode(g, tree, partition, &data, config);
        SweepOutcome::DenseMinor { witness, data }
    }
}

/// The bottom-up small-to-large merge of (part -> min-depth representative)
/// maps, with a pluggable cut rule (`(distinct part count, edge) -> cut?`).
///
/// Returns `(O-records, o_mark, deg_B)`.
fn bottom_up(
    g: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    is_active: &[bool],
    mut cut: impl FnMut(usize, EdgeId) -> bool,
) -> (Vec<OverEdge>, Vec<bool>, Vec<u32>) {
    type CompSet = HashMap<PartId, (u32, NodeId)>;
    let n = g.num_nodes();
    let mut slots: Vec<Option<CompSet>> = vec![None; n];
    let mut over_edges: Vec<OverEdge> = Vec::new();
    let mut o_mark = vec![false; g.num_edges()];
    let mut deg_b = vec![0u32; partition.num_parts()];

    for v in tree.order_deepest_first() {
        let mut acc: Option<CompSet> = None;
        for &ch in tree.children(v) {
            if let Some(set) = slots[ch.index()].take() {
                acc = Some(match acc {
                    None => set,
                    Some(cur) => {
                        let (mut big, small) = if cur.len() >= set.len() {
                            (cur, set)
                        } else {
                            (set, cur)
                        };
                        for (p, entry) in small {
                            big.entry(p)
                                .and_modify(|e| {
                                    if entry.0 < e.0 {
                                        *e = entry;
                                    }
                                })
                                .or_insert(entry);
                        }
                        big
                    }
                });
            }
        }
        let mut set = acc.unwrap_or_default();
        if let Some(p) = partition.part_of(v) {
            if is_active[p.index()] {
                // v is the shallowest node of its current component, so it
                // unconditionally becomes the representative.
                set.insert(p, (tree.depth(v), v));
            }
        }
        match tree.parent(v) {
            None => {} // root: nothing above to congest
            Some((_, e)) => {
                if cut(set.len(), e) {
                    let mut parts: Vec<(PartId, NodeId)> =
                        set.into_iter().map(|(p, (_, r))| (p, r)).collect();
                    parts.sort_unstable_by_key(|&(p, _)| p);
                    for &(p, _) in &parts {
                        deg_b[p.index()] += 1;
                    }
                    o_mark[e.index()] = true;
                    over_edges.push(OverEdge {
                        edge: e,
                        v_e: v,
                        parts,
                    });
                } else {
                    slots[v.index()] = Some(set);
                }
            }
        }
    }
    (over_edges, o_mark, deg_b)
}

/// `H_i` = all ancestor edges of `P_i` in the forest `T \ O`, for each
/// served part.
pub(crate) fn build_shortcut(
    g: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    served: &[PartId],
    o_mark: &[bool],
    num_parts: usize,
) -> Shortcut {
    let mut lists: Vec<Vec<EdgeId>> = vec![Vec::new(); num_parts];
    // Stamp = part id + 1; an edge already stamped for this part ends the
    // upward walk (everything above was added by an earlier member).
    let mut stamp = vec![0u32; g.num_edges()];
    for &pid in served {
        let mark = pid.0 + 1;
        for &node in partition.part(pid) {
            for (_, e) in tree.path_to_root(node) {
                if o_mark[e.index()] || stamp[e.index()] == mark {
                    break;
                }
                stamp[e.index()] = mark;
                lists[pid.index()].push(e);
            }
        }
    }
    Shortcut::from_edge_lists(lists)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::measure_quality;
    use lcs_graph::{bfs, gen, minor};

    /// The "comb" instance that deterministically triggers Case (II) at
    /// δ̂ = 1 with paper constants: a root, `t` middle nodes with `k` leaves
    /// each, and `k` parts that chain the `i`-th leaf of every middle node.
    pub(crate) fn comb_instance(t: usize, k: usize) -> (Graph, Partition) {
        // nodes: 0 = root; 1..=t middles; leaf(i, p) = 1 + t + i*k + p.
        let n = 1 + t + t * k;
        let mut b = lcs_graph::GraphBuilder::new(n);
        let leaf = |i: usize, p: usize| NodeId((1 + t + i * k + p) as u32);
        for i in 0..t {
            b.add_edge(NodeId(0), NodeId((1 + i) as u32));
            for p in 0..k {
                b.add_edge(NodeId((1 + i) as u32), leaf(i, p));
            }
        }
        // Chains making each part connected.
        for p in 0..k {
            for i in 0..t.saturating_sub(1) {
                b.add_edge(leaf(i, p), leaf(i + 1, p));
            }
        }
        let g = b.build();
        let parts: Vec<Vec<NodeId>> = (0..k)
            .map(|p| (0..t).map(|i| leaf(i, p)).collect())
            .collect();
        let partition = Partition::from_parts(&g, parts).unwrap();
        (g, partition)
    }

    #[test]
    fn easy_instance_serves_everything_with_one_block() {
        // Wide shallow tree, few parts: no edge ever overcongests.
        let g = gen::grid(6, 6);
        let partition = Partition::from_parts(&g, gen::rows_of_grid(6, 6)).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let out = partial_shortcut_or_witness(&g, &tree, &partition, 1, &ShortcutConfig::default());
        let SweepOutcome::Shortcut(ps) = out else {
            panic!("expected Case (I)");
        };
        assert_eq!(ps.served.len(), 6);
        assert!(ps.data.over_edges.is_empty());
        let q = measure_quality(&g, &partition, &tree, &ps.shortcut);
        assert!(q.tree_restricted);
        assert_eq!(q.max_blocks, 1); // no cuts: single block per part
        assert!(q.all_connected());
        assert!(q.max_congestion <= ps.data.congestion_threshold);
    }

    #[test]
    fn comb_instance_triggers_case_two_and_witness_verifies() {
        let (g, partition) = comb_instance(10, 20);
        let tree = bfs::bfs_tree(&g, NodeId(0));
        assert_eq!(tree.depth_of_tree(), 2);
        let out = partial_shortcut_or_witness(&g, &tree, &partition, 1, &ShortcutConfig::default());
        let SweepOutcome::DenseMinor { witness, data } = out else {
            panic!("expected Case (II)");
        };
        // All 10 root edges overcongest (20 parts >= c = 16).
        assert_eq!(data.over_edges.len(), 10);
        assert!(data.deg_b.iter().all(|&d| d == 10));
        let w = witness.expect("derandomized extraction must succeed");
        assert!(minor::verify_minor(&g, &w).is_ok());
        assert!(
            w.density() > 1.0,
            "witness density {} must exceed δ̂ = 1",
            w.density()
        );
    }

    #[test]
    fn comb_instance_succeeds_at_larger_delta() {
        let (g, partition) = comb_instance(10, 20);
        let tree = bfs::bfs_tree(&g, NodeId(0));
        // c = 8·2·2 = 32 > 20 parts: nothing overcongests.
        let out = partial_shortcut_or_witness(&g, &tree, &partition, 2, &ShortcutConfig::default());
        let SweepOutcome::Shortcut(ps) = out else {
            panic!("expected Case (I) at δ̂ = 2");
        };
        assert_eq!(ps.served.len(), 20);
        let q = measure_quality(&g, &partition, &tree, &ps.shortcut);
        assert_eq!(q.max_blocks, 1);
        assert!(q.max_dilation_upper <= 4);
    }

    #[test]
    fn congestion_threshold_respected_by_construction() {
        // Moderately hard instance: 16x16 grid, singleton-ish random parts.
        let g = gen::grid(16, 16);
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(2);
        let parts = gen::random_connected_parts(&g, 64, &mut rng);
        let partition = Partition::from_parts(&g, parts).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let out = partial_shortcut_or_witness(&g, &tree, &partition, 1, &ShortcutConfig::default());
        if let SweepOutcome::Shortcut(ps) = out {
            let q = measure_quality(&g, &partition, &tree, &ps.shortcut);
            // Served parts' H_i use only non-overcongested edges, whose
            // |I_e| < c; so congestion < c.
            assert!(q.max_congestion < ps.data.congestion_threshold);
            for &p in &ps.served {
                assert!(q.per_part[p.index()].blocks <= ps.data.deg_b[p.index()] + 1);
            }
        }
    }

    #[test]
    fn blocks_bounded_by_b_degree_plus_one() {
        let (g, partition) = comb_instance(6, 20);
        let tree = bfs::bfs_tree(&g, NodeId(0));
        // δ̂ = 1: c = 16 <= 20 parts, so all 6 root edges cut; deg_B = 6 <= 8
        // for every part: Case (I) with 6 blocks each.
        let out = partial_shortcut_or_witness(&g, &tree, &partition, 1, &ShortcutConfig::default());
        let SweepOutcome::Shortcut(ps) = out else {
            panic!("expected Case (I)");
        };
        assert_eq!(ps.served.len(), 20);
        let q = measure_quality(&g, &partition, &tree, &ps.shortcut);
        for &p in &ps.served {
            let pq = q.per_part[p.index()];
            assert_eq!(ps.data.deg_b[p.index()], 6);
            assert!(pq.blocks <= 7);
            assert!(pq.connected);
            // Observation 2.6: dilation <= blocks · (2D + 1).
            assert!(pq.dilation_upper <= pq.blocks * (2 * ps.data.tree_depth + 1));
        }
    }

    #[test]
    fn sweep_on_subset_of_parts() {
        let (g, partition) = comb_instance(10, 20);
        let tree = bfs::bfs_tree(&g, NodeId(0));
        // Only 10 active parts: c = 16 > 10, nothing overcongests.
        let active: Vec<PartId> = (0..10).map(PartId).collect();
        let out = sweep_active(
            &g,
            &tree,
            &partition,
            &active,
            1,
            &ShortcutConfig::default(),
        );
        let SweepOutcome::Shortcut(ps) = out else {
            panic!("expected Case (I)");
        };
        assert_eq!(ps.served, active);
        // Inactive parts got no edges.
        assert!(ps.shortcut.edges_for(PartId(15)).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside the tree")]
    fn rejects_parts_outside_tree() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let partition = Partition::from_parts(&g, vec![vec![NodeId(2)]]).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        partial_shortcut_or_witness(&g, &tree, &partition, 1, &ShortcutConfig::default());
    }

    use lcs_graph::Graph;
    use lcs_graph::NodeId;
}
