//! The distributed `Õ(δ̂D)`-round construction of Theorem 1.5 on the CONGEST
//! simulator.
//!
//! The construction simulates two phases per sweep:
//!
//! 1. **BFS**: the standard distributed BFS-tree protocol
//!    ([`lcs_congest::protocols::BfsTreeProgram`]) builds the tree `T` in
//!    `ecc(root) + O(1)` rounds. Its parent rule (minimum-id neighbor one
//!    level closer to the root) matches [`lcs_graph::bfs::bfs_tree`], so the
//!    simulated and centralized constructions operate on the identical tree.
//! 2. **Detection**: a bottom-up convergecast over `T`. Every node merges
//!    the part sets reported by its children (below any already-cut edge),
//!    adds its own part, and cuts its parent edge when the set size reaches
//!    the congestion threshold `c = 8δ̂D`. In [`DistMode::Exact`] the sets
//!    are streamed verbatim (one part id per `O(log n)`-bit message), which
//!    reproduces the centralized Theorem 3.1 cut set edge-for-edge; in
//!    [`DistMode::Sketch`] each node forwards only a `t`-value KMV sketch
//!    ([`KmvSketch`]), trading exactness for `O(t)` messages per edge.
//!
//! Shortcut assembly, the Case (I)/(II) split, and witness extraction reuse
//! the centralized code on the protocol's cut set (the dissemination phase
//! of the paper is bookkeeping the nodes could do locally from what the
//! convergecast already told them).

use crate::full::run_doubling_search;
use crate::sweep::{build_shortcut, case_one_accepts, finish_sweep, sweep_core, CutRule};
use crate::{Partition, Shortcut, ShortcutConfig, SweepData};
use lcs_congest::protocols::{extract_tree, BfsTreeProgram};
use lcs_congest::{
    id_bits, splitmix, Ctx, Incoming, MessageSize, NodeProgram, RunMetrics, SimConfig, SimMode,
    Simulator,
};
use lcs_graph::minor::MinorWitness;
use lcs_graph::{EdgeId, Graph, NodeId, PartId, RootedTree};
use serde::{Deserialize, Serialize};

/// How the detection phase represents the part sets it convergecasts.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum DistMode {
    /// Stream the exact part sets (one id per message). Deterministic and
    /// guaranteed to reproduce the centralized cut set; `O(|set|)` messages
    /// per tree edge.
    Exact,
    /// Stream a `t`-value KMV distinct-count sketch instead.
    Sketch {
        /// Sketch capacity (number of retained minima).
        t: usize,
        /// Seed of the shared hash function applied to part ids.
        hash_seed: u64,
        /// The estimate is multiplied by this factor before the threshold
        /// comparison (`>= 1` biases toward cutting, `< 1` against).
        cut_factor: f64,
    },
}

/// Configuration of the distributed construction.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DistConfig {
    /// Detection mode.
    pub mode: DistMode,
    /// Simulator settings. The detection phase forces
    /// [`SimMode::Queued`] since set streaming
    /// sends several messages per edge. [`SimConfig::threads`] selects the
    /// sharded executor's worker count for both phases; the construction —
    /// cut set, shortcut, and metrics — is identical at any thread count.
    /// [`SimConfig::message_packing`]` = k > 1` coalesces each node's
    /// upward stream (part ids / sketch values, closed by the `Done`
    /// marker) into multi-value messages, cutting detection rounds ~`k`×
    /// (bandwidth permitting) while leaving the cut set — and therefore
    /// the shortcut — bit-identical.
    pub sim: SimConfig,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            mode: DistMode::Exact,
            sim: SimConfig::default(),
        }
    }
}

/// A `k`-minimum-values sketch over hashed 64-bit items: keeps the `t`
/// smallest distinct hash values seen: exact distinct count below capacity,
/// an unbiased `(t-1)·2⁶⁴/v_t` estimate above it, and mergeable by value
/// union — exactly what the sketch detection mode streams up the tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KmvSketch {
    t: usize,
    values: Vec<u64>,
}

impl KmvSketch {
    /// An empty sketch of capacity `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is 0.
    pub fn new(t: usize) -> Self {
        assert!(t >= 1, "sketch capacity must be positive");
        KmvSketch {
            t,
            values: Vec::new(),
        }
    }

    /// The sketch capacity.
    pub fn capacity(&self) -> usize {
        self.t
    }

    /// Inserts one hashed item.
    pub fn insert(&mut self, hash: u64) {
        match self.values.binary_search(&hash) {
            Ok(_) => {}
            Err(pos) => {
                if pos < self.t {
                    self.values.insert(pos, hash);
                    self.values.truncate(self.t);
                }
            }
        }
    }

    /// Merges another sketch (union semantics).
    pub fn merge(&mut self, other: &KmvSketch) {
        for &v in &other.values {
            self.insert(v);
        }
    }

    /// The retained minima, ascending.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Estimated distinct count: exact below capacity, `(t-1)·2⁶⁴/v_t`
    /// at capacity.
    pub fn estimate(&self) -> f64 {
        if self.values.len() < self.t {
            self.values.len() as f64
        } else {
            let kth = self.values[self.t - 1];
            (self.t - 1) as f64 * (u64::MAX as f64) / (kth as f64 + 1.0)
        }
    }
}

/// Result of [`distributed_partial_shortcut`].
#[derive(Clone, Debug)]
pub struct DistPartialShortcut {
    /// The assembled partial shortcut (forest ancestor edges of every part
    /// whose `B`-degree meets the block threshold).
    pub shortcut: Shortcut,
    /// Parts served by this sweep, sorted.
    pub served: Vec<PartId>,
    /// Whether at least half the active parts were served (Case (I)).
    pub case_one: bool,
    /// The cut set `O` the protocol detected, in the sweep's deepest-first
    /// order.
    pub over_edges: Vec<EdgeId>,
    /// Centralized re-derivation of the sweep bookkeeping under the
    /// protocol's cut set (thresholds, `B`-degrees, representatives).
    pub data: SweepData,
    /// Simulation metrics of the BFS phase.
    pub metrics_bfs: RunMetrics,
    /// Simulation metrics of the detection phase.
    pub metrics_shortcut: RunMetrics,
}

/// Result of [`distributed_full_shortcut`].
#[derive(Clone, Debug)]
pub struct DistFullShortcut {
    /// The union shortcut over all successful sweeps.
    pub shortcut: Shortcut,
    /// The final `δ̂` of the doubling search.
    pub delta_hat: u32,
    /// Successful (Case (I)) sweeps executed.
    pub successful_rounds: usize,
    /// Densest certificate from failed sweeps, if extraction was enabled.
    pub best_witness: Option<MinorWitness>,
    /// Total simulated rounds (BFS + every detection sweep).
    pub rounds: u64,
    /// Total simulated messages.
    pub messages: u64,
    /// Total simulated bits (id-aware [`MessageSize`] accounting).
    pub bits: u64,
    /// Metrics of the (single) BFS phase.
    pub metrics_bfs: RunMetrics,
}

/// Messages of the detection convergecast.
#[derive(Clone, Copy, Debug)]
enum DetectMsg {
    /// One part id of the sender's set (exact mode).
    Part(u32),
    /// One retained hash value of the sender's sketch (sketch mode).
    SketchVal(u64),
    /// The sender's stream is complete.
    Done,
}

impl MessageSize for DetectMsg {
    fn size_bits(&self) -> usize {
        match self {
            DetectMsg::Part(_) => 2 + 32,
            DetectMsg::SketchVal(_) => 2 + 64,
            DetectMsg::Done => 2,
        }
    }

    /// Part ids are id payloads (`O(log n)` bits); sketch hash values are
    /// genuine 64-bit payloads and keep their full width.
    fn size_bits_in(&self, n: usize) -> usize {
        match self {
            DetectMsg::Part(_) => 2 + id_bits(n),
            DetectMsg::SketchVal(_) => 2 + 64,
            DetectMsg::Done => 2,
        }
    }

    /// The convergecast streams are runs of one variant (parts or sketch
    /// values) closed by a `Done`, so a packed batch bills the 2-bit
    /// variant tag once per run and each further value at its bare payload
    /// width — this is what lets [`SimConfig::message_packing`] fit 3
    /// sketch hashes (or a whole `message_packing`-sized run of part ids)
    /// into one `O(log n)`-bit message and cut detection rounds
    /// accordingly.
    ///
    /// [`SimConfig::message_packing`]: lcs_congest::SimConfig::message_packing
    fn size_bits_packed_in(&self, prev: &Self, n: usize) -> usize {
        if std::mem::discriminant(self) == std::mem::discriminant(prev) {
            self.size_bits_in(n) - 2
        } else {
            self.size_bits_in(n)
        }
    }
}

/// Exact-mode part-set accumulator: a plain `Vec` on the ingest hot path
/// (every received part id is an O(1) push — no hashing), normalized by one
/// `sort + dedup` pass at finalization, right before the set is sized
/// against the threshold and streamed upward. Duplicates are bounded by the
/// messages received, so the buffer never exceeds the node's inbound
/// traffic.
#[derive(Clone, Debug, Default)]
struct VecSet {
    items: Vec<u32>,
}

impl VecSet {
    fn insert(&mut self, part: u32) {
        self.items.push(part);
    }

    /// Sorts, dedups, and returns the set contents (ascending).
    fn normalize(&mut self) -> &[u32] {
        self.items.sort_unstable();
        self.items.dedup();
        &self.items
    }
}

/// Per-node accumulator of the convergecast.
#[derive(Clone, Debug)]
enum SetAcc {
    Exact(VecSet),
    Sketch(KmvSketch),
}

/// The detection-phase program of one node.
struct DetectProgram {
    /// Port to the tree parent (`None` at the root and off-tree nodes).
    parent_port: Option<usize>,
    /// Tree children that have not sent [`DetectMsg::Done`] yet.
    pending_children: usize,
    /// This node's active part, pre-hashed for sketch mode.
    own_part: Option<u32>,
    acc: SetAcc,
    /// Congestion threshold `c`.
    threshold: u32,
    /// Sketch cut factor (1.0 in exact mode).
    cut_factor: f64,
    /// Hash seed (sketch mode).
    hash_seed: u64,
    /// Whether this node cut its parent edge.
    cut: bool,
    finished: bool,
    /// Whether the node lies in the tree's component at all.
    in_tree: bool,
}

impl DetectProgram {
    fn finalize(&mut self, ctx: &mut Ctx<'_, DetectMsg>) {
        if let Some(p) = self.own_part {
            match &mut self.acc {
                SetAcc::Exact(set) => set.insert(p),
                SetAcc::Sketch(s) => s.insert(splitmix(self.hash_seed, p)),
            }
        }
        if let Some(port) = self.parent_port {
            // Size the accumulated set against the threshold, then either
            // cut the parent edge or stream the set upward. Exact mode
            // normalizes (sort + dedup) here — once per node — and streams
            // the already-sorted result. The whole stream (values, then
            // the closing Done) is issued consecutively on one port in one
            // callback, which is exactly the shape the engine's
            // message-packing coalesces into multi-value batches.
            let estimate = match &mut self.acc {
                SetAcc::Exact(set) => set.normalize().len() as f64,
                SetAcc::Sketch(s) => s.estimate() * self.cut_factor,
            };
            if estimate >= f64::from(self.threshold) {
                self.cut = true;
            } else {
                match &self.acc {
                    SetAcc::Exact(set) => {
                        for &p in &set.items {
                            ctx.send(port, DetectMsg::Part(p));
                        }
                    }
                    SetAcc::Sketch(s) => {
                        for &v in s.values() {
                            ctx.send(port, DetectMsg::SketchVal(v));
                        }
                    }
                }
            }
            ctx.send(port, DetectMsg::Done);
        }
        self.finished = true;
    }
}

impl NodeProgram for DetectProgram {
    type Msg = DetectMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, DetectMsg>) {
        if !self.in_tree {
            self.finished = true;
        } else if self.pending_children == 0 {
            self.finalize(ctx);
        }
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, DetectMsg>, inbox: &[Incoming<DetectMsg>]) {
        for m in inbox {
            match m.msg {
                DetectMsg::Part(p) => {
                    if let SetAcc::Exact(set) = &mut self.acc {
                        set.insert(p);
                    }
                }
                DetectMsg::SketchVal(v) => {
                    if let SetAcc::Sketch(s) = &mut self.acc {
                        s.insert(v);
                    }
                }
                DetectMsg::Done => self.pending_children -= 1,
            }
        }
        if self.pending_children == 0 && !self.finished {
            self.finalize(ctx);
        }
    }

    fn is_done(&self) -> bool {
        self.finished
    }
}

/// Runs the simulated BFS phase and reconstructs the tree it built.
fn run_bfs(g: &Graph, root: NodeId, cfg: &DistConfig) -> (RootedTree, RunMetrics) {
    let sim = Simulator::new(g, cfg.sim);
    let run = sim.run(|v, _| BfsTreeProgram::new(v == root));
    assert!(
        !run.metrics.truncated && run.metrics.terminated,
        "BFS phase hit SimConfig::max_rounds ({}) before quiescence — raise the cap",
        cfg.sim.max_rounds
    );
    let tree = extract_tree(g, &run).to_rooted_tree(g);
    (tree, run.metrics)
}

/// Enforces the documented contract that every part lives inside the tree's
/// component (mirrors the validation of [`crate::sweep::sweep_active`]).
fn assert_parts_in_tree(tree: &RootedTree, partition: &Partition) {
    for (pid, nodes) in partition.iter() {
        for &v in nodes {
            assert!(
                tree.contains(v),
                "part {pid:?} node {v:?} outside the tree's component"
            );
        }
    }
}

/// Runs one detection sweep; returns the cut-edge marks and the metrics.
fn run_detection(
    g: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    active: &[PartId],
    delta_hat: u32,
    config: &ShortcutConfig,
    dist: &DistConfig,
) -> (Vec<bool>, RunMetrics) {
    let mut is_active = vec![false; partition.num_parts()];
    for &p in active {
        is_active[p.index()] = true;
    }
    let threshold = config.congestion_threshold(delta_hat, tree.depth_of_tree());
    let sim = Simulator::new(
        g,
        SimConfig {
            mode: SimMode::Queued,
            ..dist.sim
        },
    );
    let run = sim.run(|v, _| {
        let in_tree = tree.contains(v);
        let parent_port = if in_tree {
            tree.parent(v)
                .map(|(p, _)| g.port_to(v, p).expect("tree parent is a graph neighbor"))
        } else {
            None
        };
        let (acc, cut_factor, hash_seed) = match dist.mode {
            DistMode::Exact => (SetAcc::Exact(VecSet::default()), 1.0, 0),
            DistMode::Sketch {
                t,
                hash_seed,
                cut_factor,
            } => {
                // t = 1 is a legal sketch but a degenerate detector: its
                // at-capacity estimate is identically 0, so no edge would
                // ever be cut and the congestion guarantee silently breaks.
                assert!(t >= 2, "sketch detection needs capacity t >= 2");
                (SetAcc::Sketch(KmvSketch::new(t)), cut_factor, hash_seed)
            }
        };
        DetectProgram {
            parent_port,
            pending_children: if in_tree { tree.children(v).len() } else { 0 },
            own_part: partition
                .part_of(v)
                .filter(|p| is_active[p.index()])
                .map(|p| p.0),
            acc,
            threshold,
            cut_factor,
            hash_seed,
            cut: false,
            finished: false,
            in_tree,
        }
    });
    assert!(
        !run.metrics.truncated && run.metrics.terminated,
        "detection phase hit SimConfig::max_rounds ({}) before quiescence — \
         the cut set would be truncated; raise the cap",
        dist.sim.max_rounds
    );
    let mut fixed_o = vec![false; g.num_edges()];
    for v in g.nodes() {
        if run.programs[v.index()].cut {
            let (_, e) = tree.parent(v).expect("only non-root nodes cut");
            fixed_o[e.index()] = true;
        }
    }
    (fixed_o, run.metrics)
}

/// One detection sweep on the simulator plus the centralized re-derivation
/// of its bookkeeping — the handoff shared by the partial and full
/// constructions. Returns `(data, o_mark, served, metrics)`.
fn detect_and_sweep(
    g: &Graph,
    tree: &RootedTree,
    partition: &Partition,
    active: &[PartId],
    delta_hat: u32,
    config: &ShortcutConfig,
    dist: &DistConfig,
) -> (SweepData, Vec<bool>, Vec<PartId>, RunMetrics) {
    let (fixed_o, metrics) = run_detection(g, tree, partition, active, delta_hat, config, dist);
    let (data, o_mark, served) = sweep_core(
        g,
        tree,
        partition,
        active,
        delta_hat,
        config,
        CutRule::Fixed(&fixed_o),
    );
    (data, o_mark, served, metrics)
}

/// One distributed Theorem 3.1 sweep over all parts of `partition` with
/// guess `δ̂` (Theorem 1.5, single level of the doubling search).
///
/// In [`DistMode::Exact`] the returned cut set equals the centralized
/// [`crate::partial_shortcut_or_witness`] cut set on the same root
/// edge-for-edge.
///
/// # Panics
///
/// Panics if `δ̂ = 0` or some part node lies outside the component of
/// `root`.
pub fn distributed_partial_shortcut(
    g: &Graph,
    root: NodeId,
    partition: &Partition,
    delta_hat: u32,
    config: &ShortcutConfig,
    dist: &DistConfig,
) -> DistPartialShortcut {
    assert!(delta_hat >= 1, "δ̂ must be at least 1");
    let (tree, metrics_bfs) = run_bfs(g, root, dist);
    assert_parts_in_tree(&tree, partition);
    let active: Vec<PartId> = partition.part_ids().collect();
    let (data, o_mark, served, metrics_shortcut) =
        detect_and_sweep(g, &tree, partition, &active, delta_hat, config, dist);
    // Unlike the full loop, the partial result reports the assembled
    // shortcut in both cases, so it is built unconditionally.
    let shortcut = build_shortcut(g, &tree, partition, &served, &o_mark, partition.num_parts());
    let case_one = case_one_accepts(served.len(), active.len());
    let over_edges = data.over_edges.iter().map(|oe| oe.edge).collect();
    DistPartialShortcut {
        shortcut,
        served,
        case_one,
        over_edges,
        data,
        metrics_bfs,
        metrics_shortcut,
    }
}

/// The full distributed construction: one simulated BFS, then the
/// Observation 2.7 loop with doubling search, each sweep running the
/// detection convergecast on the simulator (Theorem 1.5).
///
/// # Panics
///
/// Panics if some part node lies outside the component of `root`, or if the
/// doubling search exceeds `4n` (impossible in exact mode; in sketch mode it
/// would indicate a pathologically biased hash seed).
pub fn distributed_full_shortcut(
    g: &Graph,
    root: NodeId,
    partition: &Partition,
    config: &ShortcutConfig,
    dist: &DistConfig,
) -> DistFullShortcut {
    let (tree, metrics_bfs) = run_bfs(g, root, dist);
    assert_parts_in_tree(&tree, partition);
    let mut rounds = metrics_bfs.rounds;
    let mut messages = metrics_bfs.messages;
    let mut bits = metrics_bfs.bits;

    let res = run_doubling_search(
        g.num_nodes(),
        partition.num_parts(),
        partition.part_ids().collect(),
        config.initial_delta_hat,
        |active, delta_hat| {
            let (data, o_mark, served, metrics) =
                detect_and_sweep(g, &tree, partition, active, delta_hat, config, dist);
            rounds += metrics.rounds;
            messages += metrics.messages;
            bits += metrics.bits;
            finish_sweep(
                g,
                &tree,
                partition,
                data,
                |served| {
                    build_shortcut(g, &tree, partition, served, &o_mark, partition.num_parts())
                },
                served,
                config,
            )
        },
    );

    DistFullShortcut {
        shortcut: res.shortcut,
        delta_hat: res.delta_hat,
        successful_rounds: res.successful_rounds,
        best_witness: res.best_witness,
        rounds,
        messages,
        bits,
        metrics_bfs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{measure_quality, partial_shortcut_or_witness, SweepOutcome, WitnessMode};
    use lcs_graph::{bfs, gen};

    #[test]
    fn kmv_exact_below_capacity() {
        let mut s = KmvSketch::new(8);
        for v in [5u64, 3, 5, 9, 1] {
            s.insert(v);
        }
        assert_eq!(s.values(), &[1, 3, 5, 9]);
        assert_eq!(s.estimate() as usize, 4);
    }

    #[test]
    fn kmv_merge_equals_union() {
        let mut a = KmvSketch::new(4);
        let mut b = KmvSketch::new(4);
        let mut whole = KmvSketch::new(4);
        for (i, v) in [9u64, 2, 7, 4, 11, 3, 8].iter().enumerate() {
            if i % 2 == 0 {
                a.insert(*v);
            } else {
                b.insert(*v);
            }
            whole.insert(*v);
        }
        a.merge(&b);
        assert_eq!(a.values(), whole.values());
    }

    #[test]
    fn exact_mode_matches_centralized_cut_set_on_grid() {
        let g = gen::grid(8, 8);
        let parts = gen::singleton_parts(&g);
        let partition = Partition::from_parts(&g, parts).unwrap();
        let cfg = ShortcutConfig {
            witness_mode: WitnessMode::Skip,
            ..ShortcutConfig::default()
        };
        let res = distributed_partial_shortcut(
            &g,
            NodeId(0),
            &partition,
            1,
            &cfg,
            &DistConfig::default(),
        );
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let central = partial_shortcut_or_witness(&g, &tree, &partition, 1, &cfg);
        let central_cuts: Vec<EdgeId> = match &central {
            SweepOutcome::Shortcut(ps) => ps.data.over_edges.iter().map(|oe| oe.edge).collect(),
            SweepOutcome::DenseMinor { data, .. } => {
                data.over_edges.iter().map(|oe| oe.edge).collect()
            }
        };
        let mut a = res.over_edges.clone();
        a.sort_unstable();
        let mut b = central_cuts;
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(res.metrics_bfs.terminated && res.metrics_shortcut.terminated);
    }

    #[test]
    fn full_construction_satisfies_bounds_on_rows() {
        let g = gen::grid(8, 8);
        let partition = Partition::from_parts(&g, gen::rows_of_grid(8, 8)).unwrap();
        let res = distributed_full_shortcut(
            &g,
            NodeId(0),
            &partition,
            &ShortcutConfig::default(),
            &DistConfig::default(),
        );
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let q = measure_quality(&g, &partition, &tree, &res.shortcut);
        assert!(q.tree_restricted && q.all_connected());
        assert!(q.max_blocks <= 8 * res.delta_hat + 1);
        assert!(res.rounds > 0 && res.messages > 0);
    }

    #[test]
    #[should_panic(expected = "outside the tree")]
    fn rejects_parts_outside_root_component() {
        let g = lcs_graph::Graph::from_edges(4, [(0, 1), (2, 3)]);
        let partition = Partition::from_parts(&g, vec![vec![NodeId(2)]]).unwrap();
        distributed_partial_shortcut(
            &g,
            NodeId(0),
            &partition,
            1,
            &ShortcutConfig::default(),
            &DistConfig::default(),
        );
    }

    #[test]
    fn sketch_mode_is_deterministic_and_valid() {
        let g = gen::grid(6, 6);
        let parts = gen::singleton_parts(&g);
        let partition = Partition::from_parts(&g, parts).unwrap();
        let cfg = ShortcutConfig {
            witness_mode: WitnessMode::Skip,
            ..ShortcutConfig::default()
        };
        let dist = DistConfig {
            mode: DistMode::Sketch {
                t: 8,
                hash_seed: 0xbeef,
                cut_factor: 1.0,
            },
            ..DistConfig::default()
        };
        let a = distributed_partial_shortcut(&g, NodeId(0), &partition, 1, &cfg, &dist);
        let b = distributed_partial_shortcut(&g, NodeId(0), &partition, 1, &cfg, &dist);
        assert_eq!(a.over_edges, b.over_edges);
        assert_eq!(a.shortcut, b.shortcut);
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let q = measure_quality(&g, &partition, &tree, &a.shortcut);
        assert!(q.tree_restricted);
    }
}
