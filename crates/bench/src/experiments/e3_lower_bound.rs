//! E3 — Lemma 3.2 / Figure 3.2: the lower-bound topology.
//!
//! Our constructed shortcut's measured quality must sit between the lemma's
//! `(δ-1)D/2` lower bound and Theorem 1.2's `O(δD log n)` upper bound, and
//! grow linearly in `δ′D′` — the tightness claim of the paper.

use crate::table::{f2, Table};
use lcs_core::{full_shortcut, measure_quality, Partition, ShortcutConfig};
use lcs_graph::{bfs, gen};

/// Runs E3 and renders the table.
pub fn run(fast: bool) -> String {
    let mut t = Table::new(
        "E3 (Lemma 3.2 / Fig 3.2): measured shortcut quality on the lower-bound topology",
        &[
            "δ'",
            "D'",
            "n",
            "δ̂",
            "quality",
            "LB (δ-1)D/2",
            "paper (δ'-3)D'/6",
            "quality/LB",
            "LB ok",
        ],
    );
    let sweeps: &[(u32, u32)] = if fast {
        &[(5, 24), (6, 36)]
    } else {
        &[
            (5, 24),
            (5, 36),
            (5, 48),
            (6, 36),
            (6, 48),
            (7, 48),
            (8, 60),
        ]
    };
    let cfg = ShortcutConfig::default();
    for &(dp, dd) in sweeps {
        let lb = gen::lower_bound_topology(dp, dd);
        let partition =
            Partition::from_parts(&lb.graph, lb.rows.clone()).expect("rows are valid parts");
        let tree = bfs::bfs_tree(&lb.graph, lb.top_path[0]);
        let res = full_shortcut(&lb.graph, &tree, &partition, &cfg);
        let q = measure_quality(&lb.graph, &partition, &tree, &res.shortcut);
        let quality = f64::from(q.quality());
        let bound = lb.internal_lower_bound();
        t.row(vec![
            dp.to_string(),
            dd.to_string(),
            lb.graph.num_nodes().to_string(),
            res.delta_hat.to_string(),
            q.quality().to_string(),
            f2(bound),
            f2(lb.quality_lower_bound()),
            f2(quality / bound),
            if quality >= bound {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn no_shortcut_beats_the_lemma() {
        let out = super::run(true);
        assert!(!out.contains("NO"));
    }
}
