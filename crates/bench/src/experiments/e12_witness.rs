//! E12 — the certifying algorithm (remark after Theorem 3.1): dense-minor
//! extraction quality.
//!
//! On Case (II) instances: how often the paper's `1/4D` sampling succeeds
//! per attempt, what density the derandomized extraction certifies, and that
//! every produced witness verifies as a minor.

use crate::table::{f2, Table};
use lcs_core::{
    extract_witness_derandomized, extract_witness_sampled, partial_shortcut_or_witness, Partition,
    ShortcutConfig, SweepOutcome, WitnessMode,
};
use lcs_graph::{bfs, gen, minor, NodeId};

/// Runs E12 and renders the table.
pub fn run(fast: bool) -> String {
    let mut t = Table::new(
        "E12 (certifying Theorem 3.1): dense-minor extraction on Case (II) instances",
        &[
            "instance",
            "δ̂",
            "D",
            "|B| edges",
            "sample hit %",
            "derand density",
            "derand verified",
        ],
    );
    let combs: &[(usize, usize)] = if fast {
        &[(10, 20), (12, 24)]
    } else {
        &[(10, 20), (12, 24), (16, 40), (24, 64), (10, 128)]
    };
    let skip = ShortcutConfig {
        witness_mode: WitnessMode::Skip,
        ..ShortcutConfig::default()
    };
    for &(tt, k) in combs {
        let comb = gen::comb(tt, k);
        let partition =
            Partition::from_parts(&comb.graph, comb.parts.clone()).expect("valid parts");
        let tree = bfs::bfs_tree(&comb.graph, NodeId(0));
        let SweepOutcome::DenseMinor { data, .. } =
            partial_shortcut_or_witness(&comb.graph, &tree, &partition, 1, &skip)
        else {
            // Not a Case (II) instance at this size; skip the row.
            continue;
        };
        let b_edges: usize = data.over_edges.iter().map(|oe| oe.parts.len()).sum();

        // Sampling hit rate over independent single attempts.
        let trials: u64 = if fast { 40 } else { 200 };
        let mut hits = 0u64;
        for i in 0..trials {
            if let Some(w) =
                extract_witness_sampled(&comb.graph, &tree, &partition, &data, 1, 0x1000 + i)
            {
                assert!(minor::verify_minor(&comb.graph, &w).is_ok());
                assert!(w.density() > 1.0);
                hits += 1;
            }
        }

        let derand = extract_witness_derandomized(&comb.graph, &tree, &partition, &data);
        let (density, verified) = match derand {
            Some(w) => {
                let ok = minor::verify_minor(&comb.graph, &w).is_ok() && w.density() > 1.0;
                (f2(w.density()), if ok { "yes" } else { "NO" })
            }
            None => ("none".into(), "NO"),
        };
        t.row(vec![
            format!("comb({tt},{k})"),
            "1".into(),
            data.tree_depth.to_string(),
            b_edges.to_string(),
            f2(100.0 * hits as f64 / trials as f64),
            density,
            verified.into(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn derandomized_always_verifies() {
        let out = super::run(true);
        assert!(!out.contains("NO"));
        assert!(!out.contains("none"));
    }
}
