//! The experiment modules E1–E12 (DESIGN.md §6).

pub mod e10_wheel;
pub mod e11_ablation;
pub mod e12_witness;
pub mod e1_partial_bounds;
pub mod e2_full_bounds;
pub mod e3_lower_bound;
pub mod e4_dist_construction;
pub mod e5_partwise;
pub mod e6_mst;
pub mod e7_mincut;
pub mod e8_genus;
pub mod e9_treewidth;

use lcs_core::Partition;
use lcs_graph::{bfs, gen, Graph, NodeId, RootedTree};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A named test instance: graph + partition + BFS tree from node 0.
pub(crate) struct Instance {
    pub name: &'static str,
    pub graph: Graph,
    pub partition: Partition,
    pub tree: RootedTree,
}

pub(crate) fn instance(name: &'static str, graph: Graph, parts: Vec<Vec<NodeId>>) -> Instance {
    let partition = Partition::from_parts(&graph, parts).expect("valid parts");
    let tree = bfs::bfs_tree(&graph, NodeId(0));
    Instance {
        name,
        graph,
        partition,
        tree,
    }
}

pub(crate) fn random_parts(g: &Graph, k: usize, seed: u64) -> Vec<Vec<NodeId>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    gen::random_connected_parts(g, k, &mut rng)
}

/// The standard family zoo used by E1/E2: one instance per graph class the
/// paper's corollaries cover.
pub(crate) fn family_zoo(fast: bool) -> Vec<Instance> {
    let s = if fast { 12 } else { 24 };
    let mut zoo = Vec::new();
    // Planar grid with row parts (δ < 3).
    zoo.push(instance(
        "grid rows",
        gen::grid(s, s),
        gen::rows_of_grid(s, s),
    ));
    // Planar grid with random Voronoi parts.
    let g = gen::grid(s, s);
    let parts = random_parts(&g, s * s / 8, 101);
    zoo.push(instance("grid voronoi", g, parts));
    // Planar grid with singleton parts: k = n exceeds the 8D threshold, so
    // the sweep genuinely cuts edges (non-empty O).
    let g = gen::grid(s, s);
    let parts = gen::singleton_parts(&g);
    zoo.push(instance("grid singletons", g, parts));
    // Torus (genus 1).
    let g = gen::torus(s, s);
    let parts = random_parts(&g, s * s / 8, 102);
    zoo.push(instance("torus voronoi", g, parts));
    // Bounded treewidth: 4-th power of a path (δ <= 4).
    let n = if fast { 300 } else { 800 };
    let g = gen::path_power(n, 4);
    let parts = random_parts(&g, n / 16, 103);
    zoo.push(instance("path-power-4", g, parts));
    // Random 3-tree (δ <= 3).
    let mut rng = SmallRng::seed_from_u64(104);
    let g = gen::ktree(n, 3, &mut rng);
    let parts = random_parts(&g, n / 16, 105);
    zoo.push(instance("3-tree", g, parts));
    // The adversarial comb (forces Case II at δ̂ = 1).
    let comb = gen::comb(10, if fast { 20 } else { 24 });
    zoo.push(instance("comb 10", comb.graph, comb.parts));
    // Wheel with one rim part.
    let w = if fast { 64 } else { 256 };
    let g = gen::wheel(w);
    let rim: Vec<NodeId> = (1..w as u32).map(NodeId).collect();
    zoo.push(instance("wheel rim", g, vec![rim]));
    zoo
}
