//! E4 — Theorem 1.5: distributed construction cost.
//!
//! Rounds of the simulated construction (BFS + detection + dissemination)
//! against the `Õ(δ̂D)` target, and messages against `Õ(m)`; the exact mode
//! must reproduce the centralized cut set (checked in unit tests), the
//! sketch mode trades accuracy for `O(D·t)` detection.

use crate::experiments::random_parts;
use crate::table::{f2, Table};
use lcs_core::dist::{distributed_partial_shortcut, DistConfig, DistMode};
use lcs_core::{Partition, ShortcutConfig, WitnessMode};
use lcs_graph::{bfs, gen, NodeId};

/// Runs E4 and renders the table.
pub fn run(fast: bool) -> String {
    let mut t = Table::new(
        "E4 (Theorem 1.5): distributed construction — rounds vs δ̂D, messages vs m",
        &[
            "graph",
            "n",
            "m",
            "D",
            "k",
            "mode",
            "rounds",
            "rounds/(δ̂D)",
            "msgs",
            "msgs/m",
            "|O|",
            "case I",
        ],
    );
    let sides: &[usize] = if fast { &[12] } else { &[12, 16, 24, 32] };
    let cfg = ShortcutConfig {
        witness_mode: WitnessMode::Skip,
        ..ShortcutConfig::default()
    };
    for &s in sides {
        let g = gen::grid(s, s);
        let parts = random_parts(&g, s * s / 4, 42);
        let partition = Partition::from_parts(&g, parts).expect("valid parts");
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let d = tree.depth_of_tree();
        for (mode_name, mode) in [
            ("exact", DistMode::Exact),
            (
                "sketch t=16",
                DistMode::Sketch {
                    t: 16,
                    hash_seed: 0xabcd,
                    cut_factor: 1.0,
                },
            ),
            (
                "sketch t=32",
                DistMode::Sketch {
                    t: 32,
                    hash_seed: 0xabcd,
                    cut_factor: 1.0,
                },
            ),
        ] {
            let dist = DistConfig {
                mode,
                ..DistConfig::default()
            };
            let res = distributed_partial_shortcut(&g, NodeId(0), &partition, 1, &cfg, &dist);
            let rounds = res.metrics_bfs.rounds + res.metrics_shortcut.rounds;
            let msgs = res.metrics_bfs.messages + res.metrics_shortcut.messages;
            t.row(vec![
                format!("grid {s}x{s}"),
                g.num_nodes().to_string(),
                g.num_edges().to_string(),
                d.to_string(),
                partition.num_parts().to_string(),
                mode_name.into(),
                rounds.to_string(),
                f2(rounds as f64 / f64::from(d.max(1))),
                msgs.to_string(),
                f2(msgs as f64 / g.num_edges() as f64),
                res.over_edges.len().to_string(),
                if res.case_one {
                    "yes".into()
                } else {
                    "no".into()
                },
            ]);
        }
    }
    t.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let out = super::run(true);
        assert!(out.contains("exact"));
        assert!(out.contains("sketch t=16"));
    }
}
