//! E7 — Corollary 1.7: distributed min-cut by greedy tree packing +
//! 1-respecting cuts vs exact Stoer–Wagner.
//!
//! In the corollary's regime the min cut is small (`λ <= 2δ`); the
//! approximation typically finds it exactly. Every estimate is a realized
//! cut (an upper bound on λ).

use crate::table::{f2, Table};
use lcs_algos::mincut::{
    approx_mincut_distributed, exact_mincut_via_packing, stoer_wagner, MincutConfig,
};
use lcs_graph::{gen, Graph, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runs E7 and renders the table.
pub fn run(fast: bool) -> String {
    let mut t = Table::new(
        "E7 (Corollary 1.7): min-cut — tree packing + 1-respecting vs Stoer-Wagner",
        &[
            "graph",
            "n",
            "m",
            "λ exact",
            "1-respect",
            "2-respect",
            "ratio",
            "trees",
            "construction rounds",
            "sound",
        ],
    );
    let mut rng = SmallRng::seed_from_u64(77);
    let mut cases: Vec<(String, Graph)> = vec![
        ("cycle 32".into(), gen::cycle(32)),
        ("grid 8x8".into(), gen::grid(8, 8)),
        ("torus 6x6".into(), gen::torus(6, 6)),
        ("3-tree 60".into(), gen::ktree(60, 3, &mut rng)),
    ];
    if !fast {
        cases.push(("grid 12x12".into(), gen::grid(12, 12)));
        cases.push((
            "grid+8 chords".into(),
            gen::grid_plus_random_edges(8, 8, 8, &mut rng),
        ));
        cases.push(("gnm 80/200".into(), gen::gnm_connected(80, 200, &mut rng)));
    }
    for (name, g) in cases {
        let exact = stoer_wagner(&g);
        let rep = approx_mincut_distributed(&g, NodeId(0), &MincutConfig::default());
        let two = exact_mincut_via_packing(&g, NodeId(0), rep.trees.max(3));
        let sound = rep.estimate >= exact && two == exact;
        t.row(vec![
            name,
            g.num_nodes().to_string(),
            g.num_edges().to_string(),
            exact.to_string(),
            rep.estimate.to_string(),
            two.to_string(),
            f2(rep.estimate as f64 / exact.max(1) as f64),
            rep.trees.to_string(),
            rep.rounds.total().to_string(),
            if sound { "yes".into() } else { "NO".into() },
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn estimates_are_upper_bounds() {
        let out = super::run(true);
        assert!(!out.contains("NO"));
    }
}
