//! E9 — Corollary 3.4 / Lemma 3.3: shortcut quality vs treewidth.
//!
//! Family: the `k`-th power of a path with `n = k·D + 1` nodes, so the
//! diameter stays `D` while treewidth (= δ bound) is exactly `k`. The
//! measured quality should grow ~linearly in `k` at fixed `D`.

use crate::experiments::random_parts;
use crate::table::{f2, Table};
use lcs_core::{full_shortcut, measure_quality, Partition, ShortcutConfig};
use lcs_graph::{bfs, gen, minor, NodeId};

/// Runs E9 and renders the table.
pub fn run(fast: bool) -> String {
    let d = if fast { 40 } else { 75 };
    let mut t = Table::new(
        "E9 (Corollary 3.4): quality vs treewidth k (path powers, diameter fixed)",
        &[
            "k",
            "n",
            "m/n",
            "density LB",
            "δ̂",
            "quality",
            "quality/(k·D)",
        ],
    );
    let ks: &[usize] = if fast { &[1, 2, 4] } else { &[1, 2, 4, 8, 16] };
    let cfg = ShortcutConfig::default();
    for &k in ks {
        let n = k * d + 1;
        let g = gen::path_power(n, k);
        // Fixed part count across the sweep so only k varies.
        let parts = random_parts(&g, 20.min(n / 2), 300 + k as u64);
        let partition = Partition::from_parts(&g, parts).expect("valid parts");
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let res = full_shortcut(&g, &tree, &partition, &cfg);
        let q = measure_quality(&g, &partition, &tree, &res.shortcut);
        let density = minor::greedy_contraction_density(&g, None).density;
        t.row(vec![
            k.to_string(),
            n.to_string(),
            f2(g.density()),
            f2(density),
            res.delta_hat.to_string(),
            q.quality().to_string(),
            f2(f64::from(q.quality()) / (k as f64 * d as f64)),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let out = super::run(true);
        assert!(out.contains("E9"));
    }
}
