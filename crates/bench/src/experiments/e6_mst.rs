//! E6 — Corollary 1.6: distributed MST round complexity by shortcut
//! provider.
//!
//! The wheel family (diameter 2, rim fragments of diameter Θ(n)) shows the
//! paper's separation: minor-sweep shortcuts give ~flat rounds in `n`, the
//! `D+√n` baseline grows like `√n`, and no shortcuts grow linearly. On
//! planar grids (compact Voronoi fragments) all providers are comparable —
//! grids are an easy instance. Every run is checked against Kruskal.

use crate::table::Table;
use lcs_algos::mst::{distributed_mst, kruskal, BoruvkaConfig, ShortcutProvider};
use lcs_core::ShortcutConfig;
use lcs_graph::weights::EdgeWeights;
use lcs_graph::{gen, Graph, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn run_one(g: &Graph, provider: ShortcutProvider, seed: u64) -> (u64, usize, bool) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let weights = EdgeWeights::random_unique(g, &mut rng);
    let reference = kruskal(g, &weights);
    let cfg = BoruvkaConfig {
        provider,
        ..BoruvkaConfig::default()
    };
    let report = distributed_mst(g, &weights, NodeId(0), &cfg);
    (
        report.rounds.total(),
        report.phases,
        report.edges == reference,
    )
}

/// Runs E6 and renders the tables.
pub fn run(fast: bool) -> String {
    let mut out = String::new();

    // Wheel sweep: D = 2 fixed, n grows.
    let mut t = Table::new(
        "E6a (Corollary 1.6): MST rounds on wheels (D = 2, rim diameter Θ(n))",
        &["n", "minor-sweep", "baseline D+√n", "no shortcuts", "exact"],
    );
    let wheel_sizes: &[usize] = if fast {
        &[64, 128]
    } else {
        &[64, 128, 256, 512, 1024]
    };
    for &n in wheel_sizes {
        let g = gen::wheel(n);
        let (r_sweep, _, ok1) = run_one(
            &g,
            ShortcutProvider::MinorSweepOracle(ShortcutConfig::default()),
            7,
        );
        let (r_base, _, ok2) = run_one(&g, ShortcutProvider::Baseline, 7);
        let (r_none, _, ok3) = run_one(&g, ShortcutProvider::None, 7);
        t.row(vec![
            n.to_string(),
            r_sweep.to_string(),
            r_base.to_string(),
            r_none.to_string(),
            if ok1 && ok2 && ok3 {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // Grid sweep: all providers comparable (easy instance).
    let mut t = Table::new(
        "E6b: MST rounds on planar grids (compact fragments — an easy case)",
        &[
            "side",
            "n",
            "minor-sweep",
            "baseline D+√n",
            "no shortcuts",
            "exact",
        ],
    );
    let grid_sides: &[usize] = if fast { &[8, 12] } else { &[8, 12, 16, 24] };
    for &s in grid_sides {
        let g = gen::grid(s, s);
        let (r_sweep, _, ok1) = run_one(
            &g,
            ShortcutProvider::MinorSweepOracle(ShortcutConfig::default()),
            9,
        );
        let (r_base, _, ok2) = run_one(&g, ShortcutProvider::Baseline, 9);
        let (r_none, _, ok3) = run_one(&g, ShortcutProvider::None, 9);
        t.row(vec![
            s.to_string(),
            g.num_nodes().to_string(),
            r_sweep.to_string(),
            r_base.to_string(),
            r_none.to_string(),
            if ok1 && ok2 && ok3 {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_provider_is_exact() {
        let out = super::run(true);
        assert!(!out.contains("NO"));
    }
}
