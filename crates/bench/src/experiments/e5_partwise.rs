//! E5 — Lemma 2.8 / Section 2: part-wise aggregation rounds versus the
//! `O(c + d·log n)` random-delays bound.
//!
//! For each instance we solve part-wise aggregation over `G[P_i] + H_i` and
//! report measured rounds next to the shortcut's measured congestion `c` and
//! dilation `d`; the ratio `rounds / (c + d·log₂ n)` should be a small
//! constant.

use crate::experiments::family_zoo;
use crate::table::{f2, Table};
use lcs_congest::protocols::AggOp;
use lcs_core::{full_shortcut, measure_quality, ShortcutConfig};
use lcs_graph::{bfs, gen, NodeId};
use lcs_partwise::{route_multiple_unicasts, solve_partwise, PartwiseConfig, UnicastConfig};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Runs E5 and renders both tables (aggregation + multiple unicasts).
pub fn run(fast: bool) -> String {
    let mut out = aggregation_table(fast);
    out.push('\n');
    out.push_str(&unicast_table(fast));
    out
}

fn aggregation_table(fast: bool) -> String {
    let mut t = Table::new(
        "E5a (Lemma 2.8): part-wise aggregation rounds vs c + d·log₂n",
        &[
            "family",
            "n",
            "k",
            "c",
            "d",
            "rounds",
            "c+d·log₂n",
            "ratio",
            "correct",
        ],
    );
    let cfg = ShortcutConfig::default();
    for inst in family_zoo(fast) {
        let built = full_shortcut(&inst.graph, &inst.tree, &inst.partition, &cfg);
        let q = measure_quality(&inst.graph, &inst.partition, &inst.tree, &built.shortcut);
        let values: Vec<u64> = (0..inst.graph.num_nodes() as u64)
            .map(|x| (x * 131) % 997)
            .collect();
        let out = solve_partwise(
            &inst.graph,
            &inst.partition,
            &built.shortcut,
            &values,
            AggOp::Min,
            None,
            &PartwiseConfig::default(),
        );
        let expect = lcs_partwise::centralized_aggregate(&inst.partition, &values, AggOp::Min);
        let got: Vec<u64> = out.results.iter().map(|r| r.unwrap_or(u64::MAX)).collect();
        let correct = got == expect && out.all_members_informed;
        let c = q.max_congestion;
        let d = q.max_dilation_upper;
        let budget = f64::from(c) + f64::from(d) * (inst.graph.num_nodes() as f64).log2().max(1.0);
        t.row(vec![
            inst.name.into(),
            inst.graph.num_nodes().to_string(),
            inst.partition.num_parts().to_string(),
            c.to_string(),
            d.to_string(),
            out.metrics.rounds.to_string(),
            f2(budget),
            f2(out.metrics.rounds as f64 / budget),
            if correct { "yes".into() } else { "NO".into() },
        ]);
    }
    t.render()
}

/// Multiple unicasts (the paper's other §1.2 primitive): measured delivery
/// rounds against the LMR `O(c + d)` target.
fn unicast_table(fast: bool) -> String {
    let mut t = Table::new(
        "E5b (LMR scheduling): multiple unicasts along tree paths, rounds vs c + d",
        &[
            "graph",
            "packets",
            "c",
            "d",
            "rounds",
            "rounds/(c+d)",
            "delivered",
        ],
    );
    let sides: &[usize] = if fast { &[8] } else { &[8, 16, 24] };
    for &s in sides {
        let g = gen::grid(s, s);
        let tree = bfs::bfs_tree(&g, NodeId(0));
        for &k in if fast {
            &[8usize, 32][..]
        } else {
            &[8usize, 32, 128][..]
        } {
            let mut rng = SmallRng::seed_from_u64(500 + k as u64);
            let mut nodes: Vec<NodeId> = g.nodes().collect();
            nodes.shuffle(&mut rng);
            let pairs: Vec<(NodeId, NodeId)> = (0..k.min(nodes.len() / 2))
                .map(|i| (nodes[2 * i], nodes[2 * i + 1]))
                .collect();
            let out = route_multiple_unicasts(&g, &tree, &pairs, &UnicastConfig::default());
            let budget = u64::from(out.congestion + out.dilation).max(1);
            t.row(vec![
                format!("grid {s}x{s}"),
                pairs.len().to_string(),
                out.congestion.to_string(),
                out.dilation.to_string(),
                out.metrics.rounds.to_string(),
                f2(out.metrics.rounds as f64 / budget as f64),
                format!("{}/{}", out.delivered, pairs.len()),
            ]);
        }
    }
    t.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn aggregation_is_always_correct() {
        let out = super::run(true);
        assert!(!out.contains("NO"));
    }
}
