//! E1 — Theorem 3.1: tree-restricted `8δ̂D`-congestion `8δ̂`-block partial
//! shortcuts.
//!
//! For each family instance, run the sweep at the smallest `δ̂` that lands
//! in Case (I) and check the measured congestion / block number against the
//! theorem's thresholds. The `bounds ok` column is the reproduction claim:
//! it must read `yes` everywhere.

use crate::experiments::family_zoo;
use crate::table::Table;
use lcs_core::{measure_quality, partial_shortcut_or_witness, ShortcutConfig, SweepOutcome};

/// Runs E1 and renders the table.
pub fn run(fast: bool) -> String {
    let mut t = Table::new(
        "E1 (Theorem 3.1): partial shortcuts — measured vs 8δ̂D congestion, 8δ̂ blocks",
        &[
            "family",
            "n",
            "D",
            "k",
            "δ̂",
            "served",
            "|O|",
            "cong",
            "c=8δ̂D",
            "blocks",
            "8δ̂+1",
            "bounds ok",
        ],
    );
    let cfg = ShortcutConfig::default();
    for inst in family_zoo(fast) {
        let mut delta_hat = 1;
        let ps = loop {
            match partial_shortcut_or_witness(
                &inst.graph,
                &inst.tree,
                &inst.partition,
                delta_hat,
                &cfg,
            ) {
                SweepOutcome::Shortcut(ps) => break ps,
                SweepOutcome::DenseMinor { .. } => delta_hat *= 2,
            }
        };
        let q = measure_quality(&inst.graph, &inst.partition, &inst.tree, &ps.shortcut);
        let served_blocks = ps
            .served
            .iter()
            .map(|&p| q.per_part[p.index()].blocks)
            .max()
            .unwrap_or(0);
        let c = ps.data.congestion_threshold;
        let ok = q.max_congestion <= c
            && served_blocks <= 8 * delta_hat + 1
            && q.tree_restricted
            && ps.served.iter().all(|&p| q.per_part[p.index()].connected);
        t.row(vec![
            inst.name.into(),
            inst.graph.num_nodes().to_string(),
            inst.tree.depth_of_tree().to_string(),
            inst.partition.num_parts().to_string(),
            delta_hat.to_string(),
            ps.served.len().to_string(),
            ps.data.over_edges.len().to_string(),
            q.max_congestion.to_string(),
            c.to_string(),
            served_blocks.to_string(),
            (8 * delta_hat + 1).to_string(),
            if ok { "yes".into() } else { "NO".into() },
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn bounds_hold_everywhere() {
        let out = super::run(true);
        assert!(out.contains("yes"));
        assert!(!out.contains("NO"));
    }
}
