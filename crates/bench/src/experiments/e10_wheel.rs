//! E10 — the Section 2 wheel example: diameter 2, one rim part of induced
//! diameter Θ(n). Aggregation without shortcuts needs Θ(n) rounds; with the
//! constructed shortcut it is O(1).

use crate::table::{f2, Table};
use lcs_congest::protocols::AggOp;
use lcs_core::{baseline, full_shortcut, measure_quality, Partition, ShortcutConfig};
use lcs_graph::{bfs, gen, NodeId};
use lcs_partwise::{solve_partwise, PartwiseConfig};

/// Runs E10 and renders the table.
pub fn run(fast: bool) -> String {
    let mut t = Table::new(
        "E10 (Section 2 wheel): aggregation rounds, rim part, with vs without shortcuts",
        &[
            "n",
            "rim diam",
            "shortcut dil",
            "rounds none",
            "rounds shortcut",
            "speedup",
        ],
    );
    let exps: &[usize] = if fast { &[5, 7] } else { &[5, 6, 7, 8, 9, 10] };
    let cfg = ShortcutConfig::default();
    for &e in exps {
        let n = 1usize << e;
        let g = gen::wheel(n);
        let rim: Vec<NodeId> = (1..n as u32).map(NodeId).collect();
        let partition = Partition::from_parts(&g, vec![rim]).expect("rim is connected");
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let built = full_shortcut(&g, &tree, &partition, &cfg);
        let q = measure_quality(&g, &partition, &tree, &built.shortcut);
        let values: Vec<u64> = (0..n as u64).collect();
        let with = solve_partwise(
            &g,
            &partition,
            &built.shortcut,
            &values,
            AggOp::Max,
            None,
            &PartwiseConfig::default(),
        );
        let without = solve_partwise(
            &g,
            &partition,
            &baseline::no_shortcut(&partition),
            &values,
            AggOp::Max,
            None,
            &PartwiseConfig::default(),
        );
        assert_eq!(with.results, without.results, "results must agree");
        t.row(vec![
            n.to_string(),
            ((n - 1) / 2).to_string(),
            q.max_dilation_upper.to_string(),
            without.metrics.rounds.to_string(),
            with.metrics.rounds.to_string(),
            f2(without.metrics.rounds as f64 / with.metrics.rounds.max(1) as f64),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn shortcut_wins_big() {
        let out = super::run(true);
        assert!(out.contains("E10"));
    }
}
