//! E2 — Theorem 1.2 via Observations 2.6/2.7: full shortcuts with
//! congestion `O(δD log n)` and dilation `O(δD)`.
//!
//! The congestion bound per the construction is `8δ̂D · rounds` with
//! `rounds <= log₂ k`, and the dilation bound is `(8δ̂+1)(2D+1)`.

use crate::experiments::family_zoo;
use crate::table::Table;
use lcs_core::{full_shortcut, measure_quality, ShortcutConfig};

/// Runs E2 and renders the table.
pub fn run(fast: bool) -> String {
    let mut t = Table::new(
        "E2 (Theorem 1.2): full shortcuts — congestion vs 8δ̂D·rounds, dilation vs (8δ̂+1)(2D+1)",
        &[
            "family",
            "n",
            "D",
            "k",
            "δ̂",
            "rounds",
            "cong",
            "cong bound",
            "dil",
            "dil bound",
            "quality",
            "bounds ok",
        ],
    );
    let cfg = ShortcutConfig::default();
    for inst in family_zoo(fast) {
        let res = full_shortcut(&inst.graph, &inst.tree, &inst.partition, &cfg);
        let q = measure_quality(&inst.graph, &inst.partition, &inst.tree, &res.shortcut);
        let d = inst.tree.depth_of_tree();
        let cong_bound = 8 * res.delta_hat * d * res.successful_rounds.max(1) as u32;
        let dil_bound = (8 * res.delta_hat + 1) * (2 * d + 1);
        let ok = q.max_congestion <= cong_bound
            && q.max_dilation_upper <= dil_bound
            && q.tree_restricted
            && q.all_connected();
        t.row(vec![
            inst.name.into(),
            inst.graph.num_nodes().to_string(),
            d.to_string(),
            inst.partition.num_parts().to_string(),
            res.delta_hat.to_string(),
            res.successful_rounds.to_string(),
            q.max_congestion.to_string(),
            cong_bound.to_string(),
            q.max_dilation_upper.to_string(),
            dil_bound.to_string(),
            q.quality().to_string(),
            if ok { "yes".into() } else { "NO".into() },
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn bounds_hold_everywhere() {
        let out = super::run(true);
        assert!(!out.contains("NO"));
    }
}
