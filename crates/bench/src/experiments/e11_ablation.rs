//! E11 — ablations on the construction's knobs.
//!
//! (a) Sketch size `t`: how closely the randomized detector reproduces the
//!     exact cut set, and the congestion of the resulting shortcut.
//! (b) Congestion factor (the paper's constant 8): smaller thresholds cut
//!     more edges — fewer blocks but more congested rounds, and below the
//!     paper's constant the witness extraction loses its guarantee.

use crate::table::{f2, Table};
use lcs_core::dist::{distributed_partial_shortcut, DistConfig, DistMode};
use lcs_core::{
    measure_quality, partial_shortcut_or_witness, Partition, ShortcutConfig, SweepOutcome,
    WitnessMode,
};
use lcs_graph::{bfs, gen, EdgeId, NodeId};

/// Runs E11 and renders both ablation tables.
pub fn run(fast: bool) -> String {
    let mut out = String::new();
    out.push_str(&sketch_ablation(fast));
    out.push('\n');
    out.push_str(&constant_ablation(fast));
    out
}

fn sketch_ablation(fast: bool) -> String {
    // Singleton parts: k = n exceeds c = 8D, so the detector has real
    // overcongested edges to find.
    let side = if fast { 12 } else { 24 };
    let g = gen::grid(side, side);
    let parts = gen::singleton_parts(&g);
    let partition = Partition::from_parts(&g, parts).expect("valid parts");
    let cfg = ShortcutConfig {
        witness_mode: WitnessMode::Skip,
        ..ShortcutConfig::default()
    };
    let tree = bfs::bfs_tree(&g, NodeId(0));

    // Exact reference cut set.
    let exact =
        distributed_partial_shortcut(&g, NodeId(0), &partition, 1, &cfg, &DistConfig::default());
    let mut exact_cuts: Vec<EdgeId> = exact.over_edges.clone();
    exact_cuts.sort_unstable();

    let mut t = Table::new(
        "E11a: sketch size t vs detection accuracy (grid, δ̂ = 1)",
        &[
            "t",
            "|O| sketch",
            "|O| exact",
            "sym diff",
            "cong",
            "detect rounds",
            "served",
        ],
    );
    let ts: &[usize] = if fast { &[4, 16] } else { &[4, 8, 16, 32, 64] };
    for &tt in ts {
        let dist = DistConfig {
            mode: DistMode::Sketch {
                t: tt,
                hash_seed: 0x5eed,
                cut_factor: 1.0,
            },
            ..DistConfig::default()
        };
        let res = distributed_partial_shortcut(&g, NodeId(0), &partition, 1, &cfg, &dist);
        let mut cuts = res.over_edges.clone();
        cuts.sort_unstable();
        let sym = cuts.iter().filter(|e| !exact_cuts.contains(e)).count()
            + exact_cuts.iter().filter(|e| !cuts.contains(e)).count();
        let q = measure_quality(&g, &partition, &tree, &res.shortcut);
        t.row(vec![
            tt.to_string(),
            cuts.len().to_string(),
            exact_cuts.len().to_string(),
            sym.to_string(),
            q.max_congestion.to_string(),
            res.metrics_shortcut.rounds.to_string(),
            res.served.len().to_string(),
        ]);
    }
    t.render()
}

fn constant_ablation(fast: bool) -> String {
    let comb = gen::comb(10, if fast { 20 } else { 28 });
    let partition = Partition::from_parts(&comb.graph, comb.parts.clone()).expect("valid parts");
    let tree = bfs::bfs_tree(&comb.graph, NodeId(0));

    let mut t = Table::new(
        "E11b: congestion factor (paper constant 8) on the comb at δ̂ = 1",
        &[
            "factor",
            "c",
            "case",
            "|O|",
            "served",
            "cong",
            "blocks",
            "witness density",
        ],
    );
    for factor in [1u32, 2, 4, 8, 16] {
        let cfg = ShortcutConfig {
            congestion_factor: factor,
            ..ShortcutConfig::default()
        };
        match partial_shortcut_or_witness(&comb.graph, &tree, &partition, 1, &cfg) {
            SweepOutcome::Shortcut(ps) => {
                let q = measure_quality(&comb.graph, &partition, &tree, &ps.shortcut);
                t.row(vec![
                    factor.to_string(),
                    ps.data.congestion_threshold.to_string(),
                    "I".into(),
                    ps.data.over_edges.len().to_string(),
                    ps.served.len().to_string(),
                    q.max_congestion.to_string(),
                    q.max_blocks.to_string(),
                    "-".into(),
                ]);
            }
            SweepOutcome::DenseMinor { witness, data } => {
                t.row(vec![
                    factor.to_string(),
                    data.congestion_threshold.to_string(),
                    "II".into(),
                    data.over_edges.len().to_string(),
                    "0".into(),
                    "-".into(),
                    "-".into(),
                    witness
                        .map(|w| f2(w.density()))
                        .unwrap_or_else(|| "none".into()),
                ]);
            }
        }
    }
    t.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let out = super::run(true);
        assert!(out.contains("E11a"));
        assert!(out.contains("E11b"));
    }
}
