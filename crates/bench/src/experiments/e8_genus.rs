//! E8 — Corollary 1.4: shortcut quality vs genus.
//!
//! Family: planar grid plus `g` random chords (genus <= g; minor density
//! grows like √g). The measured quality and the doubling search's `δ̂`
//! should grow sublinearly in `g` — the √g shape of the corollary —
//! alongside the certified density lower bound.

use crate::experiments::random_parts;
use crate::table::{f2, Table};
use lcs_core::{full_shortcut, measure_quality, Partition, ShortcutConfig};
use lcs_graph::{bfs, gen, minor, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runs E8 and renders the table.
pub fn run(fast: bool) -> String {
    let mut t = Table::new(
        "E8 (Corollary 1.4): quality vs genus proxy g (grid + g random chords)",
        &[
            "g",
            "√g",
            "n",
            "m",
            "D",
            "δ̂",
            "density LB",
            "quality",
            "bound √g·D·log₂n",
            "within bound",
        ],
    );
    let side = if fast { 12 } else { 20 };
    let genus: &[usize] = if fast {
        &[0, 8, 32]
    } else {
        &[0, 4, 16, 64, 256]
    };
    let cfg = ShortcutConfig::default();
    for &gx in genus {
        let mut rng = SmallRng::seed_from_u64(88 + gx as u64);
        let g = if gx == 0 {
            gen::grid(side, side)
        } else {
            gen::grid_plus_random_edges(side, side, gx, &mut rng)
        };
        let parts = random_parts(&g, side * side / 8, 200 + gx as u64);
        let partition = Partition::from_parts(&g, parts).expect("valid parts");
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let d = tree.depth_of_tree();
        let res = full_shortcut(&g, &tree, &partition, &cfg);
        let q = measure_quality(&g, &partition, &tree, &res.shortcut);
        let density = minor::greedy_contraction_density(&g, None).density;
        let sqrt_g = (gx as f64).sqrt().max(1.0);
        // Corollary 1.4 promises quality O(√g·D·log n); the key observation
        // in this family is that chords shrink D faster than they raise δ,
        // so the measured quality *falls* while staying within the bound.
        let bound = sqrt_g * f64::from(d.max(1)) * (g.num_nodes() as f64).log2();
        t.row(vec![
            gx.to_string(),
            f2(sqrt_g),
            g.num_nodes().to_string(),
            g.num_edges().to_string(),
            d.to_string(),
            res.delta_hat.to_string(),
            f2(density),
            q.quality().to_string(),
            f2(bound),
            if f64::from(q.quality()) <= bound {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke() {
        let out = super::run(true);
        assert!(out.contains("E8"));
    }
}
