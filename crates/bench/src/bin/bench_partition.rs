//! Partition-source quality bench: emits `BENCH_partition.json`.
//!
//! Usage:
//!
//! ```text
//! bench_partition [--fast] [--out DIR]
//! ```
//!
//! For each minor-free family (planar grid, genus-1 torus, treewidth-3
//! k-tree) the harness builds the full shortcut on the *same* graph under
//! every applicable [`PartitionSource`] — `rows` (the grid-shaped
//! synthetic), `voronoi` (seeded random growth), and `separator` (the
//! nested-dissection level of `lcs_separator`) — and measures where each
//! lands inside the Theorem 1.1 envelope:
//!
//! - `c_cong = congestion / (δ̂ · D · (log₂ n + 1))`, analytic bound 8
//!   (the per-sweep threshold times the sweep count),
//! - `c_dil  = dilation / (δ̂ · D)`, analytic bound 27 (Observation 2.6),
//! - `c_blocks = blocks / δ̂`, analytic bound 9 (Definition 2.3).
//!
//! Every row is asserted inside the envelope, and on the grid the
//! separator source must land constants **no worse than the best
//! synthetic** source — the quality gate of the dissection engine: a
//! partition computed from the graph alone must not lose to the
//! hand-crafted one that knows the embedding.
//!
//! The full run covers n = 1e4 per family (`--fast` drops to n ≈ 1e3 for
//! the CI smoke). Regenerate with:
//!
//! ```text
//! cargo run --release -p lcs_bench --bin bench_partition -- --out .
//! ```

use lcs_core::{full_shortcut, measure_quality, Partition, PartitionSource, ShortcutConfig};
use lcs_graph::{bfs, gen, Graph, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

/// Theorem 1.1 envelope constants — must match `tests/bounds.rs`.
const C_CONG: f64 = 8.0;
const C_DIL: f64 = 27.0;
const C_BLOCKS: f64 = 9.0;

/// Fixed seed of the voronoi source rows (quality, not robustness, is
/// measured here; the seeded grower is pinned by this one u64).
const VORONOI_SEED: u64 = 7;

struct Row {
    family: &'static str,
    n: u64,
    m: u64,
    source: &'static str,
    parts: usize,
    delta_hat: u32,
    depth: u32,
    congestion: u32,
    dilation: u32,
    blocks: u32,
    c_cong: f64,
    c_dil: f64,
    c_blocks: f64,
    wall_ms: f64,
}

/// Builds the shortcut under one source and measures its constants.
fn measure(family: &'static str, g: &Graph, source: &PartitionSource) -> Row {
    let parts = source.resolve(g);
    let partition = Partition::from_parts_covering(g, parts)
        .unwrap_or_else(|e| panic!("{family}/{}: {e}", source.name()));
    let tree = bfs::bfs_tree(g, NodeId(0));
    let t0 = Instant::now();
    let built = full_shortcut(g, &tree, &partition, &ShortcutConfig::default());
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let q = measure_quality(g, &partition, &tree, &built.shortcut);
    assert!(
        q.tree_restricted && q.all_connected(),
        "{family}/{}: the shortcut must be valid",
        source.name()
    );
    let n = g.num_nodes() as f64;
    let d = f64::from(tree.depth_of_tree().max(1));
    let delta_hat = f64::from(built.delta_hat.max(1));
    let log_n = n.log2() + 1.0;
    let row = Row {
        family,
        n: g.num_nodes() as u64,
        m: g.num_edges() as u64,
        source: source.name(),
        parts: partition.num_parts(),
        delta_hat: built.delta_hat,
        depth: tree.depth_of_tree(),
        congestion: q.max_congestion,
        dilation: q.max_dilation_upper,
        blocks: q.max_blocks,
        c_cong: f64::from(q.max_congestion) / (delta_hat * d * log_n),
        c_dil: f64::from(q.max_dilation_upper) / (delta_hat * d),
        c_blocks: f64::from(q.max_blocks) / delta_hat,
        wall_ms,
    };
    assert!(
        row.c_cong <= C_CONG && row.c_dil <= C_DIL && row.c_blocks <= C_BLOCKS,
        "{family}/{}: outside the Theorem 1.1 envelope \
         (c_cong={:.3}, c_dil={:.3}, c_blocks={:.3})",
        source.name(),
        row.c_cong,
        row.c_dil,
        row.c_blocks
    );
    row
}

fn render(rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"bench_partition/v1\",\n");
    out.push_str(
        "  \"note\": \"Theorem 1.1 constants per partition source on the same graph: \
         c_cong = congestion/(delta_hat*D*(log2 n + 1)) <= 8, c_dil = dilation/(delta_hat*D) \
         <= 27, c_blocks = blocks/delta_hat <= 9; the separator source is computed from the \
         graph alone (nested dissection) and must match the embedding-aware synthetics; \
         regenerate with `cargo run --release -p lcs_bench --bin bench_partition -- --out .`\",\n",
    );
    out.push_str("  \"entries\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"family\": \"{}\", \"n\": {}, \"m\": {}, \"partition_source\": \"{}\", \
             \"parts\": {}, \"delta_hat\": {}, \"depth\": {}, \"congestion\": {}, \
             \"dilation\": {}, \"blocks\": {}, \"c_cong\": {:.4}, \"c_dil\": {:.4}, \
             \"c_blocks\": {:.4}, \"wall_ms\": {:.2}}}",
            r.family,
            r.n,
            r.m,
            r.source,
            r.parts,
            r.delta_hat,
            r.depth,
            r.congestion,
            r.dilation,
            r.blocks,
            r.c_cong,
            r.c_dil,
            r.c_blocks,
            r.wall_ms,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| ".".to_string());

    // n = 1e4 per family (≈ 1e3 in the CI smoke). `target` is the part
    // count every source aims for, so rows compare like with like:
    // `side` rows, `side` voronoi cells, and the dissection level whose
    // region count is the nearest power of two.
    let side: usize = if fast { 32 } else { 100 };
    let target = side;
    let sep_level = (usize::BITS - (target - 1).leading_zeros()).max(1);
    let voronoi = PartitionSource::Voronoi {
        parts: target,
        seed: VORONOI_SEED,
    };
    let separator = PartitionSource::Separator {
        level: sep_level,
        min_region: 8,
    };

    let mut rows = Vec::new();
    let grid = gen::grid(side, side);
    let torus = gen::torus(side, side);
    let ktree = gen::ktree(side * side, 3, &mut SmallRng::seed_from_u64(42));
    for (family, g) in [("grid", &grid), ("torus", &torus)] {
        rows.push(measure(
            family,
            g,
            &PartitionSource::Rows {
                rows: side,
                cols: side,
            },
        ));
        rows.push(measure(family, g, &voronoi));
        rows.push(measure(family, g, &separator));
    }
    // k-trees have no row structure: the synthetic baseline is voronoi.
    rows.push(measure("ktree", &ktree, &voronoi));
    rows.push(measure("ktree", &ktree, &separator));

    // Quality gate: on the grid, the embedding-oblivious separator source
    // must sit no deeper in the Theorem 1.1 envelope than the best
    // embedding-aware synthetic. The scalar compared is the *binding*
    // constant — the envelope occupancy max(c_cong/8, c_dil/27) — i.e.
    // how close the source comes to violating the theorem.
    let occupancy = |r: &Row| (r.c_cong / C_CONG).max(r.c_dil / C_DIL);
    let grid_best = rows
        .iter()
        .filter(|r| r.family == "grid" && r.source != "separator")
        .map(occupancy)
        .fold(f64::INFINITY, f64::min);
    let sep = rows
        .iter()
        .find(|r| r.family == "grid" && r.source == "separator")
        .expect("grid separator row");
    assert!(
        occupancy(sep) <= grid_best,
        "grid: separator envelope occupancy {:.4} (c_cong={:.4}, c_dil={:.4}) worse \
         than the best synthetic source's {:.4}",
        occupancy(sep),
        sep.c_cong,
        sep.c_dil,
        grid_best,
    );

    let json = render(&rows);
    std::fs::write(format!("{out_dir}/BENCH_partition.json"), &json)
        .expect("write BENCH_partition.json");
    print!("{json}");
}
