//! Graph ingestion CLI: generates, converts and inspects `.lcsg` flat
//! binaries (the [`lcs_graph::io`] format every layer of the stack loads
//! through [`lcs_core::GraphSource::FlatBinary`]).
//!
//! Usage:
//!
//! ```text
//! lcs_convert generate --family FAM [params] --out FILE [--weights-seed S]
//! lcs_convert from-json --input FILE.json --out FILE.lcsg [--weights-seed S]
//! lcs_convert road --rows R --cols C [--seed S] --out FILE [--weights-seed S]
//! lcs_convert info FILE.lcsg
//! ```
//!
//! `generate` families and their parameters mirror [`lcs_core::GeneratorSpec`]:
//!
//! | family            | parameters                  |
//! |-------------------|-----------------------------|
//! | `path` `cycle` `complete` `wheel` | `--n N`     |
//! | `grid` `torus`    | `--rows R --cols C`         |
//! | `grid_of_cliques` | `--rows R --cols C --r K`   |
//! | `road_like`       | `--rows R --cols C [--seed S]` |
//!
//! `road` is shorthand for `generate --family road_like` — the seeded
//! near-planar generator sized for the n = 1e6–1e7 scale-up benchmarks
//! (`--rows 1000 --cols 1000` gives one million nodes in a ~28 MB file).
//!
//! `from-json` converts the legacy `{"n": ..., "edges": [[u, v], ...]}`
//! edge-list form through the same validation path the server uses
//! ([`GraphSource::EdgeListJson`]), so a file that converts is exactly a
//! file that serves.
//!
//! `--weights-seed S` embeds deterministic random edge weights (1..=n)
//! into the file; sessions built from the file start weighted.
//!
//! Exit status is non-zero on any typed [`lcs_graph::io::IoError`] /
//! [`lcs_core::GraphSourceError`]; the message carries the error code.

use lcs_core::{GeneratorSpec, GraphSource};
use lcs_graph::weights::EdgeWeights;
use lcs_graph::{io, Graph};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  lcs_convert generate --family FAM [--n N | --rows R --cols C [--r K] \
         [--seed S]] --out FILE [--weights-seed S]\n  lcs_convert from-json --input FILE.json \
         --out FILE.lcsg [--weights-seed S]\n  lcs_convert road --rows R --cols C [--seed S] \
         --out FILE [--weights-seed S]\n  lcs_convert info FILE.lcsg"
    );
    ExitCode::from(2)
}

/// `--name value` lookup over the raw argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parsed<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    match flag(args, name) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("{name}: cannot parse `{raw}`")),
    }
}

fn required<T: std::str::FromStr>(args: &[String], name: &str) -> Result<T, String> {
    parsed(args, name)?.ok_or_else(|| format!("missing required flag {name}"))
}

/// Builds the [`GeneratorSpec`] named by `--family` + its parameter flags.
fn spec_from_flags(args: &[String]) -> Result<GeneratorSpec, String> {
    let family: String = required(args, "--family")?;
    let spec = match family.as_str() {
        "path" => GeneratorSpec::Path {
            n: required(args, "--n")?,
        },
        "cycle" => GeneratorSpec::Cycle {
            n: required(args, "--n")?,
        },
        "complete" => GeneratorSpec::Complete {
            n: required(args, "--n")?,
        },
        "wheel" => GeneratorSpec::Wheel {
            n: required(args, "--n")?,
        },
        "grid" => GeneratorSpec::Grid {
            rows: required(args, "--rows")?,
            cols: required(args, "--cols")?,
        },
        "torus" => GeneratorSpec::Torus {
            rows: required(args, "--rows")?,
            cols: required(args, "--cols")?,
        },
        "grid_of_cliques" => GeneratorSpec::GridOfCliques {
            rows: required(args, "--rows")?,
            cols: required(args, "--cols")?,
            clique: required(args, "--r")?,
        },
        "road_like" => road_spec(args)?,
        other => {
            return Err(format!(
                "unknown family `{other}` — one of path, cycle, complete, wheel, grid, \
                 torus, grid_of_cliques, road_like"
            ))
        }
    };
    spec.validate().map_err(|e| e.to_string())?;
    Ok(spec)
}

fn road_spec(args: &[String]) -> Result<GeneratorSpec, String> {
    Ok(GeneratorSpec::RoadLike {
        rows: required(args, "--rows")?,
        cols: required(args, "--cols")?,
        seed: parsed(args, "--seed")?.unwrap_or(0),
    })
}

/// Saves `g` (with optional seeded weights) and prints a one-line summary.
fn save(g: &Graph, args: &[String], what: &str) -> Result<(), String> {
    let out: String = required(args, "--out")?;
    let weights = parsed::<u64>(args, "--weights-seed")?.map(|seed| {
        let max = (g.num_nodes() as u64).max(1);
        EdgeWeights::random(g, max, &mut SmallRng::seed_from_u64(seed))
    });
    io::save_graph(&out, g, weights.as_ref()).map_err(|e| format!("{out}: {e}"))?;
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {out}: {what}, n = {}, m = {}, weights = {}, {bytes} bytes",
        g.num_nodes(),
        g.num_edges(),
        weights.is_some(),
    );
    Ok(())
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("generate") => {
            let spec = spec_from_flags(&args[1..])?;
            let g = spec.build().map_err(|e| e.to_string())?;
            save(&g, &args[1..], spec.name())
        }
        Some("road") => {
            let spec = road_spec(&args[1..])?;
            spec.validate().map_err(|e| e.to_string())?;
            let g = spec.build().map_err(|e| e.to_string())?;
            save(&g, &args[1..], spec.name())
        }
        Some("from-json") => {
            let input: String = required(&args[1..], "--input")?;
            let source = GraphSource::EdgeListJson {
                path: input.clone(),
            };
            let resolved = source.resolve().map_err(|e| e.to_string())?;
            save(&resolved.graph, &args[1..], "edge_list_json")
        }
        Some("info") => {
            let path = args.get(1).ok_or("info: missing FILE argument")?;
            let h = io::load_header(path).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "{path}: lcsg v{}, n = {}, m = {}, weights = {}, checksum = {:#018x}",
                h.version, h.n, h.m, h.has_weights, h.checksum
            );
            Ok(())
        }
        _ => Err(String::new()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) if msg.is_empty() => usage(),
        Err(msg) => {
            eprintln!("lcs_convert: {msg}");
            ExitCode::FAILURE
        }
    }
}
