//! Experiment harness CLI.
//!
//! ```text
//! cargo run -p lcs-bench --release --bin experiments -- all
//! cargo run -p lcs-bench --release --bin experiments -- e1 e3 --fast
//! ```

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let mut ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ids = lcs_bench::ALL.iter().map(|s| s.to_string()).collect();
    }
    println!(
        "# Low-congestion shortcuts — experiment harness ({} mode)\n",
        if fast { "fast" } else { "full" }
    );
    for id in &ids {
        let start = Instant::now();
        let table = lcs_bench::run_experiment(id, fast);
        println!("{table}");
        println!("_{id} completed in {:.2?}_\n", start.elapsed());
    }
}
