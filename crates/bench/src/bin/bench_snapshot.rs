//! Perf snapshot binary: emits `BENCH_sim.json` and `BENCH_partial.json`.
//!
//! Usage:
//!
//! ```text
//! bench_snapshot [--fast] [--out DIR]
//! ```
//!
//! `--fast` restricts the sweep to the n ≈ 1e3 instances with a single
//! repetition (the CI smoke configuration — it still covers every backend:
//! strict, queued/calendar, the 4-thread sharded executor, and sketch-mode
//! detection); the full run covers n ∈ {1e3, 1e4, 1e5} with the median of
//! three repetitions per entry.
//!
//! Every entry carries the wall time measured by this run (`wall_ms`) next
//! to the pinned pre-CSR baseline (`wall_ms_before`, measured at the seed
//! engine commit on the same instance; `null` for instances the seed engine
//! was never measured on). Multi-threaded entries additionally report
//! `speedup_vs_t1`, the ratio against the single-thread entry of the same
//! instance **from the same run**. Sketch-mode detection entries assert
//! their accuracy against the centralized exact construction (every cut's
//! true load within the KMV error band of the threshold, cut counts within
//! a constant factor of the exact detector's) and record the observed
//! values.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p lcs_bench --bin bench_snapshot -- --out .
//! ```

use lcs_congest::protocols::BfsTreeProgram;
use lcs_congest::{SimConfig, SimMode, Simulator};
use lcs_core::dist::{distributed_partial_shortcut, DistConfig, DistMode};
use lcs_core::{Partition, ShortcutConfig, SweepOutcome, WitnessMode};
use lcs_graph::{bfs, gen, Graph, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

/// Wall-clock baselines measured at the pre-CSR seed engine (commit
/// `a3f13c8`, `Vec<VecDeque>` per-directed-edge mailboxes) on the same
/// machine class that produced the committed snapshots. Keyed by
/// `(bench, family, n, mode)`; all baselines are single-threaded.
const BASELINE_MS: &[(&str, &str, u64, &str, f64)] = &[
    ("sim", "grid", 1024, "strict", 0.59),
    ("sim", "grid", 1024, "queued", 0.45),
    ("sim", "torus", 1024, "strict", 0.54),
    ("sim", "grid", 10000, "strict", 7.44),
    ("sim", "grid", 10000, "queued", 6.99),
    ("sim", "torus", 10000, "strict", 7.06),
    ("sim", "grid", 99856, "strict", 147.20),
    ("sim", "grid", 99856, "queued", 133.49),
    ("sim", "torus", 99856, "strict", 158.15),
    ("partial", "grid_rows", 1024, "exact", 3.69),
    ("partial", "grid_rows", 10000, "exact", 101.76),
    ("partial", "torus_voronoi", 1024, "exact", 1.60),
];

/// Accuracy envelope for sketch-mode detection (deterministic for the
/// fixed hash seed). A `t = 16` KMV estimate carries ~25% relative error,
/// so the sketch legitimately cuts at *different tree edges* than the
/// exact detector — what must hold is that its decisions stay within the
/// estimator's error band:
///
/// - every edge the sketch cuts must carry a true crossing load of at
///   least `MIN_CUT_LOAD_RATIO · threshold` (no wild false positives), and
/// - the sketch must cut a similar *number* of edges as the exact
///   construction (each cut absorbs ~threshold parts, so counts track
///   total load): ratio within `[1 / MAX_CUT_COUNT_RATIO,
///   MAX_CUT_COUNT_RATIO]`.
const MIN_CUT_LOAD_RATIO: f64 = 0.5;
const MAX_CUT_COUNT_RATIO: f64 = 4.0;

fn baseline_ms(bench: &str, family: &str, n: u64, mode: &str) -> Option<f64> {
    BASELINE_MS
        .iter()
        .find(|&&(b, f, bn, m, _)| b == bench && f == family && bn == n && m == mode)
        .map(|&(_, _, _, _, ms)| ms)
}

struct Entry {
    family: String,
    n: u64,
    m: u64,
    mode: String,
    threads: usize,
    rounds: u64,
    messages: u64,
    wall_ms: f64,
    wall_ms_before: Option<f64>,
    /// Sketch entries: min over cut edges of `true load / threshold`.
    min_cut_load_ratio: Option<f64>,
    /// Sketch entries: `(sketch cuts, exact cuts)` edge counts.
    cut_edges: Option<(usize, usize)>,
    terminated: bool,
    truncated: bool,
}

type RunStats = (u64, u64, bool, bool);

fn median_ms(reps: usize, mut f: impl FnMut() -> RunStats) -> (f64, RunStats) {
    let mut times = Vec::with_capacity(reps);
    let mut out = (0, 0, false, false);
    for _ in 0..reps {
        let t0 = Instant::now();
        out = f();
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (times[times.len() / 2], out)
}

fn sim_entry(
    bench: &str,
    family: &str,
    g: &Graph,
    mode: SimMode,
    threads: usize,
    reps: usize,
) -> Entry {
    let sim = Simulator::new(
        g,
        SimConfig {
            mode,
            threads,
            ..SimConfig::default()
        },
    );
    let (wall_ms, (rounds, messages, terminated, truncated)) = median_ms(reps, || {
        let run = sim.run(|v, _| BfsTreeProgram::new(v == NodeId(0)));
        (
            run.metrics.rounds,
            run.metrics.messages,
            run.metrics.terminated,
            run.metrics.truncated,
        )
    });
    let mode_name = match mode {
        SimMode::Strict => "strict",
        SimMode::Queued => "queued",
    };
    Entry {
        family: family.to_string(),
        n: g.num_nodes() as u64,
        m: g.num_edges() as u64,
        mode: mode_name.to_string(),
        threads,
        rounds,
        messages,
        wall_ms,
        wall_ms_before: (threads == 1)
            .then(|| baseline_ms(bench, family, g.num_nodes() as u64, mode_name))
            .flatten(),
        min_cut_load_ratio: None,
        cut_edges: None,
        terminated,
        truncated,
    }
}

/// Detection representation for a partial-construction entry.
enum DetectKind {
    Exact,
    /// KMV sketch detection — the workload that makes n = 1e5 affordable.
    Sketch,
}

fn sketch_mode() -> DistMode {
    DistMode::Sketch {
        t: 16,
        hash_seed: 0xbeef,
        cut_factor: 1.0,
    }
}

/// Number of edges the centralized exact detector cuts on the same tree —
/// the reference for the sketch cut-count accuracy band.
fn exact_cut_count(g: &Graph, partition: &Partition, cfg: &ShortcutConfig) -> usize {
    let tree = bfs::bfs_tree(g, NodeId(0));
    match lcs_core::partial_shortcut_or_witness(g, &tree, partition, 1, cfg) {
        SweepOutcome::Shortcut(ps) => ps.data.over_edges.len(),
        SweepOutcome::DenseMinor { data, .. } => data.over_edges.len(),
    }
}

fn partial_entry(
    family: &str,
    g: &Graph,
    parts: Vec<Vec<NodeId>>,
    kind: DetectKind,
    reps: usize,
) -> Entry {
    let partition = Partition::from_parts(g, parts).expect("valid partition");
    let cfg = ShortcutConfig {
        witness_mode: WitnessMode::Skip,
        ..ShortcutConfig::default()
    };
    let (mode_name, dist) = match kind {
        DetectKind::Exact => ("exact", DistConfig::default()),
        DetectKind::Sketch => (
            "sketch",
            DistConfig {
                mode: sketch_mode(),
                ..DistConfig::default()
            },
        ),
    };
    let mut data = None;
    let (wall_ms, (rounds, messages, terminated, truncated)) = median_ms(reps, || {
        let res = distributed_partial_shortcut(g, NodeId(0), &partition, 1, &cfg, &dist);
        data = Some(res.data);
        (
            res.metrics_bfs.rounds + res.metrics_shortcut.rounds,
            res.metrics_bfs.messages + res.metrics_shortcut.messages,
            res.metrics_bfs.terminated && res.metrics_shortcut.terminated,
            res.metrics_bfs.truncated || res.metrics_shortcut.truncated,
        )
    });
    assert!(
        terminated && !truncated,
        "{family}/{mode_name}: detection benchmark must quiesce"
    );
    let (min_cut_load_ratio, cut_edges) = match kind {
        DetectKind::Exact => (None, None),
        DetectKind::Sketch => {
            // Accuracy: the re-derived SweepData carries the *true* crossing
            // set of every edge the sketch protocol cut, so each cut's real
            // load is directly comparable against the threshold.
            let data = data.expect("at least one repetition ran");
            let threshold = f64::from(data.congestion_threshold);
            assert!(
                !data.over_edges.is_empty(),
                "{family}: the sketch detection workload must actually cut edges"
            );
            let min_ratio = data
                .over_edges
                .iter()
                .map(|oe| oe.parts.len() as f64 / threshold)
                .fold(f64::INFINITY, f64::min);
            assert!(
                min_ratio >= MIN_CUT_LOAD_RATIO,
                "{family}: sketch cut an edge with true load {min_ratio:.3}×threshold \
                 (< {MIN_CUT_LOAD_RATIO}) — outside the KMV error band"
            );
            let exact = exact_cut_count(g, &partition, &cfg);
            let count_ratio = data.over_edges.len() as f64 / (exact.max(1)) as f64;
            assert!(
                (1.0 / MAX_CUT_COUNT_RATIO..=MAX_CUT_COUNT_RATIO).contains(&count_ratio),
                "{family}: sketch cut {} edges vs {} exact — outside the \
                 [1/{MAX_CUT_COUNT_RATIO}, {MAX_CUT_COUNT_RATIO}] accuracy band",
                data.over_edges.len(),
                exact
            );
            (Some(min_ratio), Some((data.over_edges.len(), exact)))
        }
    };
    Entry {
        family: family.to_string(),
        n: g.num_nodes() as u64,
        m: g.num_edges() as u64,
        mode: mode_name.to_string(),
        threads: 1,
        rounds,
        messages,
        wall_ms,
        wall_ms_before: baseline_ms("partial", family, g.num_nodes() as u64, mode_name),
        min_cut_load_ratio,
        cut_edges,
        terminated,
        truncated,
    }
}

fn render(schema: &str, entries: &[Entry]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"{schema}\",");
    out.push_str(
        "  \"note\": \"wall_ms_before is the pinned pre-CSR seed-engine baseline (single-thread); \
         speedup_vs_t1 compares a threads>1 entry against the same instance at threads=1 in this \
         run and depends on the host's core count; regenerate with \
         `cargo run --release -p lcs_bench --bin bench_snapshot -- --out .`\",\n",
    );
    let _ = writeln!(
        out,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    );
    out.push_str("  \"entries\": [\n");
    let fmt_opt = |v: Option<f64>| v.map_or_else(|| "null".to_string(), |x| format!("{x:.2}"));
    for (i, e) in entries.iter().enumerate() {
        let speedup = fmt_opt(e.wall_ms_before.map(|b| b / e.wall_ms.max(1e-9)));
        let vs_t1 = fmt_opt(
            (e.threads > 1)
                .then(|| {
                    entries
                        .iter()
                        .find(|t| {
                            t.threads == 1 && t.family == e.family && t.n == e.n && t.mode == e.mode
                        })
                        .map(|t| t.wall_ms / e.wall_ms.max(1e-9))
                })
                .flatten(),
        );
        let load_ratio = fmt_opt(e.min_cut_load_ratio);
        let cuts = e.cut_edges.map_or_else(
            || "null".to_string(),
            |(s, x)| format!("{{\"sketch\": {s}, \"exact\": {x}}}"),
        );
        let _ = write!(
            out,
            "    {{\"family\": \"{}\", \"n\": {}, \"m\": {}, \"mode\": \"{}\", \
             \"threads\": {}, \"rounds\": {}, \"messages\": {}, \"wall_ms\": {:.2}, \
             \"wall_ms_before\": {}, \"speedup\": {}, \"speedup_vs_t1\": {}, \
             \"min_cut_load_ratio\": {}, \"cut_edges\": {}, \
             \"terminated\": {}, \"truncated\": {}}}",
            e.family,
            e.n,
            e.m,
            e.mode,
            e.threads,
            e.rounds,
            e.messages,
            e.wall_ms,
            fmt_opt(e.wall_ms_before),
            speedup,
            vs_t1,
            load_ratio,
            cuts,
            e.terminated,
            e.truncated,
        );
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| ".".to_string());
    let reps = if fast { 1 } else { 3 };
    // Grid sides giving n ≈ 1e3 / 1e4 / 1e5.
    let sides: &[usize] = if fast { &[32] } else { &[32, 100, 316] };

    let mut sim_entries = Vec::new();
    for &side in sides {
        let g = gen::grid(side, side);
        sim_entries.push(sim_entry("sim", "grid", &g, SimMode::Strict, 1, reps));
        sim_entries.push(sim_entry("sim", "grid", &g, SimMode::Queued, 1, reps));
        let t = gen::torus(side, side);
        sim_entries.push(sim_entry("sim", "torus", &t, SimMode::Strict, 1, reps));
    }
    // The sharded executor: 4 workers on the largest instance of the sweep
    // (the CI smoke covers the backend at n = 1e3).
    {
        let side = if fast { 32 } else { 316 };
        let g = gen::grid(side, side);
        sim_entries.push(sim_entry("sim", "grid", &g, SimMode::Strict, 4, reps));
        sim_entries.push(sim_entry("sim", "grid", &g, SimMode::Queued, 4, reps));
    }

    let mut partial_entries = Vec::new();
    let partial_sides: &[usize] = if fast { &[32] } else { &[32, 100] };
    for &side in partial_sides {
        let g = gen::grid(side, side);
        partial_entries.push(partial_entry(
            "grid_rows",
            &g,
            gen::rows_of_grid(side, side),
            DetectKind::Exact,
            reps,
        ));
    }
    {
        let t = gen::torus(32, 32);
        let mut rng = SmallRng::seed_from_u64(42);
        let parts = gen::random_connected_parts(&t, 32, &mut rng);
        partial_entries.push(partial_entry(
            "torus_voronoi",
            &t,
            parts,
            DetectKind::Exact,
            reps,
        ));
    }
    // Sketch-mode detection: the n = 1e5 workload (exact streaming would
    // need ~n·k messages; the KMV sketch caps per-edge traffic at t + 1).
    // Singleton parts make the detection non-trivial — edges do get cut —
    // and the accuracy assertion compares against the centralized exact
    // cut set. The CI smoke runs the same family at n = 1e3.
    {
        let side = if fast { 32 } else { 316 };
        let g = gen::grid(side, side);
        let parts = gen::singleton_parts(&g);
        partial_entries.push(partial_entry(
            "grid_singletons",
            &g,
            parts,
            DetectKind::Sketch,
            reps,
        ));
    }

    let sim_json = render("bench_sim/v2", &sim_entries);
    let partial_json = render("bench_partial/v2", &partial_entries);
    std::fs::write(format!("{out_dir}/BENCH_sim.json"), &sim_json).expect("write BENCH_sim.json");
    std::fs::write(format!("{out_dir}/BENCH_partial.json"), &partial_json)
        .expect("write BENCH_partial.json");
    print!("{sim_json}");
    print!("{partial_json}");
}
