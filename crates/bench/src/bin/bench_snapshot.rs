//! Perf snapshot binary: emits `BENCH_sim.json` and `BENCH_partial.json`.
//!
//! Usage:
//!
//! ```text
//! bench_snapshot [--fast] [--out DIR]
//! ```
//!
//! `--fast` restricts the sweep to the n ≈ 1e3 instances with a single
//! repetition (the CI smoke configuration); the full run covers
//! n ∈ {1e3, 1e4, 1e5} with the median of three repetitions per entry.
//!
//! Every entry carries the wall time measured by this run (`wall_ms`) next
//! to the pinned pre-CSR baseline (`wall_ms_before`, measured at the seed
//! engine commit on the same instance) so the committed `BENCH_*.json`
//! files double as a before/after record of the batched-delivery rewrite.
//! Baselines are `null` for instances the seed engine was never measured
//! on. Regenerate with:
//!
//! ```text
//! cargo run --release -p lcs_bench --bin bench_snapshot -- --out .
//! ```

use lcs_congest::protocols::BfsTreeProgram;
use lcs_congest::{SimConfig, SimMode, Simulator};
use lcs_core::dist::{distributed_partial_shortcut, DistConfig};
use lcs_core::{Partition, ShortcutConfig, WitnessMode};
use lcs_graph::{gen, Graph, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

/// Wall-clock baselines measured at the pre-CSR seed engine (commit
/// `a3f13c8`, `Vec<VecDeque>` per-directed-edge mailboxes) on the same
/// machine class that produced the committed snapshots. Keyed by
/// `(bench, family, n, mode)`.
const BASELINE_MS: &[(&str, &str, u64, &str, f64)] = &[
    ("sim", "grid", 1024, "strict", 0.59),
    ("sim", "grid", 1024, "queued", 0.45),
    ("sim", "torus", 1024, "strict", 0.54),
    ("sim", "grid", 10000, "strict", 7.44),
    ("sim", "grid", 10000, "queued", 6.99),
    ("sim", "torus", 10000, "strict", 7.06),
    ("sim", "grid", 99856, "strict", 147.20),
    ("sim", "grid", 99856, "queued", 133.49),
    ("sim", "torus", 99856, "strict", 158.15),
    ("partial", "grid_rows", 1024, "exact", 3.69),
    ("partial", "grid_rows", 10000, "exact", 101.76),
    ("partial", "torus_voronoi", 1024, "exact", 1.60),
];

fn baseline_ms(bench: &str, family: &str, n: u64, mode: &str) -> Option<f64> {
    BASELINE_MS
        .iter()
        .find(|&&(b, f, bn, m, _)| b == bench && f == family && bn == n && m == mode)
        .map(|&(_, _, _, _, ms)| ms)
}

struct Entry {
    family: String,
    n: u64,
    m: u64,
    mode: String,
    rounds: u64,
    messages: u64,
    wall_ms: f64,
    wall_ms_before: Option<f64>,
    terminated: bool,
    truncated: bool,
}

type RunStats = (u64, u64, bool, bool);

fn median_ms(reps: usize, mut f: impl FnMut() -> RunStats) -> (f64, RunStats) {
    let mut times = Vec::with_capacity(reps);
    let mut out = (0, 0, false, false);
    for _ in 0..reps {
        let t0 = Instant::now();
        out = f();
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (times[times.len() / 2], out)
}

fn sim_entry(bench: &str, family: &str, g: &Graph, mode: SimMode, reps: usize) -> Entry {
    let sim = Simulator::new(
        g,
        SimConfig {
            mode,
            ..SimConfig::default()
        },
    );
    let (wall_ms, (rounds, messages, terminated, truncated)) = median_ms(reps, || {
        let run = sim.run(|v, _| BfsTreeProgram::new(v == NodeId(0)));
        (
            run.metrics.rounds,
            run.metrics.messages,
            run.metrics.terminated,
            run.metrics.truncated,
        )
    });
    let mode_name = match mode {
        SimMode::Strict => "strict",
        SimMode::Queued => "queued",
    };
    Entry {
        family: family.to_string(),
        n: g.num_nodes() as u64,
        m: g.num_edges() as u64,
        mode: mode_name.to_string(),
        rounds,
        messages,
        wall_ms,
        wall_ms_before: baseline_ms(bench, family, g.num_nodes() as u64, mode_name),
        terminated,
        truncated,
    }
}

fn partial_entry(family: &str, g: &Graph, parts: Vec<Vec<NodeId>>, reps: usize) -> Entry {
    let partition = Partition::from_parts(g, parts).expect("valid partition");
    let cfg = ShortcutConfig {
        witness_mode: WitnessMode::Skip,
        ..ShortcutConfig::default()
    };
    let dist = DistConfig::default();
    let (wall_ms, (rounds, messages, terminated, truncated)) = median_ms(reps, || {
        let res = distributed_partial_shortcut(g, NodeId(0), &partition, 1, &cfg, &dist);
        (
            res.metrics_bfs.rounds + res.metrics_shortcut.rounds,
            res.metrics_bfs.messages + res.metrics_shortcut.messages,
            res.metrics_bfs.terminated && res.metrics_shortcut.terminated,
            res.metrics_bfs.truncated || res.metrics_shortcut.truncated,
        )
    });
    Entry {
        family: family.to_string(),
        n: g.num_nodes() as u64,
        m: g.num_edges() as u64,
        mode: "exact".to_string(),
        rounds,
        messages,
        wall_ms,
        wall_ms_before: baseline_ms("partial", family, g.num_nodes() as u64, "exact"),
        terminated,
        truncated,
    }
}

fn render(schema: &str, entries: &[Entry]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"{schema}\",");
    out.push_str(
        "  \"note\": \"wall_ms_before is the pinned pre-CSR seed-engine baseline; \
         regenerate with `cargo run --release -p lcs_bench --bin bench_snapshot -- --out .`\",\n",
    );
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let before = e
            .wall_ms_before
            .map(|b| format!("{b:.2}"))
            .unwrap_or_else(|| "null".to_string());
        let speedup = e
            .wall_ms_before
            .map(|b| format!("{:.2}", b / e.wall_ms.max(1e-9)))
            .unwrap_or_else(|| "null".to_string());
        let _ = write!(
            out,
            "    {{\"family\": \"{}\", \"n\": {}, \"m\": {}, \"mode\": \"{}\", \
             \"rounds\": {}, \"messages\": {}, \"wall_ms\": {:.2}, \
             \"wall_ms_before\": {}, \"speedup\": {}, \"terminated\": {}, \
             \"truncated\": {}}}",
            e.family,
            e.n,
            e.m,
            e.mode,
            e.rounds,
            e.messages,
            e.wall_ms,
            before,
            speedup,
            e.terminated,
            e.truncated,
        );
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| ".".to_string());
    let reps = if fast { 1 } else { 3 };
    // Grid sides giving n ≈ 1e3 / 1e4 / 1e5.
    let sides: &[usize] = if fast { &[32] } else { &[32, 100, 316] };

    let mut sim_entries = Vec::new();
    for &side in sides {
        let g = gen::grid(side, side);
        sim_entries.push(sim_entry("sim", "grid", &g, SimMode::Strict, reps));
        sim_entries.push(sim_entry("sim", "grid", &g, SimMode::Queued, reps));
        let t = gen::torus(side, side);
        sim_entries.push(sim_entry("sim", "torus", &t, SimMode::Strict, reps));
    }

    let mut partial_entries = Vec::new();
    let partial_sides: &[usize] = if fast { &[32] } else { &[32, 100] };
    for &side in partial_sides {
        let g = gen::grid(side, side);
        partial_entries.push(partial_entry(
            "grid_rows",
            &g,
            gen::rows_of_grid(side, side),
            reps,
        ));
    }
    {
        let t = gen::torus(32, 32);
        let mut rng = SmallRng::seed_from_u64(42);
        let parts = gen::random_connected_parts(&t, 32, &mut rng);
        partial_entries.push(partial_entry("torus_voronoi", &t, parts, reps));
    }

    let sim_json = render("bench_sim/v1", &sim_entries);
    let partial_json = render("bench_partial/v1", &partial_entries);
    std::fs::write(format!("{out_dir}/BENCH_sim.json"), &sim_json).expect("write BENCH_sim.json");
    std::fs::write(format!("{out_dir}/BENCH_partial.json"), &partial_json)
        .expect("write BENCH_partial.json");
    print!("{sim_json}");
    print!("{partial_json}");
}
