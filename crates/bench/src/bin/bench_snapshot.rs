//! Perf snapshot binary: emits `BENCH_sim.json` and `BENCH_partial.json`.
//!
//! Usage:
//!
//! ```text
//! bench_snapshot [--fast] [--threads-sweep] [--out DIR]
//! ```
//!
//! `--fast` restricts the sweep to the n ≈ 1e3 instances with a single
//! repetition (the CI smoke configuration — it still covers every backend:
//! strict, queued/calendar, the multi-lane decentralized executor,
//! sketch-mode detection, and the packed `message_packing = 8` rows); the
//! full run covers n ∈ {1e3, 1e4, 1e5} with the median of three
//! repetitions per entry. `--threads-sweep` widens the multi-thread block
//! on the largest strict and queued instances from `threads = 4` to
//! `threads ∈ {2, 4, 8}` (the `threads = 1` rows come from the main
//! sweep), so together with the single-thread rows the snapshot carries a
//! full lane-scaling curve.
//!
//! Packed rows (`"packing": 8`) carry `rounds_vs_unpacked`, their round
//! count relative to the same instance's unpacked row from this run. The
//! binary asserts the packed sketch pipeline cuts rounds at all (< 1.0),
//! detects the identical cut set, and — on the full-size n = 1e5 instance
//! — meets the ≥ 2× reduction bar.
//!
//! The partial-construction sweep and the `facade_overhead` row run
//! through the `ShortcutSession` facade; `facade_overhead` compares served
//! aggregation queries (warm session, cached shortcut) against the direct
//! free-call path and **asserts** the ratio stays ≤ 1.05× — the builder
//! and cache layer must be zero-cost.
//!
//! Every entry carries the wall time measured by this run (`wall_ms`) next
//! to the pinned pre-CSR baseline (`wall_ms_before`, measured at the seed
//! engine commit on the same instance; `null` for instances the seed engine
//! was never measured on). Simulator entries additionally break one
//! repetition's wall time into the engine's phase buckets
//! (`compute_ms` / `stage_ms` / `merge_ms`, see
//! [`lcs_congest::PhaseTimings`]) — the serial-share evidence for the
//! decentralized executor. Multi-threaded entries additionally report
//! `speedup_vs_t1`, the ratio against the single-thread entry of the same
//! instance **from the same run**. Sketch-mode detection entries assert
//! their accuracy against the centralized exact construction (every cut's
//! true load within the KMV error band of the threshold, cut counts within
//! a constant factor of the exact detector's) and record the observed
//! values.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p lcs_bench --bin bench_snapshot -- --out .
//! ```

use lcs_congest::protocols::{AggOp, BfsTreeProgram};
use lcs_congest::{PhaseTimings, SimConfig, SimMode, Simulator};
use lcs_core::dist::{DistConfig, DistMode};
use lcs_core::session::{Backend, Session, SessionConfig, TreeSource};
use lcs_core::{full_shortcut, Partition, ShortcutConfig, SweepOutcome, WitnessMode};
use lcs_graph::{bfs, gen, Graph, NodeId};
use lcs_partwise::{solve_partwise, PartwiseConfig, SessionPartwiseOps};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

/// Wall-clock baselines measured at the pre-CSR seed engine (commit
/// `a3f13c8`, `Vec<VecDeque>` per-directed-edge mailboxes) on the same
/// machine class that produced the committed snapshots. Keyed by
/// `(bench, family, n, mode)`; all baselines are single-threaded.
const BASELINE_MS: &[(&str, &str, u64, &str, f64)] = &[
    ("sim", "grid", 1024, "strict", 0.59),
    ("sim", "grid", 1024, "queued", 0.45),
    ("sim", "torus", 1024, "strict", 0.54),
    ("sim", "grid", 10000, "strict", 7.44),
    ("sim", "grid", 10000, "queued", 6.99),
    ("sim", "torus", 10000, "strict", 7.06),
    ("sim", "grid", 99856, "strict", 147.20),
    ("sim", "grid", 99856, "queued", 133.49),
    ("sim", "torus", 99856, "strict", 158.15),
    ("partial", "grid_rows", 1024, "exact", 3.69),
    ("partial", "grid_rows", 10000, "exact", 101.76),
    ("partial", "torus_voronoi", 1024, "exact", 1.60),
];

/// Accuracy envelope for sketch-mode detection (deterministic for the
/// fixed hash seed). A `t = 16` KMV estimate carries ~25% relative error,
/// so the sketch legitimately cuts at *different tree edges* than the
/// exact detector — what must hold is that its decisions stay within the
/// estimator's error band:
///
/// - every edge the sketch cuts must carry a true crossing load of at
///   least `MIN_CUT_LOAD_RATIO · threshold` (no wild false positives), and
/// - the sketch must cut a similar *number* of edges as the exact
///   construction (each cut absorbs ~threshold parts, so counts track
///   total load): ratio within `[1 / MAX_CUT_COUNT_RATIO,
///   MAX_CUT_COUNT_RATIO]`.
const MIN_CUT_LOAD_RATIO: f64 = 0.5;
const MAX_CUT_COUNT_RATIO: f64 = 4.0;

/// `SimConfig::message_packing` of the packed bench rows (matches the CI
/// packing-conformance matrix). With the default `O(log n)` bandwidth the
/// effective batch size is budget-limited below 8 for 64-bit sketch
/// payloads and packing-limited at 8 for id payloads.
const PACKING: usize = 8;

fn baseline_ms(bench: &str, family: &str, n: u64, mode: &str) -> Option<f64> {
    BASELINE_MS
        .iter()
        .find(|&&(b, f, bn, m, _)| b == bench && f == family && bn == n && m == mode)
        .map(|&(_, _, _, _, ms)| ms)
}

struct Entry {
    family: String,
    n: u64,
    m: u64,
    mode: String,
    threads: usize,
    /// `SimConfig::message_packing` the entry ran with (1 = unpacked).
    packing: usize,
    /// The partition source the entry's parts came from (`rows` /
    /// `voronoi` / `singletons` — the [`lcs_core::PartitionSource`]
    /// naming); `None` for partition-free simulator rows.
    partition_source: Option<&'static str>,
    /// The graph source kind the instance came from (the
    /// [`lcs_core::GraphSource::name`] naming — every snapshot row is
    /// synthesized in-process, so today this is always `generator`;
    /// file-backed rows would carry `edge_list_json` / `flat_binary`).
    graph_source: &'static str,
    rounds: u64,
    messages: u64,
    wall_ms: f64,
    wall_ms_before: Option<f64>,
    /// Sketch entries: min over cut edges of `true load / threshold`.
    min_cut_load_ratio: Option<f64>,
    /// Sketch entries: `(sketch cuts, exact cuts)` edge counts.
    cut_edges: Option<(usize, usize)>,
    /// `facade_overhead` entry: session wall time / direct-call wall time.
    /// The builder+cache layer must be zero-cost: asserted <= 1.05.
    overhead_vs_direct: Option<f64>,
    /// Simulator entries: the engine's per-phase wall-time split of the
    /// last repetition (compute / serial stage window / account fold).
    timings: Option<PhaseTimings>,
    terminated: bool,
    truncated: bool,
}

type RunStats = (u64, u64, bool, bool);

fn median_ms(reps: usize, mut f: impl FnMut() -> RunStats) -> (f64, RunStats) {
    let mut times = Vec::with_capacity(reps);
    let mut out = (0, 0, false, false);
    for _ in 0..reps {
        let t0 = Instant::now();
        out = f();
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (times[times.len() / 2], out)
}

fn sim_entry(
    bench: &str,
    family: &str,
    g: &Graph,
    mode: SimMode,
    threads: usize,
    reps: usize,
) -> Entry {
    let sim = Simulator::new(
        g,
        SimConfig {
            mode,
            threads,
            ..SimConfig::default()
        },
    );
    let mut timings = PhaseTimings::default();
    let (wall_ms, (rounds, messages, terminated, truncated)) = median_ms(reps, || {
        let run = sim.run(|v, _| BfsTreeProgram::new(v == NodeId(0)));
        timings = run.timings;
        (
            run.metrics.rounds,
            run.metrics.messages,
            run.metrics.terminated,
            run.metrics.truncated,
        )
    });
    let mode_name = match mode {
        SimMode::Strict => "strict",
        SimMode::Queued => "queued",
    };
    Entry {
        family: family.to_string(),
        n: g.num_nodes() as u64,
        m: g.num_edges() as u64,
        mode: mode_name.to_string(),
        threads,
        packing: 1,
        partition_source: None,
        graph_source: "generator",
        rounds,
        messages,
        wall_ms,
        wall_ms_before: (threads == 1)
            .then(|| baseline_ms(bench, family, g.num_nodes() as u64, mode_name))
            .flatten(),
        min_cut_load_ratio: None,
        cut_edges: None,
        overhead_vs_direct: None,
        timings: Some(timings),
        terminated,
        truncated,
    }
}

/// Detection representation for a partial-construction entry.
enum DetectKind {
    Exact,
    /// KMV sketch detection — the workload that makes n = 1e5 affordable.
    Sketch,
}

fn sketch_mode() -> DistMode {
    DistMode::Sketch {
        t: 16,
        hash_seed: 0xbeef,
        cut_factor: 1.0,
    }
}

/// Number of edges the centralized exact detector cuts on the same tree —
/// the reference for the sketch cut-count accuracy band.
fn exact_cut_count(g: &Graph, partition: &Partition, cfg: &ShortcutConfig) -> usize {
    let tree = bfs::bfs_tree(g, NodeId(0));
    match lcs_core::partial_shortcut_or_witness(g, &tree, partition, 1, cfg) {
        SweepOutcome::Shortcut(ps) => ps.data.over_edges.len(),
        SweepOutcome::DenseMinor { data, .. } => data.over_edges.len(),
    }
}

fn partial_entry(
    family: &str,
    g: &Graph,
    parts: Vec<Vec<NodeId>>,
    partition_source: &'static str,
    kind: DetectKind,
    packing: usize,
    reps: usize,
) -> (Entry, Vec<u64>) {
    let partition = Partition::from_parts(g, parts).expect("valid partition");
    let cfg = ShortcutConfig {
        witness_mode: WitnessMode::Skip,
        ..ShortcutConfig::default()
    };
    let sim_config = SimConfig {
        message_packing: packing,
        ..SimConfig::default()
    };
    let session_config = SessionConfig {
        shortcut: cfg,
        sim: sim_config,
        ..SessionConfig::default()
    };
    // The construction benchmark runs through the facade: one fresh session
    // per repetition (caching would defeat a construction benchmark), with
    // the backend selecting the detection mode.
    let (mode_name, backend) = match kind {
        DetectKind::Exact => ("exact", Backend::Distributed(sim_config)),
        DetectKind::Sketch => (
            "sketch",
            Backend::Sketch(DistConfig {
                mode: sketch_mode(),
                sim: sim_config,
            }),
        ),
    };
    // Sessions are pre-built outside the timed region (build() is lazy and
    // free, but the partition clone is O(n) and must not pollute the
    // construction timing); the timed closure only runs `partial(1)`.
    let mut sessions: Vec<_> = (0..reps)
        .map(|_| {
            Session::on(g)
                .tree(TreeSource::Bfs(NodeId(0)))
                .partition_object(partition.clone())
                .backend(backend.clone())
                .config(session_config.clone())
                .build()
                .expect("partition already validated")
        })
        .collect();
    let mut last_session = None;
    let (wall_ms, (rounds, messages, terminated, truncated)) = median_ms(reps, || {
        let mut session = sessions.pop().expect("one fresh session per rep");
        let res = session.partial(1);
        let (bfs_m, det_m) = (
            res.metrics_bfs.as_ref().expect("distributed backend"),
            res.metrics_detect.as_ref().expect("distributed backend"),
        );
        let stats = (
            bfs_m.rounds + det_m.rounds,
            bfs_m.messages + det_m.messages,
            bfs_m.terminated && det_m.terminated,
            bfs_m.truncated || det_m.truncated,
        );
        last_session = Some(session);
        stats
    });
    // Pull the sweep data from the last rep's cache after the clock stopped.
    let data = last_session
        .as_mut()
        .map(|session| session.partial(1).data.clone())
        .expect("at least one repetition ran");
    // The detected cut set, for packed-vs-unpacked identity checks.
    let mut detected_cuts: Vec<u64> = data
        .over_edges
        .iter()
        .map(|oe| oe.edge.index() as u64)
        .collect();
    detected_cuts.sort_unstable();
    assert!(
        terminated && !truncated,
        "{family}/{mode_name}: detection benchmark must quiesce"
    );
    let (min_cut_load_ratio, cut_edges) = match kind {
        DetectKind::Exact => (None, None),
        DetectKind::Sketch => {
            // Accuracy: the re-derived SweepData carries the *true* crossing
            // set of every edge the sketch protocol cut, so each cut's real
            // load is directly comparable against the threshold.
            let threshold = f64::from(data.congestion_threshold);
            assert!(
                !data.over_edges.is_empty(),
                "{family}: the sketch detection workload must actually cut edges"
            );
            let min_ratio = data
                .over_edges
                .iter()
                .map(|oe| oe.parts.len() as f64 / threshold)
                .fold(f64::INFINITY, f64::min);
            assert!(
                min_ratio >= MIN_CUT_LOAD_RATIO,
                "{family}: sketch cut an edge with true load {min_ratio:.3}×threshold \
                 (< {MIN_CUT_LOAD_RATIO}) — outside the KMV error band"
            );
            let exact = exact_cut_count(g, &partition, &cfg);
            let count_ratio = data.over_edges.len() as f64 / (exact.max(1)) as f64;
            assert!(
                (1.0 / MAX_CUT_COUNT_RATIO..=MAX_CUT_COUNT_RATIO).contains(&count_ratio),
                "{family}: sketch cut {} edges vs {} exact — outside the \
                 [1/{MAX_CUT_COUNT_RATIO}, {MAX_CUT_COUNT_RATIO}] accuracy band",
                data.over_edges.len(),
                exact
            );
            (Some(min_ratio), Some((data.over_edges.len(), exact)))
        }
    };
    let entry = Entry {
        family: family.to_string(),
        n: g.num_nodes() as u64,
        m: g.num_edges() as u64,
        mode: mode_name.to_string(),
        threads: 1,
        packing,
        partition_source: Some(partition_source),
        graph_source: "generator",
        rounds,
        messages,
        wall_ms,
        wall_ms_before: (packing == 1)
            .then(|| baseline_ms("partial", family, g.num_nodes() as u64, mode_name))
            .flatten(),
        min_cut_load_ratio,
        cut_edges,
        overhead_vs_direct: None,
        timings: None,
        terminated,
        truncated,
    };
    (entry, detected_cuts)
}

/// Maximum session-over-direct wall-time ratio the facade may cost. The
/// builder and cache layer add only artifact lookups to a served call, so
/// anything beyond noise-level indicates a regression.
const MAX_FACADE_OVERHEAD: f64 = 1.05;

/// The zero-cost-facade guard: `K` aggregation queries served by a warm
/// `ShortcutSession` versus the same queries through the direct free-call
/// path with prebuilt artifacts. Asserts the ratio stays ≤
/// [`MAX_FACADE_OVERHEAD`] and emits it as a `facade_overhead` row.
///
/// Noise hardening for the CI smoke: both paths get one untimed warm-up,
/// samples are minima over ≥ 5 repetitions, the two paths are measured in
/// interleaved rounds (so load drift hits both), and a ratio over budget
/// is re-measured once before the assert fires.
fn facade_overhead_entry(reps: usize) -> Entry {
    const QUERIES: usize = 4;
    let side = 32;
    let g = gen::grid(side, side);
    let partition =
        Partition::from_parts(&g, gen::rows_of_grid(side, side)).expect("valid partition");
    let values: Vec<u64> = (0..g.num_nodes() as u64).map(|x| (x * 37) % 1009).collect();

    // Direct path: artifacts prebuilt, K solve_partwise calls per sample.
    let tree = bfs::bfs_tree(&g, NodeId(0));
    let built = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
    let pw = PartwiseConfig::default();
    let run_direct = |g: &Graph, partition: &Partition| {
        for _ in 0..QUERIES {
            let out = solve_partwise(
                g,
                partition,
                &built.shortcut,
                &values,
                AggOp::Sum,
                None,
                &pw,
            );
            assert!(out.all_members_informed);
        }
    };

    // Facade path: a warm session (construction outside the timed region —
    // it is cached, which is the whole point), K aggregate calls per sample.
    let mut session = Session::on(&g)
        .partition_object(partition.clone())
        .build()
        .expect("partition already validated");
    session.prepare();

    let measure = |session: &mut lcs_core::session::ShortcutSession<'_>| {
        let samples = reps.max(5);
        let mut last = (0u64, 0u64, false, false);
        let (mut direct_ms, mut facade_ms) = (f64::INFINITY, f64::INFINITY);
        // Interleave the two paths so slow periods penalize both equally.
        for _ in 0..samples {
            let t0 = Instant::now();
            run_direct(&g, &partition);
            direct_ms = direct_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            let t1 = Instant::now();
            for _ in 0..QUERIES {
                let report = session.aggregate(&values, AggOp::Sum);
                assert!(report.result.all_members_informed);
                last = (
                    report.rounds,
                    report.messages,
                    report.result.metrics.terminated,
                    report.result.metrics.truncated,
                );
            }
            facade_ms = facade_ms.min(t1.elapsed().as_secs_f64() * 1e3);
        }
        (direct_ms, facade_ms, last)
    };

    // Untimed warm-up of both paths (first-touch allocation, cache fill).
    run_direct(&g, &partition);
    let _ = session.aggregate(&values, AggOp::Sum);

    let (mut direct_ms, mut facade_ms, mut last) = measure(&mut session);
    let mut ratio = facade_ms / direct_ms.max(1e-9);
    if ratio > MAX_FACADE_OVERHEAD {
        // One re-measure before failing: a single noisy window must not
        // turn the smoke red.
        (direct_ms, facade_ms, last) = measure(&mut session);
        ratio = facade_ms / direct_ms.max(1e-9);
    }
    assert_eq!(
        session.cache_stats().full.builds,
        1,
        "the session must serve from cache"
    );
    assert!(
        ratio <= MAX_FACADE_OVERHEAD,
        "facade overhead {ratio:.3}x exceeds the {MAX_FACADE_OVERHEAD}x budget \
         (session {facade_ms:.2} ms vs direct {direct_ms:.2} ms)"
    );
    Entry {
        family: "facade_overhead".to_string(),
        n: g.num_nodes() as u64,
        m: g.num_edges() as u64,
        mode: "aggregate".to_string(),
        threads: 1,
        packing: 1,
        partition_source: Some("rows"),
        graph_source: "generator",
        rounds: last.0,
        messages: last.1,
        wall_ms: facade_ms,
        wall_ms_before: None,
        min_cut_load_ratio: None,
        cut_edges: None,
        overhead_vs_direct: Some(ratio),
        timings: None,
        terminated: last.2,
        truncated: last.3,
    }
}

fn render(schema: &str, entries: &[Entry]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"{schema}\",");
    out.push_str(
        "  \"note\": \"wall_ms_before is the pinned pre-CSR seed-engine baseline (single-thread); \
         speedup_vs_t1 compares a threads>1 entry against the same instance at threads=1 in this \
         run and depends on the host's core count; compute_ms/stage_ms/merge_ms split one \
         repetition's engine wall time into parallel compute vs the coordinator's serial stage \
         window vs the (overlapped) metric fold; regenerate with \
         `cargo run --release -p lcs_bench --bin bench_snapshot -- --out .`\",\n",
    );
    let _ = writeln!(
        out,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    );
    out.push_str("  \"entries\": [\n");
    let fmt_opt = |v: Option<f64>| v.map_or_else(|| "null".to_string(), |x| format!("{x:.2}"));
    let fmt_phase = |v: Option<f64>| v.map_or_else(|| "null".to_string(), |x| format!("{x:.3}"));
    for (i, e) in entries.iter().enumerate() {
        let speedup = fmt_opt(e.wall_ms_before.map(|b| b / e.wall_ms.max(1e-9)));
        let vs_t1 = fmt_opt(
            (e.threads > 1)
                .then(|| {
                    entries
                        .iter()
                        .find(|t| {
                            t.threads == 1
                                && t.family == e.family
                                && t.n == e.n
                                && t.mode == e.mode
                                && t.packing == e.packing
                        })
                        .map(|t| t.wall_ms / e.wall_ms.max(1e-9))
                })
                .flatten(),
        );
        // Packed rows report their round count relative to the same
        // instance's packing = 1 row from this run (< 1.0 means packing
        // cut rounds; the CI smoke greps this for the sketch family).
        let vs_unpacked = fmt_opt(
            (e.packing > 1)
                .then(|| {
                    entries
                        .iter()
                        .find(|t| {
                            t.packing == 1
                                && t.family == e.family
                                && t.n == e.n
                                && t.mode == e.mode
                                && t.threads == e.threads
                        })
                        .map(|t| e.rounds as f64 / (t.rounds as f64).max(1e-9))
                })
                .flatten(),
        );
        let load_ratio = fmt_opt(e.min_cut_load_ratio);
        let cuts = e.cut_edges.map_or_else(
            || "null".to_string(),
            |(s, x)| format!("{{\"sketch\": {s}, \"exact\": {x}}}"),
        );
        let _ = write!(
            out,
            "    {{\"family\": \"{}\", \"n\": {}, \"m\": {}, \"mode\": \"{}\", \
             \"threads\": {}, \"packing\": {}, \"partition_source\": {}, \
             \"graph_source\": \"{}\", \
             \"rounds\": {}, \"messages\": {}, \
             \"wall_ms\": {:.2}, \"wall_ms_before\": {}, \"speedup\": {}, \
             \"speedup_vs_t1\": {}, \"rounds_vs_unpacked\": {}, \
             \"min_cut_load_ratio\": {}, \"cut_edges\": {}, \"overhead_vs_direct\": {}, \
             \"compute_ms\": {}, \"stage_ms\": {}, \"merge_ms\": {}, \
             \"terminated\": {}, \"truncated\": {}}}",
            e.family,
            e.n,
            e.m,
            e.mode,
            e.threads,
            e.packing,
            e.partition_source
                .map_or_else(|| "null".to_string(), |s| format!("\"{s}\"")),
            e.graph_source,
            e.rounds,
            e.messages,
            e.wall_ms,
            fmt_opt(e.wall_ms_before),
            speedup,
            vs_t1,
            vs_unpacked,
            load_ratio,
            cuts,
            fmt_opt(e.overhead_vs_direct),
            fmt_phase(e.timings.map(|t| t.compute_ms)),
            fmt_phase(e.timings.map(|t| t.stage_ms)),
            fmt_phase(e.timings.map(|t| t.merge_ms)),
            e.terminated,
            e.truncated,
        );
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let threads_sweep = args.iter().any(|a| a == "--threads-sweep");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| ".".to_string());
    let reps = if fast { 1 } else { 3 };
    // Grid sides giving n ≈ 1e3 / 1e4 / 1e5.
    let sides: &[usize] = if fast { &[32] } else { &[32, 100, 316] };

    let mut sim_entries = Vec::new();
    for &side in sides {
        let g = gen::grid(side, side);
        sim_entries.push(sim_entry("sim", "grid", &g, SimMode::Strict, 1, reps));
        sim_entries.push(sim_entry("sim", "grid", &g, SimMode::Queued, 1, reps));
        let t = gen::torus(side, side);
        sim_entries.push(sim_entry("sim", "torus", &t, SimMode::Strict, 1, reps));
    }
    // The decentralized executor on the largest instance of the sweep (the
    // CI smoke covers the backend at n = 1e3): 4 lanes by default,
    // `--threads-sweep` widens to the full scaling curve. Together with the
    // single-thread rows above this yields threads ∈ {1, 2, 4, 8}.
    {
        let side = if fast { 32 } else { 316 };
        let g = gen::grid(side, side);
        let lane_counts: &[usize] = if threads_sweep { &[2, 4, 8] } else { &[4] };
        for &t in lane_counts {
            sim_entries.push(sim_entry("sim", "grid", &g, SimMode::Strict, t, reps));
            sim_entries.push(sim_entry("sim", "grid", &g, SimMode::Queued, t, reps));
        }
    }
    // The zero-cost-facade guard (asserts <= MAX_FACADE_OVERHEAD; the CI
    // smoke greps for this row).
    sim_entries.push(facade_overhead_entry(reps));

    let mut partial_entries = Vec::new();
    let partial_sides: &[usize] = if fast { &[32] } else { &[32, 100] };
    let mut grid_rows_largest_cuts = Vec::new();
    for &side in partial_sides {
        let g = gen::grid(side, side);
        let (entry, cuts) = partial_entry(
            "grid_rows",
            &g,
            gen::rows_of_grid(side, side),
            "rows",
            DetectKind::Exact,
            1,
            reps,
        );
        partial_entries.push(entry);
        grid_rows_largest_cuts = cuts;
    }
    {
        let t = gen::torus(32, 32);
        let mut rng = SmallRng::seed_from_u64(42);
        let parts = gen::random_connected_parts(&t, 32, &mut rng);
        partial_entries.push(
            partial_entry(
                "torus_voronoi",
                &t,
                parts,
                "voronoi",
                DetectKind::Exact,
                1,
                reps,
            )
            .0,
        );
    }
    // Multi-value packing on the exact part-id streams: a packed twin of
    // the sweep's largest grid_rows instance. `rounds_vs_unpacked` relates
    // it to the packing = 1 row above; the detected cut set must be
    // identical.
    {
        let side = *partial_sides.last().expect("non-empty sweep");
        let g = gen::grid(side, side);
        let (packed, cuts_packed) = partial_entry(
            "grid_rows",
            &g,
            gen::rows_of_grid(side, side),
            "rows",
            DetectKind::Exact,
            PACKING,
            reps,
        );
        assert_eq!(
            cuts_packed, grid_rows_largest_cuts,
            "grid_rows: packed exact detection must cut the identical edge set"
        );
        partial_entries.push(packed);
    }
    // Sketch-mode detection: the n = 1e5 workload (exact streaming would
    // need ~n·k messages; the KMV sketch caps per-edge traffic at t + 1).
    // Singleton parts make the detection non-trivial — edges do get cut —
    // and the accuracy assertion compares against the centralized exact
    // cut set. The CI smoke runs the same family at n = 1e3. The instance
    // is emitted unpacked and at packing = 8; the packed run must detect
    // the identical cut set with a reduced round count (the
    // `rounds_vs_unpacked` column, asserted ≥ 2× on the full-size
    // instance).
    {
        let side = if fast { 32 } else { 316 };
        let g = gen::grid(side, side);
        let parts = gen::singleton_parts(&g);
        let (unpacked, cuts_unpacked) = partial_entry(
            "grid_singletons",
            &g,
            parts.clone(),
            "singletons",
            DetectKind::Sketch,
            1,
            reps,
        );
        let (packed, cuts_packed) = partial_entry(
            "grid_singletons",
            &g,
            parts,
            "singletons",
            DetectKind::Sketch,
            PACKING,
            reps,
        );
        assert_eq!(
            cuts_packed, cuts_unpacked,
            "grid_singletons: packed sketch detection must cut the identical edge set"
        );
        let ratio = packed.rounds as f64 / (unpacked.rounds as f64).max(1e-9);
        assert!(
            ratio < 1.0,
            "sketch packing = {PACKING} must reduce pipeline rounds \
             ({} packed vs {} unpacked)",
            packed.rounds,
            unpacked.rounds
        );
        if !fast {
            // Acceptance bar of the packing work: ≥ 2× fewer rounds on the
            // n = 1e5 sketch partial pipeline (BFS + detection).
            assert!(
                ratio <= 0.5,
                "n = 1e5 sketch pipeline: packing = {PACKING} cut rounds only \
                 {:.2}× ({} vs {}), below the 2× bar",
                1.0 / ratio,
                packed.rounds,
                unpacked.rounds
            );
        }
        partial_entries.push(unpacked);
        partial_entries.push(packed);
    }

    let sim_json = render("bench_sim/v7", &sim_entries);
    let partial_json = render("bench_partial/v7", &partial_entries);
    std::fs::write(format!("{out_dir}/BENCH_sim.json"), &sim_json).expect("write BENCH_sim.json");
    std::fs::write(format!("{out_dir}/BENCH_partial.json"), &partial_json)
        .expect("write BENCH_partial.json");
    print!("{sim_json}");
    print!("{partial_json}");
}
