//! Churn benchmark: incremental re-customization vs full rebuild. Emits
//! `BENCH_churn.json`.
//!
//! Usage:
//!
//! ```text
//! bench_churn [--fast] [--out DIR]
//! ```
//!
//! The serving scenario behind the session's epoch-tracked artifact graph:
//! a long-lived `ShortcutSession` absorbs a stream of partition churn —
//! each tick reassigns boundary nodes of ~5% of the parts — and must
//! answer the next query without paying a full reconstruction. Each tick
//! is timed twice:
//!
//! - **recustomize**: `reassign_parts` + `prepare()` on the live session —
//!   the mini doubling search over the touched parts, the shortcut splice,
//!   and the part-local quality patch;
//! - **rebuild**: `build()` + `prepare()` of a fresh session on a clone of
//!   the mutated partition — what a cache without incremental invalidation
//!   would pay.
//!
//! The headline number is `recustomize_vs_rebuild` (total recustomize
//! time / total rebuild time). The binary **asserts** it stays ≤ 0.2 (a
//! ≥ 5× speedup) on the full-size instance — the acceptance bar of the
//! artifact-graph refactor — re-measuring once before failing so a single
//! noisy window cannot turn the run red. It also asserts, via
//! `CacheStats`, that the live session performed zero full rebuilds after
//! warm-up, and (in `--fast`) that the served aggregate results are
//! bit-identical to the fresh session's every tick.
//!
//! `--fast` is the CI smoke configuration: a 32×32 grid, one mover, 20
//! ticks. The full run uses the 316×316 grid (n = 99 856) with 316 row
//! parts and 8 movers — 16 touched parts ≈ 5% per tick.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p lcs_bench --bin bench_churn -- --out .
//! ```

use lcs_congest::protocols::AggOp;
use lcs_core::session::{Session, SessionConfig, ShortcutSession};
use lcs_core::{ShortcutConfig, WitnessMode};
use lcs_graph::{gen, Graph, NodeId, PartId};
use lcs_partwise::SessionPartwiseOps;
use std::fmt::Write as _;
use std::time::Instant;

/// Acceptance bar: incremental re-customization must be at least 5× faster
/// than a fresh rebuild of the mutated partition.
const MAX_RATIO: f64 = 0.2;

fn config() -> SessionConfig {
    SessionConfig {
        shortcut: ShortcutConfig {
            witness_mode: WitnessMode::Skip,
            ..ShortcutConfig::default()
        },
        ..SessionConfig::default()
    }
}

/// The churn pattern on a `side × side` grid with its rows as parts:
/// `movers` rows `r` (spaced ≥ 2 apart so the touched part sets are
/// disjoint), each toggling its first node `(r, 0)` between part `r` and
/// part `r − 1` on alternating ticks. Every move keeps both parts
/// connected (rows are paths; `(r,0)-(r−1,0)` is a grid edge), and each
/// mover touches 2 parts per tick.
fn mover_rows(side: usize, movers: usize) -> Vec<usize> {
    let stride = (side - 1) / movers;
    assert!(stride >= 2, "movers must touch disjoint part pairs");
    (0..movers).map(|i| 1 + i * stride).collect()
}

fn moves_for_tick(side: usize, rows: &[usize], tick: usize) -> Vec<(NodeId, PartId)> {
    rows.iter()
        .map(|&r| {
            let target = if tick.is_multiple_of(2) { r - 1 } else { r };
            (NodeId((r * side) as u32), PartId(target as u32))
        })
        .collect()
}

struct Measurement {
    recustomize_ms: f64,
    rebuild_ms: f64,
    touched_per_tick: usize,
}

/// Runs `ticks` churn ticks on one live session, timing the incremental
/// path against a fresh rebuild of the same mutated partition each tick.
fn measure(
    g: &Graph,
    side: usize,
    rows: &[usize],
    ticks: usize,
    differential: bool,
) -> Measurement {
    let mut session = Session::on(g)
        .partition(gen::rows_of_grid(side, side))
        .config(config())
        .build()
        .expect("grid rows are valid parts");
    session.prepare(); // untimed warm-up: the one full construction
    assert_eq!(session.cache_stats().full.builds, 1);

    let mut recustomize_ms = 0.0;
    let mut rebuild_ms = 0.0;
    let mut touched_per_tick = 0;
    let values: Vec<u64> = if differential {
        (0..g.num_nodes() as u64).collect()
    } else {
        Vec::new()
    };

    for tick in 0..ticks {
        let moves = moves_for_tick(side, rows, tick);

        let t0 = Instant::now();
        let touched = session
            .reassign_parts(&moves)
            .expect("churn moves keep every part connected");
        session.prepare();
        recustomize_ms += t0.elapsed().as_secs_f64() * 1e3;
        touched_per_tick = touched.len();

        // The comparison rebuild works on a clone of the mutated
        // partition, taken outside the timer.
        let partition = session.partition().clone();
        let t0 = Instant::now();
        let mut fresh: ShortcutSession<'_> = Session::on(g)
            .partition_object(partition)
            .config(config())
            .build()
            .expect("clone of a valid partition");
        fresh.prepare();
        rebuild_ms += t0.elapsed().as_secs_f64() * 1e3;

        assert!(
            session.quality().all_connected(),
            "tick {tick}: churned shortcut must keep every part connected"
        );
        if differential {
            let live = session.aggregate(&values, AggOp::Sum);
            let ref_run = fresh.aggregate(&values, AggOp::Sum);
            assert_eq!(
                live.result.results, ref_run.result.results,
                "tick {tick}: served results must be bit-identical to a fresh build"
            );
        }
    }

    let stats = session.cache_stats();
    assert_eq!(
        stats.full.builds, 1,
        "the live session must never pay a full rebuild after warm-up"
    );
    assert_eq!(stats.recustomizations as usize, ticks);
    Measurement {
        recustomize_ms,
        rebuild_ms,
        touched_per_tick,
    }
}

fn render(
    g: &Graph,
    side: usize,
    movers: usize,
    ticks: usize,
    m: &Measurement,
    ratio: f64,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"bench_churn/v1\",");
    out.push_str(
        "  \"note\": \"recustomize_vs_rebuild = total incremental reassign_parts+prepare time / \
         total fresh build+prepare time over the churn ticks, asserted <= 0.2 in-binary; \
         regenerate with `cargo run --release -p lcs_bench --bin bench_churn -- --out .`\",\n",
    );
    out.push_str("  \"entries\": [\n");
    let _ = writeln!(
        out,
        "    {{\"family\": \"grid_rows\", \"n\": {}, \"m\": {}, \"parts\": {}, \
         \"movers\": {}, \"touched_parts_per_tick\": {}, \"ticks\": {}, \
         \"recustomize_ms\": {:.2}, \"rebuild_ms\": {:.2}, \
         \"recustomize_vs_rebuild\": {:.3}}}",
        g.num_nodes(),
        g.num_edges(),
        side,
        movers,
        m.touched_per_tick,
        ticks,
        m.recustomize_ms,
        m.rebuild_ms,
        ratio
    );
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| ".".to_string());

    // Full mode: the n = 1e5 corpus instance (316² grid, 316 row parts),
    // 8 movers × 2 = 16 touched parts ≈ 5% per tick. Fast mode (CI smoke):
    // 32² with one mover, plus the per-tick served-result differential.
    let (side, movers, ticks) = if fast { (32, 1, 20) } else { (316, 8, 8) };
    let g = gen::grid(side, side);
    let rows = mover_rows(side, movers);

    let mut m = measure(&g, side, &rows, ticks, fast);
    let mut ratio = m.recustomize_ms / m.rebuild_ms.max(1e-9);
    if ratio > MAX_RATIO {
        // One re-measure before failing: a single noisy window must not
        // turn the bench red.
        m = measure(&g, side, &rows, ticks, fast);
        ratio = m.recustomize_ms / m.rebuild_ms.max(1e-9);
    }
    assert!(
        ratio <= MAX_RATIO,
        "recustomize_vs_rebuild = {ratio:.3} exceeds the {MAX_RATIO} bar \
         ({:.2} ms incremental vs {:.2} ms rebuilt over {ticks} ticks)",
        m.recustomize_ms,
        m.rebuild_ms
    );

    let json = render(&g, side, movers, ticks, &m, ratio);
    std::fs::write(format!("{out_dir}/BENCH_churn.json"), &json).expect("write BENCH_churn.json");
    print!("{json}");
}
