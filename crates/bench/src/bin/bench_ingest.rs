//! Ingestion bench: emits `BENCH_ingest.json` — the acceptance evidence
//! for the flat-binary graph format and the million-node scale-up.
//!
//! Usage:
//!
//! ```text
//! bench_ingest [--fast] [--out DIR]
//! ```
//!
//! The harness generates the seeded near-planar `road_like` instance
//! (n = 1e6 in the full run; n = 1e4 for the CI smoke), writes it both as
//! an `.lcsg` flat binary and as the legacy `{"n", "edges"}` JSON
//! edge-list, and loads each back through its [`GraphSource`] — the same
//! resolver `SessionConfig`, the `Session` builder and `lcs_server` use —
//! timing the round trip. The decoded graphs are asserted identical, and
//! the `load_speedup` column (JSON wall time over flat wall time) is
//! **asserted ≥ 10× in the full run** (≥ 2× in the smoke, where both
//! files fit in cache and the gap narrows).
//!
//! The scale-up half then serves the flat-loaded graph end-to-end: a
//! seeded voronoi partition, the KMV-sketch detection backend with
//! `message_packing = 8` (the configuration that makes n = 1e6
//! affordable, see `BENCH_partial.json`), one part-wise aggregation
//! (asserted: every member informed, simulator quiesced) and the cached
//! quality report of the shortcut the aggregation was served over.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p lcs_bench --bin bench_ingest -- --out .
//! ```

use lcs_congest::protocols::AggOp;
use lcs_congest::SimConfig;
use lcs_core::dist::{DistConfig, DistMode};
use lcs_core::session::{Backend, SessionConfig};
use lcs_core::{GeneratorSpec, GraphSource, PartitionSource};
use lcs_graph::io;
use lcs_partwise::SessionPartwiseOps;
use std::fmt::Write as _;
use std::time::Instant;

/// Acceptance bar: flat-binary load vs JSON parse of the same graph.
const FULL_SPEEDUP_BAR: f64 = 10.0;
const FAST_SPEEDUP_BAR: f64 = 2.0;

/// Seed of the road-like instance (pins the committed snapshot).
const ROAD_SEED: u64 = 7;

/// One emitted row; unused columns render as `null`.
#[derive(Default)]
struct Row {
    row: &'static str,
    graph_source: Option<&'static str>,
    n: u64,
    m: u64,
    bytes: Option<u64>,
    wall_ms: Option<f64>,
    load_speedup: Option<f64>,
    rounds: Option<u64>,
    messages: Option<u64>,
    parts: Option<usize>,
    delta_hat: Option<u32>,
    congestion: Option<u32>,
    dilation: Option<u32>,
    blocks: Option<u32>,
    terminated: Option<bool>,
}

fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Renders the legacy JSON edge-list form of `g` (the `from-json` /
/// `edge_list_json` input format).
fn edge_list_json(g: &lcs_graph::Graph) -> String {
    let mut out = String::with_capacity(24 * g.num_edges());
    let _ = write!(out, "{{\"n\": {}, \"edges\": [", g.num_nodes());
    for (i, e) in g.edges().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},{}]", e.u.0, e.v.0);
    }
    out.push_str("]}");
    out
}

fn render(rows: &[Row]) -> String {
    let fmt_f = |v: Option<f64>| v.map_or_else(|| "null".to_string(), |x| format!("{x:.2}"));
    let fmt_u = |v: Option<u64>| v.map_or_else(|| "null".to_string(), |x| x.to_string());
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"bench_ingest/v1\",\n");
    out.push_str(
        "  \"note\": \"load rows time GraphSource::resolve() on the same road_like instance \
         stored as .lcsg flat binary vs legacy JSON edge-list (load_speedup = json_ms/flat_ms, \
         asserted >= 10x in the full run); the aggregate/quality rows serve the flat-loaded \
         graph end-to-end on the sketch backend with message_packing = 8; regenerate with \
         `cargo run --release -p lcs_bench --bin bench_ingest -- --out .`\",\n",
    );
    out.push_str("  \"entries\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"row\": \"{}\", \"graph_source\": {}, \"n\": {}, \"m\": {}, \
             \"bytes\": {}, \"wall_ms\": {}, \"load_speedup\": {}, \"rounds\": {}, \
             \"messages\": {}, \"parts\": {}, \"delta_hat\": {}, \"congestion\": {}, \
             \"dilation\": {}, \"blocks\": {}, \"terminated\": {}}}",
            r.row,
            r.graph_source
                .map_or_else(|| "null".to_string(), |s| format!("\"{s}\"")),
            r.n,
            r.m,
            fmt_u(r.bytes),
            fmt_f(r.wall_ms),
            fmt_f(r.load_speedup),
            fmt_u(r.rounds),
            fmt_u(r.messages),
            fmt_u(r.parts.map(|p| p as u64)),
            fmt_u(r.delta_hat.map(u64::from)),
            fmt_u(r.congestion.map(u64::from)),
            fmt_u(r.dilation.map(u64::from)),
            fmt_u(r.blocks.map(u64::from)),
            r.terminated
                .map_or_else(|| "null".to_string(), |b| b.to_string()),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| ".".to_string());
    let reps = if fast { 1 } else { 3 };
    let side: usize = if fast { 100 } else { 1000 };

    // The instance, produced once by the generator source.
    let spec = GeneratorSpec::RoadLike {
        rows: side,
        cols: side,
        seed: ROAD_SEED,
    };
    let g = spec.build().expect("valid road_like spec");
    let (n, m) = (g.num_nodes() as u64, g.num_edges() as u64);
    eprintln!("bench_ingest: road_like {side}x{side} (n = {n}, m = {m})");

    // Store it both ways, in a scratch dir that survives only this run.
    let scratch = std::env::temp_dir().join(format!("bench_ingest_{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let flat_path = scratch.join("road.lcsg");
    let json_path = scratch.join("road.json");
    io::save_graph(&flat_path, &g, None).expect("write .lcsg");
    std::fs::write(&json_path, edge_list_json(&g)).expect("write edge-list JSON");
    let flat_bytes = std::fs::metadata(&flat_path).expect("stat").len();
    let json_bytes = std::fs::metadata(&json_path).expect("stat").len();

    let flat_source = GraphSource::FlatBinary {
        path: flat_path.to_str().expect("utf-8 path").to_string(),
    };
    let json_source = GraphSource::EdgeListJson {
        path: json_path.to_str().expect("utf-8 path").to_string(),
    };

    // Load timings. Every rep re-resolves from disk through the same
    // GraphSource path the server and session builder use.
    let mut flat_loaded = None;
    let flat_ms = median_ms(reps, || {
        flat_loaded = Some(flat_source.resolve().expect("flat load"));
    });
    let mut json_loaded = None;
    let json_ms = median_ms(reps, || {
        json_loaded = Some(json_source.resolve().expect("json load"));
    });
    let flat_loaded = flat_loaded.expect("at least one rep");
    let json_loaded = json_loaded.expect("at least one rep");
    assert_eq!(
        flat_loaded.graph, json_loaded.graph,
        "both stores must decode to the identical graph"
    );
    assert_eq!(flat_loaded.graph, g, "round trip must be lossless");

    let speedup = json_ms / flat_ms.max(1e-9);
    let bar = if fast {
        FAST_SPEEDUP_BAR
    } else {
        FULL_SPEEDUP_BAR
    };
    eprintln!(
        "bench_ingest: flat {flat_ms:.2} ms vs json {json_ms:.2} ms — {speedup:.1}x \
         (bar {bar:.0}x)"
    );
    assert!(
        speedup >= bar,
        "flat-binary load must beat JSON parse by >= {bar}x — got {speedup:.2}x \
         (flat {flat_ms:.2} ms, json {json_ms:.2} ms)"
    );

    let mut rows = vec![
        Row {
            row: "load_flat",
            graph_source: Some("flat_binary"),
            n,
            m,
            bytes: Some(flat_bytes),
            wall_ms: Some(flat_ms),
            load_speedup: Some(speedup),
            ..Row::default()
        },
        Row {
            row: "load_json",
            graph_source: Some("edge_list_json"),
            n,
            m,
            bytes: Some(json_bytes),
            wall_ms: Some(json_ms),
            ..Row::default()
        },
    ];

    // End-to-end scale-up: serve the flat-loaded graph. Sketch detection
    // plus packed messages is the million-node configuration; the voronoi
    // source gives ~1e3 connected parts without an embedding.
    let parts = if fast { 16 } else { 1024 };
    let sim = SimConfig {
        message_packing: 8,
        ..SimConfig::default()
    };
    let mut session = flat_loaded
        .session()
        .backend(Backend::Sketch(DistConfig {
            mode: DistMode::Sketch {
                t: 16,
                hash_seed: 0xbeef,
                cut_factor: 1.0,
            },
            sim,
        }))
        // `.config(..)` replaces the whole config, so the provenance
        // `ResolvedGraph::session()` recorded is restated here.
        .config(SessionConfig {
            sim,
            partition_source: Some(PartitionSource::Voronoi {
                parts,
                seed: ROAD_SEED,
            }),
            graph_source: Some(flat_source.clone()),
            ..SessionConfig::default()
        })
        .build()
        .expect("voronoi source yields a valid partition");
    assert_eq!(
        session.config().graph_source,
        Some(flat_source.clone()),
        "provenance must survive the builder"
    );
    let values: Vec<u64> = (0..n).map(|x| (x * 37) % 1009).collect();
    let t0 = Instant::now();
    let report = session.aggregate(&values, AggOp::Sum);
    let agg_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(
        report.result.all_members_informed,
        "aggregation must inform every part member"
    );
    assert!(
        report.result.metrics.terminated && !report.result.metrics.truncated,
        "the served aggregation must quiesce"
    );
    rows.push(Row {
        row: "aggregate",
        graph_source: Some("flat_binary"),
        n,
        m,
        wall_ms: Some(agg_ms),
        rounds: Some(report.rounds),
        messages: Some(report.messages),
        parts: Some(session.partition().num_parts()),
        terminated: Some(report.result.metrics.terminated),
        ..Row::default()
    });

    // The quality of the shortcut the aggregation was served over
    // (cached — the aggregate above built it).
    let q = session.quality().clone();
    assert!(q.all_connected(), "served shortcut parts must be connected");
    assert_eq!(
        session.cache_stats().full.builds,
        1,
        "quality must come from the cached shortcut"
    );
    rows.push(Row {
        row: "quality",
        graph_source: Some("flat_binary"),
        n,
        m,
        parts: Some(session.partition().num_parts()),
        delta_hat: Some(session.delta_hat()),
        congestion: Some(q.max_congestion),
        dilation: Some(q.max_dilation_upper),
        blocks: Some(q.max_blocks),
        ..Row::default()
    });

    let json = render(&rows);
    std::fs::write(format!("{out_dir}/BENCH_ingest.json"), &json).expect("write BENCH_ingest.json");
    print!("{json}");
    let _ = std::fs::remove_dir_all(&scratch);
}
