//! Minimal markdown table builder for experiment outputs.

/// A markdown table accumulated row by row.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title line and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as aligned markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:>w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("### demo"));
        assert!(s.contains("| 1 |"));
        assert!(s.contains("|    2 |"));
        assert!(s.starts_with("### "));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_wrong_width() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
