//! Experiment harness regenerating every table/figure analogue of the
//! paper (see DESIGN.md §6 for the experiment index E1–E12).
//!
//! Each experiment module exposes `run(fast: bool) -> String` producing a
//! markdown table; the `experiments` binary prints them, and EXPERIMENTS.md
//! records the outputs. `fast = true` shrinks the sweeps for smoke tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

/// All experiment ids in order.
pub const ALL: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12",
];

/// Runs one experiment by id.
///
/// # Panics
///
/// Panics on an unknown id.
pub fn run_experiment(id: &str, fast: bool) -> String {
    match id {
        "e1" => experiments::e1_partial_bounds::run(fast),
        "e2" => experiments::e2_full_bounds::run(fast),
        "e3" => experiments::e3_lower_bound::run(fast),
        "e4" => experiments::e4_dist_construction::run(fast),
        "e5" => experiments::e5_partwise::run(fast),
        "e6" => experiments::e6_mst::run(fast),
        "e7" => experiments::e7_mincut::run(fast),
        "e8" => experiments::e8_genus::run(fast),
        "e9" => experiments::e9_treewidth::run(fast),
        "e10" => experiments::e10_wheel::run(fast),
        "e11" => experiments::e11_ablation::run(fast),
        "e12" => experiments::e12_witness::run(fast),
        other => panic!("unknown experiment id {other:?} (expected e1..e12)"),
    }
}
