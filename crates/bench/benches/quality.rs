//! Criterion bench: quality measurement (congestion / dilation / blocks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_core::{full_shortcut, measure_quality, Partition, ShortcutConfig};
use lcs_graph::{bfs, gen, NodeId};

fn bench_quality(c: &mut Criterion) {
    let mut group = c.benchmark_group("measure_quality");
    group.sample_size(20);
    for side in [16usize, 32] {
        let g = gen::grid(side, side);
        let partition = Partition::from_parts(&g, gen::rows_of_grid(side, side)).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let built = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
        group.bench_with_input(BenchmarkId::new("grid_rows", side), &side, |b, _| {
            b.iter(|| std::hint::black_box(measure_quality(&g, &partition, &tree, &built.shortcut)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quality);
criterion_main!(benches);
