//! Criterion bench: CONGEST simulator throughput (BFS protocol).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_congest::{protocols::BfsTreeProgram, SimConfig, Simulator};
use lcs_graph::{gen, NodeId};

fn bench_bfs_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_bfs");
    group.sample_size(20);
    for side in [16usize, 32, 64] {
        let g = gen::grid(side, side);
        let sim = Simulator::new(&g, SimConfig::default());
        group.bench_with_input(BenchmarkId::new("grid", side * side), &side, |b, _| {
            b.iter(|| {
                let run = sim.run(|v, _| BfsTreeProgram::new(v == NodeId(0)));
                std::hint::black_box(run.metrics.rounds)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bfs_protocol);
criterion_main!(benches);
