//! Criterion bench: the centralized Theorem 3.1 sweep kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_core::{partial_shortcut_or_witness, Partition, ShortcutConfig};
use lcs_graph::{bfs, gen, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem31_sweep");
    group.sample_size(20);
    for side in [16usize, 32, 48] {
        let g = gen::grid(side, side);
        let mut rng = SmallRng::seed_from_u64(1);
        let parts = gen::random_connected_parts(&g, side * side / 8, &mut rng);
        let partition = Partition::from_parts(&g, parts).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let cfg = ShortcutConfig::default();
        group.bench_with_input(BenchmarkId::new("grid", side * side), &side, |b, _| {
            b.iter(|| {
                std::hint::black_box(partial_shortcut_or_witness(&g, &tree, &partition, 1, &cfg))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
