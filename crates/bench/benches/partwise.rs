//! Criterion bench: distributed part-wise aggregation end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_congest::protocols::AggOp;
use lcs_core::{full_shortcut, Partition, ShortcutConfig};
use lcs_graph::{bfs, gen, NodeId};
use lcs_partwise::{solve_partwise, PartwiseConfig};

fn bench_partwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("partwise_aggregation");
    group.sample_size(15);
    for side in [8usize, 16, 24] {
        let g = gen::grid(side, side);
        let partition = Partition::from_parts(&g, gen::rows_of_grid(side, side)).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let built = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
        let values: Vec<u64> = (0..g.num_nodes() as u64).collect();
        group.bench_with_input(BenchmarkId::new("grid_rows", side), &side, |b, _| {
            b.iter(|| {
                let out = solve_partwise(
                    &g,
                    &partition,
                    &built.shortcut,
                    &values,
                    AggOp::Min,
                    None,
                    &PartwiseConfig::default(),
                );
                std::hint::black_box(out.metrics.rounds)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partwise);
criterion_main!(benches);
