//! Criterion bench: distributed Boruvka MST end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_algos::mst::{distributed_mst, kruskal, BoruvkaConfig};
use lcs_graph::weights::EdgeWeights;
use lcs_graph::{gen, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_mst(c: &mut Criterion) {
    let mut group = c.benchmark_group("mst");
    group.sample_size(10);
    for side in [8usize, 12, 16] {
        let g = gen::grid(side, side);
        let mut rng = SmallRng::seed_from_u64(3);
        let w = EdgeWeights::random_unique(&g, &mut rng);
        group.bench_with_input(BenchmarkId::new("boruvka_grid", side), &side, |b, _| {
            b.iter(|| {
                let rep = distributed_mst(&g, &w, NodeId(0), &BoruvkaConfig::default());
                std::hint::black_box(rep.rounds.total())
            })
        });
        group.bench_with_input(BenchmarkId::new("kruskal_grid", side), &side, |b, _| {
            b.iter(|| std::hint::black_box(kruskal(&g, &w)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mst);
criterion_main!(benches);
