//! Criterion bench: dense-minor witness extraction (Case II).

use criterion::{criterion_group, criterion_main, Criterion};
use lcs_core::{
    extract_witness_derandomized, extract_witness_sampled, partial_shortcut_or_witness, Partition,
    ShortcutConfig, SweepOutcome, WitnessMode,
};
use lcs_graph::{bfs, gen, NodeId};

fn bench_witness(c: &mut Criterion) {
    let comb = gen::comb(16, 48);
    let partition = Partition::from_parts(&comb.graph, comb.parts.clone()).unwrap();
    let tree = bfs::bfs_tree(&comb.graph, NodeId(0));
    let cfg = ShortcutConfig {
        witness_mode: WitnessMode::Skip,
        ..ShortcutConfig::default()
    };
    let SweepOutcome::DenseMinor { data, .. } =
        partial_shortcut_or_witness(&comb.graph, &tree, &partition, 1, &cfg)
    else {
        panic!("comb must fail at δ̂ = 1");
    };

    let mut group = c.benchmark_group("witness_extraction");
    group.sample_size(30);
    group.bench_function("derandomized_comb_16_48", |b| {
        b.iter(|| {
            std::hint::black_box(extract_witness_derandomized(
                &comb.graph,
                &tree,
                &partition,
                &data,
            ))
        })
    });
    group.bench_function("sampled_comb_16_48", |b| {
        b.iter(|| {
            std::hint::black_box(extract_witness_sampled(
                &comb.graph,
                &tree,
                &partition,
                &data,
                50,
                7,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_witness);
criterion_main!(benches);
