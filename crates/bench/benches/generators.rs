//! Criterion bench: graph-family generators.

use criterion::{criterion_group, criterion_main, Criterion};
use lcs_graph::gen;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(20);
    group.bench_function("grid_64x64", |b| {
        b.iter(|| std::hint::black_box(gen::grid(64, 64)))
    });
    group.bench_function("ktree_2000_4", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(1);
            std::hint::black_box(gen::ktree(2000, 4, &mut rng))
        })
    });
    group.bench_function("lower_bound_7_48", |b| {
        b.iter(|| std::hint::black_box(gen::lower_bound_topology(7, 48)))
    });
    group.bench_function("voronoi_parts_grid32", |b| {
        let g = gen::grid(32, 32);
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(2);
            std::hint::black_box(gen::random_connected_parts(&g, 128, &mut rng))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
