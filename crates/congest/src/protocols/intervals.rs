//! Distributed DFS-interval labeling of a known tree in `O(D)` rounds.
//!
//! Two waves: subtree sizes converge up, then each node assigns its
//! children consecutive sub-intervals of its own interval top-down. The
//! resulting labels satisfy `u ∈ subtree(v) ⟺ in(v) <= in(u) < out(v)`,
//! which underlies distributed subtree queries (e.g. the 1-respecting cut
//! evaluation of the min-cut pipeline) without any sequential DFS.

use crate::protocols::TreeKnowledge;
use crate::{Ctx, Incoming, MessageSize, NodeProgram};

/// Messages: subtree sizes (up), then interval starts (down).
#[derive(Clone, Copy, Debug)]
pub enum IntervalMsg {
    /// "My subtree has this many nodes."
    Size(u64),
    /// "Your interval starts here" (the parent knows the child's size, so
    /// the end is implicit).
    Start(u64),
}

impl MessageSize for IntervalMsg {
    fn size_bits(&self) -> usize {
        1 + 64
    }

    /// Subtree sizes and interval starts are bounded by `n`: id-sized.
    fn size_bits_in(&self, n: usize) -> usize {
        1 + crate::id_bits(n)
    }
}

/// Per-node interval-labeling program over a known tree.
///
/// After quiescence every tree node holds `interval() = Some((in, out))`
/// with `out - in` equal to its subtree size.
#[derive(Clone, Debug)]
pub struct IntervalLabelProgram {
    parent_port: Option<usize>,
    children_ports: Vec<usize>,
    in_tree: bool,
    is_root: bool,
    /// Sizes received per child (aligned with `children_ports`).
    child_sizes: Vec<Option<u64>>,
    my_size: Option<u64>,
    interval: Option<(u64, u64)>,
}

impl IntervalLabelProgram {
    /// Creates the program from the node's tree knowledge.
    pub fn new(tk: &TreeKnowledge, node: lcs_graph::NodeId) -> Self {
        let children_ports = tk.children_ports[node.index()].clone();
        IntervalLabelProgram {
            parent_port: tk.parent_port[node.index()],
            child_sizes: vec![None; children_ports.len()],
            children_ports,
            in_tree: tk.depth[node.index()] != u32::MAX,
            is_root: node == tk.root,
            my_size: None,
            interval: None,
        }
    }

    /// The assigned `[in, out)` interval, once labeled.
    pub fn interval(&self) -> Option<(u64, u64)> {
        self.interval
    }

    /// This node's `in` time.
    pub fn tin(&self) -> Option<u64> {
        self.interval.map(|(i, _)| i)
    }

    fn try_report_size(&mut self, ctx: &mut Ctx<'_, IntervalMsg>) {
        if self.my_size.is_some() || self.child_sizes.iter().any(Option::is_none) {
            return;
        }
        let size = 1 + self.child_sizes.iter().map(|s| s.unwrap()).sum::<u64>();
        self.my_size = Some(size);
        if let Some(p) = self.parent_port {
            ctx.send(p, IntervalMsg::Size(size));
        } else if self.is_root {
            self.assign(0, ctx);
        }
    }

    fn assign(&mut self, start: u64, ctx: &mut Ctx<'_, IntervalMsg>) {
        let size = self.my_size.expect("sizes precede assignment");
        self.interval = Some((start, start + size));
        // Children get consecutive sub-intervals after this node's own slot.
        let mut cursor = start + 1;
        for (i, &port) in self.children_ports.iter().enumerate() {
            ctx.send(port, IntervalMsg::Start(cursor));
            cursor += self.child_sizes[i].expect("all child sizes known");
        }
    }
}

impl NodeProgram for IntervalLabelProgram {
    type Msg = IntervalMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, IntervalMsg>) {
        if self.in_tree {
            self.try_report_size(ctx);
        }
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, IntervalMsg>, inbox: &[Incoming<IntervalMsg>]) {
        for m in inbox {
            match m.msg {
                IntervalMsg::Size(s) => {
                    let idx = self
                        .children_ports
                        .iter()
                        .position(|&p| p == m.port)
                        .expect("size reports come from children");
                    self.child_sizes[idx] = Some(s);
                }
                IntervalMsg::Start(start) => {
                    self.assign(start, ctx);
                }
            }
        }
        self.try_report_size(ctx);
    }

    fn is_done(&self) -> bool {
        !self.in_tree || self.interval.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::TreeKnowledge;
    use crate::{SimConfig, Simulator};
    use lcs_graph::{bfs, gen, NodeId};

    fn labels(g: &lcs_graph::Graph, root: NodeId) -> (Vec<(u64, u64)>, u64) {
        let tree = bfs::bfs_tree(g, root);
        let tk = TreeKnowledge::from_rooted_tree(g, &tree);
        let sim = Simulator::new(g, SimConfig::default());
        let run = sim.run(|v, _| IntervalLabelProgram::new(&tk, v));
        assert!(run.metrics.terminated);
        (
            run.programs
                .iter()
                .map(|p| p.interval().expect("all nodes labeled"))
                .collect(),
            run.metrics.rounds,
        )
    }

    #[test]
    fn intervals_encode_ancestry() {
        let g = gen::grid(4, 5);
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let (iv, rounds) = labels(&g, NodeId(0));
        // Root interval covers everything.
        assert_eq!(iv[0], (0, 20));
        // Ancestry ⟺ interval containment, checked pairwise.
        for u in g.nodes() {
            for v in g.nodes() {
                let ancestor = {
                    let mut cur = u;
                    let mut found = u == v;
                    while let Some((p, _)) = tree.parent(cur) {
                        cur = p;
                        if cur == v {
                            found = true;
                            break;
                        }
                    }
                    found
                };
                let contained =
                    iv[v.index()].0 <= iv[u.index()].0 && iv[u.index()].0 < iv[v.index()].1;
                assert_eq!(ancestor, contained, "{u:?} in subtree({v:?})");
            }
        }
        // Two waves of depth ≈ ecc each.
        assert!(rounds <= 2 * 8 + 4);
    }

    #[test]
    fn interval_lengths_are_subtree_sizes() {
        let g = gen::binary_tree(4);
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let (iv, _) = labels(&g, NodeId(0));
        let sizes = tree.subtree_sizes();
        for v in g.nodes() {
            assert_eq!(
                iv[v.index()].1 - iv[v.index()].0,
                u64::from(sizes[v.index()])
            );
        }
    }

    #[test]
    fn single_node_labeling() {
        let g = gen::path(1);
        let (iv, rounds) = labels(&g, NodeId(0));
        assert_eq!(iv[0], (0, 1));
        assert_eq!(rounds, 0);
    }
}
