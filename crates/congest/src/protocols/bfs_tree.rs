//! Distributed BFS-tree construction.

use crate::protocols::TreeKnowledge;
use crate::{Ctx, Incoming, MessageSize, NodeProgram, RunOutcome};
use lcs_graph::{Graph, NodeId};

/// Messages of the BFS protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BfsMsg {
    /// "My BFS distance is `d`" — floods outward from the root.
    Dist(u32),
    /// "I chose you as my parent" — lets parents learn their children.
    Adopt,
}

impl MessageSize for BfsMsg {
    fn size_bits(&self) -> usize {
        match self {
            BfsMsg::Dist(_) => 1 + 32,
            BfsMsg::Adopt => 1,
        }
    }

    /// BFS distances are bounded by `n`, so they are id-sized payloads:
    /// `O(log n)` bits, as the CONGEST model assumes.
    fn size_bits_in(&self, n: usize) -> usize {
        match self {
            BfsMsg::Dist(_) => 1 + crate::id_bits(n),
            BfsMsg::Adopt => 1,
        }
    }
}

/// Per-node BFS program: builds a BFS tree rooted at the initiator in
/// `ecc(root) + O(1)` rounds with `O(m)` messages.
///
/// After the run, [`extract_tree`] recovers the tree knowledge.
#[derive(Clone, Debug)]
pub struct BfsTreeProgram {
    is_root: bool,
    dist: Option<u32>,
    parent_port: Option<usize>,
    children_ports: Vec<usize>,
}

impl BfsTreeProgram {
    /// Creates the program; exactly one node must pass `is_root = true`.
    pub fn new(is_root: bool) -> Self {
        BfsTreeProgram {
            is_root,
            dist: if is_root { Some(0) } else { None },
            parent_port: None,
            children_ports: Vec::new(),
        }
    }

    /// The node's BFS depth, `None` if unreached.
    pub fn dist(&self) -> Option<u32> {
        self.dist
    }

    /// Port to the parent (`None` at the root / unreached nodes).
    pub fn parent_port(&self) -> Option<usize> {
        self.parent_port
    }

    /// Ports to the children.
    pub fn children_ports(&self) -> &[usize] {
        &self.children_ports
    }
}

impl NodeProgram for BfsTreeProgram {
    type Msg = BfsMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, BfsMsg>) {
        if self.is_root {
            ctx.broadcast(BfsMsg::Dist(0));
        }
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, BfsMsg>, inbox: &[Incoming<BfsMsg>]) {
        let mut best: Option<(u32, usize)> = None;
        for m in inbox {
            match m.msg {
                BfsMsg::Dist(d) => {
                    if best.map(|(bd, bp)| (d, m.port) < (bd, bp)).unwrap_or(true) {
                        best = Some((d, m.port));
                    }
                }
                BfsMsg::Adopt => self.children_ports.push(m.port),
            }
        }
        if let Some((d, port)) = best {
            if self.dist.is_none() {
                self.dist = Some(d + 1);
                self.parent_port = Some(port);
                ctx.send(port, BfsMsg::Adopt);
                let my = d + 1;
                for p in 0..ctx.degree() {
                    if p != port {
                        ctx.send(p, BfsMsg::Dist(my));
                    }
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        true // quiescence-detected; unreached nodes stay silent
    }
}

/// Collects the per-node BFS states of a finished run into a
/// [`TreeKnowledge`].
///
/// # Panics
///
/// Panics if no node was the root.
pub fn extract_tree(g: &Graph, run: &RunOutcome<BfsTreeProgram>) -> TreeKnowledge {
    let n = g.num_nodes();
    let mut parent_port = vec![None; n];
    let mut children_ports = vec![Vec::new(); n];
    let mut depth = vec![u32::MAX; n];
    let mut root = None;
    for (v, prog) in run.programs.iter().enumerate() {
        if prog.is_root {
            root = Some(NodeId(v as u32));
        }
        if let Some(d) = prog.dist {
            depth[v] = d;
        }
        parent_port[v] = prog.parent_port;
        let mut ports = prog.children_ports.clone();
        ports.sort_unstable();
        children_ports[v] = ports;
    }
    TreeKnowledge {
        parent_port,
        children_ports,
        depth,
        root: root.expect("exactly one node must be the BFS root"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator};
    use lcs_graph::{bfs, gen};

    #[test]
    fn distances_match_centralized_bfs() {
        let g = gen::grid(5, 7);
        let sim = Simulator::new(&g, SimConfig::default());
        let run = sim.run(|v, _| BfsTreeProgram::new(v == NodeId(0)));
        assert!(run.metrics.terminated);
        let reference = bfs::bfs(&g, NodeId(0));
        for v in g.nodes() {
            assert_eq!(
                run.programs[v.index()].dist(),
                Some(reference.dist[v.index()])
            );
        }
        // Rounds: eccentricity + small constant for adoption/quiescence.
        let ecc = reference.eccentricity() as u64;
        assert!(run.metrics.rounds >= ecc && run.metrics.rounds <= ecc + 3);
    }

    #[test]
    fn tree_knowledge_is_consistent() {
        let g = gen::torus(4, 5);
        let sim = Simulator::new(&g, SimConfig::default());
        let run = sim.run(|v, _| BfsTreeProgram::new(v == NodeId(7)));
        let tk = extract_tree(&g, &run);
        assert_eq!(tk.root, NodeId(7));
        assert_eq!(tk.num_tree_nodes(), 20);
        // Every non-root node's parent has it as a child.
        for v in g.nodes() {
            if v == tk.root {
                assert!(tk.parent_port[v.index()].is_none());
                continue;
            }
            let up = tk.parent_port[v.index()].unwrap();
            let p = g.heads(v)[up];
            assert_eq!(tk.depth[v.index()], tk.depth[p.index()] + 1);
            let children: Vec<NodeId> = tk.children_ports[p.index()]
                .iter()
                .map(|&port| g.heads(p)[port])
                .collect();
            assert!(children.contains(&v));
        }
    }

    #[test]
    fn unreached_components_stay_unset() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let sim = Simulator::new(&g, SimConfig::default());
        let run = sim.run(|v, _| BfsTreeProgram::new(v == NodeId(0)));
        assert!(run.metrics.terminated);
        assert_eq!(run.programs[2].dist(), None);
        assert_eq!(run.programs[3].dist(), None);
    }

    use lcs_graph::Graph;
}
