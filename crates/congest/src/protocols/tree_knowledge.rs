//! Port-based tree knowledge: what each node locally knows about a rooted
//! spanning tree.

use lcs_graph::{Graph, NodeId, RootedTree};

/// Per-node local knowledge of a rooted spanning tree: the port to the
/// parent, the ports to the children, and the own depth.
///
/// This is the information a distributed BFS leaves behind at each node; it
/// is also constructible from a centralized [`RootedTree`] for layering
/// protocols in tests and experiments.
#[derive(Clone, Debug)]
pub struct TreeKnowledge {
    /// `parent_port[v]` = local port of `v` leading to its parent (`None`
    /// for the root and nodes outside the tree).
    pub parent_port: Vec<Option<usize>>,
    /// `children_ports[v]` = local ports of `v` leading to its children.
    pub children_ports: Vec<Vec<usize>>,
    /// `depth[v]`; `u32::MAX` for nodes outside the tree.
    pub depth: Vec<u32>,
    /// The root node.
    pub root: NodeId,
}

impl TreeKnowledge {
    /// Converts a centralized [`RootedTree`] into per-node port knowledge.
    ///
    /// # Panics
    ///
    /// Panics if the tree refers to edges absent from `g`.
    pub fn from_rooted_tree(g: &Graph, tree: &RootedTree) -> Self {
        let n = g.num_nodes();
        let mut parent_port = vec![None; n];
        let mut children_ports = vec![Vec::new(); n];
        let mut depth = vec![u32::MAX; n];
        for &v in tree.order() {
            depth[v.index()] = tree.depth(v);
            if let Some((p, _)) = tree.parent(v) {
                let up = port_of(g, v, p);
                parent_port[v.index()] = Some(up);
                let down = port_of(g, p, v);
                children_ports[p.index()].push(down);
            }
        }
        TreeKnowledge {
            parent_port,
            children_ports,
            depth,
            root: tree.root(),
        }
    }

    /// Reconstructs the centralized [`RootedTree`] from the per-node port
    /// knowledge — the inverse of [`from_rooted_tree`](Self::from_rooted_tree),
    /// used to lift a finished distributed BFS run into the centralized
    /// tree machinery.
    ///
    /// # Panics
    ///
    /// Panics if the knowledge is inconsistent (ports out of range, depths
    /// disagreeing with parents).
    pub fn to_rooted_tree(&self, g: &Graph) -> RootedTree {
        let n = g.num_nodes();
        let mut parent = vec![None; n];
        let mut order: Vec<NodeId> = Vec::new();
        for v in g.nodes() {
            if self.depth[v.index()] == u32::MAX {
                continue;
            }
            order.push(v);
            if let Some(port) = self.parent_port[v.index()] {
                let nb = g.neighbor(v, port);
                parent[v.index()] = Some((nb.node, nb.edge));
            }
        }
        order.sort_unstable_by_key(|&v| (self.depth[v.index()], v));
        RootedTree::from_parents(g, self.root, &parent, &self.depth, &order)
    }

    /// Number of tree nodes.
    pub fn num_tree_nodes(&self) -> usize {
        self.depth.iter().filter(|&&d| d != u32::MAX).count()
    }

    /// Maximum depth over tree nodes.
    pub fn tree_depth(&self) -> u32 {
        self.depth
            .iter()
            .copied()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0)
    }
}

fn port_of(g: &Graph, from: NodeId, to: NodeId) -> usize {
    g.port_to(from, to)
        .unwrap_or_else(|| panic!("{from:?} and {to:?} are not adjacent"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::{bfs, gen};

    #[test]
    fn to_rooted_tree_round_trips() {
        let g = gen::torus(4, 5);
        let tree = bfs::bfs_tree(&g, NodeId(7));
        let tk = TreeKnowledge::from_rooted_tree(&g, &tree);
        let back = tk.to_rooted_tree(&g);
        assert_eq!(back.root(), tree.root());
        assert_eq!(back.depth_of_tree(), tree.depth_of_tree());
        for v in g.nodes() {
            assert_eq!(back.parent(v), tree.parent(v));
        }
    }

    #[test]
    fn round_trip_from_rooted_tree() {
        let g = gen::grid(3, 3);
        let tree = bfs::bfs_tree(&g, NodeId(4));
        let tk = TreeKnowledge::from_rooted_tree(&g, &tree);
        assert_eq!(tk.root, NodeId(4));
        assert_eq!(tk.num_tree_nodes(), 9);
        assert_eq!(tk.tree_depth(), tree.depth_of_tree());
        // Parent/child ports are mutually consistent.
        for v in g.nodes() {
            if let Some(up) = tk.parent_port[v.index()] {
                let p = g.heads(v)[up];
                let back: Vec<NodeId> = tk.children_ports[p.index()]
                    .iter()
                    .map(|&port| g.heads(p)[port])
                    .collect();
                assert!(back.contains(&v));
            }
        }
    }
}
