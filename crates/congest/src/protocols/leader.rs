//! Leader election by maximum-id flooding.

use crate::{Ctx, Incoming, NodeIdMsg, NodeProgram};

/// Max-id flooding: every node learns the maximum node id in its component
/// in `O(D)` rounds and `O(m·D)` messages (each improvement floods once).
///
/// After quiescence the node with `leader() == own id` is the unique leader
/// of its component.
#[derive(Clone, Debug)]
pub struct LeaderElectProgram {
    own: u32,
    best: u32,
}

impl LeaderElectProgram {
    /// Creates the program for a node with the given id.
    pub fn new(id: lcs_graph::NodeId) -> Self {
        LeaderElectProgram {
            own: id.0,
            best: id.0,
        }
    }

    /// The best (maximum) id heard so far — the leader after quiescence.
    pub fn leader(&self) -> u32 {
        self.best
    }

    /// Whether this node won.
    pub fn is_leader(&self) -> bool {
        self.best == self.own
    }
}

impl NodeProgram for LeaderElectProgram {
    // The message *is* a node id, so the [`NodeIdMsg`] wrapper bills it at
    // `id_bits(n)` rather than a fixed 32 bits.
    type Msg = NodeIdMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, NodeIdMsg>) {
        let b = self.best;
        ctx.broadcast(NodeIdMsg(b));
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, NodeIdMsg>, inbox: &[Incoming<NodeIdMsg>]) {
        let incoming_max = inbox.iter().map(|m| m.msg.0).max().unwrap_or(0);
        if incoming_max > self.best {
            self.best = incoming_max;
            let b = self.best;
            ctx.broadcast(NodeIdMsg(b));
        }
    }

    fn is_done(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator};
    use lcs_graph::{gen, NodeId};

    #[test]
    fn unique_leader_on_connected_graph() {
        let g = gen::cycle(9);
        let sim = Simulator::new(&g, SimConfig::default());
        let run = sim.run(|v, _| LeaderElectProgram::new(v));
        assert!(run.metrics.terminated);
        let leaders: Vec<bool> = run.programs.iter().map(|p| p.is_leader()).collect();
        assert_eq!(leaders.iter().filter(|&&l| l).count(), 1);
        assert!(run.programs.iter().all(|p| p.leader() == 8));
    }

    #[test]
    fn per_component_leaders() {
        let g = lcs_graph::Graph::from_edges(5, [(0, 1), (2, 3), (3, 4)]);
        let sim = Simulator::new(&g, SimConfig::default());
        let run = sim.run(|v, _| LeaderElectProgram::new(v));
        assert_eq!(run.programs[0].leader(), 1);
        assert_eq!(run.programs[1].leader(), 1);
        assert_eq!(run.programs[2].leader(), 4);
        assert_eq!(run.programs[4].leader(), 4);
        let _ = NodeId(0);
    }
}
