//! Tree convergecast: aggregate one value per node up to the root.

use crate::protocols::TreeKnowledge;
use crate::{Ctx, Incoming, NodeProgram};

/// The aggregation operator of a convergecast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggOp {
    /// Sum of all values (counts, subtree sizes).
    Sum,
    /// Minimum.
    Min,
    /// Maximum (e.g. tree depth).
    Max,
}

impl AggOp {
    /// Applies the operator.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AggOp::Sum => a.wrapping_add(b),
            AggOp::Min => a.min(b),
            AggOp::Max => a.max(b),
        }
    }
}

/// Convergecast over a known tree: leaves send first; every node forwards
/// the aggregate of its subtree once all children reported. Completes in
/// `depth + 1` rounds with one message per tree edge.
///
/// The root's [`result`](ConvergecastProgram::result) holds the global
/// aggregate after the run.
#[derive(Clone, Debug)]
pub struct ConvergecastProgram {
    op: AggOp,
    value: u64,
    parent_port: Option<usize>,
    expected: usize,
    heard: usize,
    in_tree: bool,
    sent: bool,
    result: Option<u64>,
}

impl ConvergecastProgram {
    /// Creates the per-node program from the node's tree knowledge and local
    /// input `value`.
    pub fn new(tk: &TreeKnowledge, node: lcs_graph::NodeId, op: AggOp, value: u64) -> Self {
        let in_tree = tk.depth[node.index()] != u32::MAX;
        ConvergecastProgram {
            op,
            value,
            parent_port: tk.parent_port[node.index()],
            expected: tk.children_ports[node.index()].len(),
            heard: 0,
            in_tree,
            sent: false,
            result: None,
        }
    }

    /// The subtree aggregate (global aggregate at the root), available once
    /// the node has fired.
    pub fn result(&self) -> Option<u64> {
        self.result
    }

    fn maybe_fire(&mut self, ctx: &mut Ctx<'_, u64>) {
        if self.sent || !self.in_tree || self.heard < self.expected {
            return;
        }
        self.sent = true;
        self.result = Some(self.value);
        if let Some(p) = self.parent_port {
            ctx.send(p, self.value);
        }
    }
}

impl NodeProgram for ConvergecastProgram {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        self.maybe_fire(ctx);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Incoming<u64>]) {
        for m in inbox {
            self.value = self.op.apply(self.value, m.msg);
            self.heard += 1;
        }
        self.maybe_fire(ctx);
    }

    fn is_done(&self) -> bool {
        self.sent || !self.in_tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::TreeKnowledge;
    use crate::{SimConfig, Simulator};
    use lcs_graph::{bfs, gen, NodeId};

    fn run_agg(op: AggOp, values: impl Fn(NodeId) -> u64) -> (u64, u64) {
        let g = gen::grid(4, 4);
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let tk = TreeKnowledge::from_rooted_tree(&g, &tree);
        let sim = Simulator::new(&g, SimConfig::default());
        let run = sim.run(|v, _| ConvergecastProgram::new(&tk, v, op, values(v)));
        assert!(run.metrics.terminated);
        (run.programs[0].result().unwrap(), run.metrics.rounds)
    }

    #[test]
    fn sum_counts_nodes() {
        let (total, rounds) = run_agg(AggOp::Sum, |_| 1);
        assert_eq!(total, 16);
        assert!(rounds <= 8); // depth 6 + fire + quiescence
    }

    #[test]
    fn max_finds_global_max() {
        let (m, _) = run_agg(AggOp::Max, |v| u64::from(v.0) * 10);
        assert_eq!(m, 150);
    }

    #[test]
    fn min_finds_global_min() {
        let (m, _) = run_agg(AggOp::Min, |v| 100 + u64::from(v.0));
        assert_eq!(m, 100);
    }

    #[test]
    fn single_node_tree() {
        let g = gen::path(1);
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let tk = TreeKnowledge::from_rooted_tree(&g, &tree);
        let sim = Simulator::new(&g, SimConfig::default());
        let run = sim.run(|v, _| ConvergecastProgram::new(&tk, v, AggOp::Sum, 7));
        assert_eq!(run.programs[0].result(), Some(7));
        assert_eq!(run.metrics.rounds, 0);
    }
}
