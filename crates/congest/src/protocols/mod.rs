//! Standard CONGEST building blocks: BFS trees, broadcast, convergecast,
//! leader election.
//!
//! These are the primitives every shortcut-based algorithm composes
//! (Section 2 of the paper assumes them implicitly). Each protocol is a
//! [`NodeProgram`](crate::NodeProgram) plus an extraction helper that turns
//! the final node states into whole-network knowledge for the next layer.
//!
//! All protocols run unchanged on the sharded parallel executor
//! ([`SimConfig::threads`](crate::SimConfig::threads)): node callbacks only
//! touch their own state and `Ctx`, so shard workers can execute them
//! concurrently while the engine guarantees thread-count-invariant metrics.

#[cfg(test)]
mod parallel_tests;

mod bfs_tree;
mod broadcast;
mod convergecast;
mod intervals;
mod leader;
mod tree_knowledge;

pub use bfs_tree::{extract_tree, BfsMsg, BfsTreeProgram};
pub use broadcast::BroadcastProgram;
pub use convergecast::{AggOp, ConvergecastProgram};
pub use intervals::{IntervalLabelProgram, IntervalMsg};
pub use leader::LeaderElectProgram;
pub use tree_knowledge::TreeKnowledge;
