//! Standard CONGEST building blocks: BFS trees, broadcast, convergecast,
//! leader election.
//!
//! These are the primitives every shortcut-based algorithm composes
//! (Section 2 of the paper assumes them implicitly). Each protocol is a
//! [`NodeProgram`](crate::NodeProgram) plus an extraction helper that turns
//! the final node states into whole-network knowledge for the next layer.

mod bfs_tree;
mod broadcast;
mod convergecast;
mod intervals;
mod leader;
mod tree_knowledge;

pub use bfs_tree::{extract_tree, BfsMsg, BfsTreeProgram};
pub use broadcast::BroadcastProgram;
pub use convergecast::{AggOp, ConvergecastProgram};
pub use intervals::{IntervalLabelProgram, IntervalMsg};
pub use leader::LeaderElectProgram;
pub use tree_knowledge::TreeKnowledge;
