//! Thread-count invariance of the standard protocols: the sharded executor
//! must produce the same trees, leaders, and metrics as the inline loop.

use super::{extract_tree, BfsTreeProgram, LeaderElectProgram};
use crate::{SimConfig, Simulator};
use lcs_graph::{gen, NodeId};

#[test]
fn bfs_tree_is_thread_count_invariant() {
    let g = gen::grid(9, 7);
    let run_with = |threads| {
        let sim = Simulator::new(
            &g,
            SimConfig {
                threads,
                ..SimConfig::default()
            },
        );
        let run = sim.run(|v, _| BfsTreeProgram::new(v == NodeId(0)));
        assert!(run.metrics.terminated);
        let tree = extract_tree(&g, &run);
        (run.metrics, tree)
    };
    let (metrics1, tree1) = run_with(1);
    for threads in [2, 4] {
        let (metrics, tree) = run_with(threads);
        assert_eq!(metrics.counts(), metrics1.counts(), "threads={threads}");
        assert_eq!(tree.parent_port, tree1.parent_port, "threads={threads}");
    }
}

#[test]
fn leader_election_is_thread_count_invariant() {
    let g = gen::torus(5, 5);
    let run_with = |threads| {
        let sim = Simulator::new(
            &g,
            SimConfig {
                threads,
                ..SimConfig::default()
            },
        );
        let run = sim.run(|v, _| LeaderElectProgram::new(v));
        assert!(run.metrics.terminated);
        let leaders: Vec<_> = run.programs.iter().map(|p| p.leader()).collect();
        (run.metrics, leaders)
    };
    let (metrics1, leaders1) = run_with(1);
    let (metrics4, leaders4) = run_with(4);
    assert_eq!(metrics4.counts(), metrics1.counts());
    assert_eq!(leaders4, leaders1);
}
