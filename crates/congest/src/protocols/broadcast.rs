//! Tree broadcast: the root's value travels down to every tree node.

use crate::protocols::TreeKnowledge;
use crate::{Ctx, Incoming, NodeProgram};

/// Broadcast over a known tree: completes in `depth` rounds with one message
/// per tree edge.
#[derive(Clone, Debug)]
pub struct BroadcastProgram {
    payload: Option<u64>,
    children_ports: Vec<usize>,
    in_tree: bool,
    is_root: bool,
}

impl BroadcastProgram {
    /// Creates the per-node program; `payload` is `Some` only at the root.
    pub fn new(tk: &TreeKnowledge, node: lcs_graph::NodeId, payload: Option<u64>) -> Self {
        let is_root = node == tk.root;
        assert_eq!(
            is_root,
            payload.is_some(),
            "exactly the root carries the payload"
        );
        BroadcastProgram {
            payload,
            children_ports: tk.children_ports[node.index()].clone(),
            in_tree: tk.depth[node.index()] != u32::MAX,
            is_root,
        }
    }

    /// The received (or originated) value, once the wave has passed.
    pub fn received(&self) -> Option<u64> {
        self.payload
    }

    fn forward(&self, ctx: &mut Ctx<'_, u64>) {
        let v = self.payload.expect("forward only after receipt");
        for &p in &self.children_ports {
            ctx.send(p, v);
        }
    }
}

impl NodeProgram for BroadcastProgram {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        if self.is_root {
            self.forward(ctx);
        }
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[Incoming<u64>]) {
        if self.payload.is_none() {
            if let Some(m) = inbox.first() {
                self.payload = Some(m.msg);
                self.forward(ctx);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.payload.is_some() || !self.in_tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::TreeKnowledge;
    use crate::{SimConfig, Simulator};
    use lcs_graph::{bfs, gen, NodeId};

    #[test]
    fn every_tree_node_receives_the_value() {
        let g = gen::grid(4, 5);
        let tree = bfs::bfs_tree(&g, NodeId(3));
        let tk = TreeKnowledge::from_rooted_tree(&g, &tree);
        let sim = Simulator::new(&g, SimConfig::default());
        let run = sim.run(|v, _| BroadcastProgram::new(&tk, v, (v == NodeId(3)).then_some(99)));
        assert!(run.metrics.terminated);
        assert!(run.programs.iter().all(|p| p.received() == Some(99)));
        assert_eq!(run.metrics.messages, 19); // one per tree edge
        assert!(run.metrics.rounds <= u64::from(tree.depth_of_tree()) + 1);
    }

    #[test]
    #[should_panic(expected = "exactly the root")]
    fn non_root_payload_rejected() {
        let g = gen::path(2);
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let tk = TreeKnowledge::from_rooted_tree(&g, &tree);
        BroadcastProgram::new(&tk, NodeId(1), Some(1));
    }
}
