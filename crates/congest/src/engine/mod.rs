//! The round-driven simulation engine.
//!
//! # Architecture
//!
//! The engine is split into focused layers (see each module's docs):
//!
//! - [`topology`] — the per-run routing tables: directed-edge reverse map
//!   (`dir = first_out[v] + port` is the message address), the shard
//!   layout of the node-id space, and the per-shard dir partition
//!   (`dir_shard` / `dir_local`) the decentralized delivery indexes by.
//! - [`delivery`] — pluggable delivery backends behind the `Delivery`
//!   trait, instantiated **once per receiver shard**: strict mode is a
//!   flat send arena drained in one linear pass; queued mode is a
//!   bucketed **calendar queue** (per-round buckets indexed by
//!   `slot % horizon`, an overflow ring for deeper backlogs, per-edge
//!   `VecDeque` rings, and delivery-time merging of queued same-priority
//!   messages under `message_packing`).
//! - [`shard`] — a contiguous node range owning its programs, RNGs,
//!   inboxes, and wake bookkeeping; the unit of parallel work.
//! - [`parallel`] — the decentralized round executor: each *lane* (a
//!   shard plus its delivery partition) ingests routed envelopes, stages,
//!   computes,
//!   and validates/bit-accounts its own sends fully in parallel; the
//!   coordinator's serial window shrinks to an `O(threads)` account fold,
//!   a prefix sum of send counts (the sequence-number bases), and a
//!   mailbox rotation — no per-message serial work remains.
//!
//! Determinism: every per-message decision happens inside a lane, in an
//! order fixed by the topology (nodes ascending within a shard, issue
//! order within a node, sender-shard-major ingestion), and the exact
//! global sequence numbers are reconstructed from the per-shard send
//! counts via a prefix sum in shard order. Metrics are folded from the
//! per-lane accounts in shard order. The pinned conformance corpus
//! (`tests/sim_conformance.rs`) is therefore bit-identical at every
//! [`SimConfig::threads`] setting.

mod delivery;
mod parallel;
mod shard;
mod topology;

use crate::{MessageSize, PackedMsg, PhaseTimings, RunMetrics};
use delivery::{CalendarDelivery, Delivery, ShardAccount, StrictDelivery};
use lcs_graph::{EdgeId, Graph, NodeId};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};
use shard::Shard;
use std::time::Instant;
use topology::Topology;

/// How the engine treats sends beyond one message per edge per round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SimMode {
    /// Pure CONGEST: a second message over the same directed edge in one
    /// round is a protocol bug and panics. With
    /// [`SimConfig::message_packing`]` = k > 1`, up to `k` *consecutive*
    /// same-port sends coalesce into one message first, so a short burst
    /// that fits one packed envelope is legal; only a second envelope on
    /// the same edge panics.
    #[default]
    Strict,
    /// Sends are queued per directed edge and drained one per round in
    /// priority order (ties: FIFO). This models running several protocol
    /// instances side by side with a scheduler — the random-delay technique
    /// of [LMR94, Gha15] assigns each instance a random priority.
    Queued,
}

/// Simulator configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Send discipline.
    pub mode: SimMode,
    /// Per-message size limit in bits; `None` = `4·⌈log₂(n+1)⌉ + 128`, the
    /// usual `O(log n)` CONGEST budget with constant headroom for a few ids
    /// plus one aggregate value per message.
    pub bandwidth_bits: Option<usize>,
    /// Hard cap on simulated rounds (guards against non-terminating
    /// protocols). A run cut short by the cap reports
    /// [`RunMetrics::truncated`]` = true`.
    pub max_rounds: u64,
    /// Seed for the per-node RNG streams.
    pub seed: u64,
    /// Worker threads for the sharded round executor. `1` (the default)
    /// runs fully inline with zero threading overhead; `0` resolves to the
    /// host's available parallelism; larger values are capped at 64 and at
    /// the node count. **Any setting yields bit-identical metrics**: shard
    /// outboxes are merged in shard order, so rounds, messages, bits, and
    /// max_queue never depend on the thread count.
    pub threads: usize,
    /// Multi-value message packing factor. `1` (the default) is the
    /// unpacked engine: every send is its own message, metrics are
    /// bit-identical to every prior engine version. At `k > 1` the engine
    /// coalesces up to `k` **consecutive** same-port, same-priority sends
    /// of one node-round into one [`PackedMsg`] batch, greedily while the
    /// batch's true packed width (first value full-size, later values at
    /// their [`MessageSize::size_bits_packed_in`] marginal cost) fits the
    /// per-message bandwidth budget. A batch is one CONGEST message — one
    /// `messages` tick, one queue slot, one delivery round — which is how
    /// the `O(log n)`-bit bandwidth carries `k` values of `O(log n / k)`
    /// bits each and streaming convergecasts drop their round counts ~`k`×.
    /// Receivers observe the identical value sequence at every packing
    /// level (batches unpack into individual [`Incoming`] entries in issue
    /// order), so protocol *results* never depend on this knob. `0` is
    /// treated as `1`.
    ///
    /// Schema note: like `threads`/`bandwidth_bits` before it (see
    /// [`RunMetrics::threads`]), adding this field is a deliberate
    /// config-schema break — the vendored serde shim has no
    /// `#[serde(default)]`, so `SimConfig`/`SessionConfig` payloads
    /// serialized before this field existed no longer deserialize. No such
    /// payloads are persisted in this repository; the pinned default-JSON
    /// snapshot in `tests/session.rs` records the break.
    ///
    /// [`PackedMsg`]: crate::PackedMsg
    /// [`RunMetrics::threads`]: crate::RunMetrics::threads
    pub message_packing: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mode: SimMode::Strict,
            bandwidth_bits: None,
            max_rounds: 1_000_000,
            seed: 0xc0ffee,
            threads: 1,
            message_packing: 1,
        }
    }
}

/// A message delivered to a node this round.
///
/// The order of messages within one round's inbox is deterministic for a
/// fixed engine version but otherwise **unspecified** (it changed in the
/// batched-delivery rewrite); protocols must treat it as adversarial, as
/// the CONGEST model demands, and key any tie-breaking on `port` or
/// message content instead.
#[derive(Clone, Debug)]
pub struct Incoming<M> {
    /// The local port (index into the node's neighbor list) it arrived on.
    pub port: usize,
    /// The payload.
    pub msg: M,
}

/// The per-node protocol logic.
///
/// Programs are event-driven: [`on_round`](NodeProgram::on_round) fires only
/// when the node received messages or previously called
/// [`Ctx::wake_next_round`]. The run ends when every program reports
/// [`is_done`](NodeProgram::is_done), no messages are in flight, and no
/// wake-ups are pending.
pub trait NodeProgram {
    /// The message type exchanged by this protocol.
    type Msg: Clone + MessageSize;

    /// Called once before the first round; typically initiators send here.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called each round the node is active, with the messages delivered
    /// this round.
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>, inbox: &[Incoming<Self::Msg>]);

    /// Local termination flag.
    fn is_done(&self) -> bool;
}

/// The node's view of the network during a callback.
pub struct Ctx<'a, M> {
    pub(crate) node: NodeId,
    pub(crate) round: u64,
    /// The node's CSR neighbor slice (sorted by id); `heads[port]` is the
    /// node on `port`.
    pub(crate) heads: &'a [NodeId],
    /// Incident edge ids, parallel to `heads`.
    pub(crate) edges: &'a [EdgeId],
    /// Sends issued by this node: `(port, priority, msg)`; the shard
    /// rewrites `port` to the global directed-edge id after the callback.
    pub(crate) outbox: &'a mut Vec<(u32, u64, M)>,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) wake: &'a mut bool,
}

impl<M> Ctx<'_, M> {
    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The current round (1-based; 0 during `on_start`).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of incident edges.
    pub fn degree(&self) -> usize {
        self.heads.len()
    }

    /// The neighbor id on `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree()`.
    pub fn neighbor(&self, port: usize) -> NodeId {
        self.heads[port]
    }

    /// The edge id on `port` (useful for reporting; protocols should not
    /// treat it as topology knowledge beyond the incident edge).
    pub fn edge(&self, port: usize) -> EdgeId {
        self.edges[port]
    }

    /// The port leading to neighbor `v`, if adjacent.
    pub fn port_to(&self, v: NodeId) -> Option<usize> {
        self.heads.binary_search(&v).ok()
    }

    /// Sends `msg` over `port` with default priority 0.
    ///
    /// With [`SimConfig::message_packing`]` > 1`, consecutive sends to the
    /// same port with the same priority within one callback are coalesced
    /// into one multi-value message (up to the packing factor and the
    /// bandwidth budget) — burst-style senders get this for free; keep a
    /// stream's sends adjacent to maximize it.
    pub fn send(&mut self, port: usize, msg: M) {
        self.send_with_priority(port, msg, 0);
    }

    /// Sends `msg` over `port` with an explicit scheduling priority (lower
    /// values drain first in queued mode; ignored in strict mode).
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn send_with_priority(&mut self, port: usize, msg: M, priority: u64) {
        assert!(port < self.heads.len(), "send on invalid port {port}");
        self.outbox.push((port as u32, priority, msg));
    }

    /// Sends a copy of `msg` to every neighbor.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for port in 0..self.heads.len() {
            let m = msg.clone();
            self.send(port, m);
        }
    }

    /// This node's deterministic RNG stream.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Requests an `on_round` callback next round even without incoming
    /// messages (for streaming senders and timeout logic).
    pub fn wake_next_round(&mut self) {
        *self.wake = true;
    }
}

/// Result of a run: final program states plus metrics.
#[derive(Debug)]
pub struct RunOutcome<P> {
    /// One program per node, in node-id order.
    pub programs: Vec<P>,
    /// Exact execution counts.
    pub metrics: RunMetrics,
    /// Wall-clock phase breakdown of this execution (not deterministic,
    /// unlike `metrics`; see [`PhaseTimings`] for bucket semantics).
    pub timings: PhaseTimings,
}

/// The CONGEST simulator for a fixed graph.
#[derive(Debug)]
pub struct Simulator<'g> {
    graph: &'g Graph,
    config: SimConfig,
}

impl<'g> Simulator<'g> {
    /// Creates a simulator over `graph`. The config is normalized here —
    /// the single place `message_packing == 0` becomes `1` — so every
    /// consumer downstream reads the stored value as-is.
    pub fn new(graph: &'g Graph, config: SimConfig) -> Self {
        let config = SimConfig {
            message_packing: config.message_packing.max(1),
            ..config
        };
        Simulator { graph, config }
    }

    /// The effective per-message bandwidth in bits.
    pub fn bandwidth_bits(&self) -> usize {
        self.config.bandwidth_bits.unwrap_or_else(|| {
            let n = self.graph.num_nodes().max(1) as f64;
            4 * (n + 1.0).log2().ceil() as usize + 128
        })
    }

    /// The worker count [`SimConfig::threads`] resolves to on this host.
    pub fn effective_threads(&self) -> usize {
        let t = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        };
        t.clamp(1, 64).min(self.graph.num_nodes().max(1))
    }

    /// The packing factor [`SimConfig::message_packing`] resolves to
    /// (`0` was normalized to `1` at construction).
    pub fn effective_packing(&self) -> usize {
        self.config.message_packing
    }

    /// Runs one program per node (constructed by `init`) to quiescence or
    /// the round cap.
    ///
    /// # Panics
    ///
    /// Panics if a program violates the CONGEST constraints: oversized
    /// messages, or (in strict mode) two sends over one directed edge in one
    /// round. Violations raised on a worker thread are re-raised on the
    /// calling thread.
    pub fn run<P, F>(&self, mut init: F) -> RunOutcome<P>
    where
        P: NodeProgram + Send,
        P::Msg: Send,
        F: FnMut(NodeId, &Graph) -> P,
    {
        let g = self.graph;
        let topo = Topology::build(g, self.effective_threads());
        let (pack, budget) = (self.effective_packing(), self.bandwidth_bits());
        let shards: Vec<Shard<P>> = (0..topo.num_shards())
            .map(|s| {
                Shard::new(
                    g,
                    topo.shard_range(s),
                    self.config.seed,
                    pack,
                    budget,
                    &mut init,
                )
            })
            .collect();
        let (pack, budget) = (self.effective_packing(), self.bandwidth_bits());
        match self.config.mode {
            SimMode::Strict => self.drive(
                &topo,
                (0..topo.num_shards())
                    .map(|s| StrictDelivery::new(topo.shard_dir_count(s)))
                    .collect(),
                shards,
            ),
            SimMode::Queued => self.drive(
                &topo,
                (0..topo.num_shards())
                    .map(|s| CalendarDelivery::new(topo.shard_dir_count(s), pack, budget))
                    .collect(),
                shards,
            ),
        }
    }

    /// Round 0 plus the round loop, generic over the delivery backend.
    /// `parts[s]` is receiver shard `s`'s delivery partition.
    fn drive<P, D>(
        &self,
        topo: &Topology<'_>,
        mut parts: Vec<D>,
        mut shards: Vec<Shard<P>>,
    ) -> RunOutcome<P>
    where
        P: NodeProgram + Send,
        P::Msg: Send,
        D: Delivery<PackedMsg<P::Msg>> + Send,
    {
        let g = self.graph;
        let bandwidth = self.bandwidth_bits();
        let mut metrics = RunMetrics {
            threads: self.effective_threads(),
            bandwidth_bits: bandwidth,
            packing: self.effective_packing(),
            ..RunMetrics::default()
        };
        let mut seq = 0u64;
        let mut wakes = 0usize;

        // Round 0: on_start on every shard, flushed in shard order — the
        // coordinator pushes round-0 sends straight into the partitions
        // (no mailbox hop; the lanes have not started yet).
        for shard in &mut shards {
            shard.run_start(g);
        }
        for shard in &mut shards {
            flush_shard(
                shard,
                &mut parts,
                topo,
                0,
                bandwidth,
                &mut seq,
                &mut metrics,
            );
            wakes += shard.pending_wakes();
        }

        let (shards, metrics, timings) = if shards.len() == 1 {
            drive_seq(
                &self.config,
                g,
                topo,
                bandwidth,
                parts,
                shards,
                metrics,
                seq,
                wakes,
            )
        } else {
            parallel::drive_par(
                &self.config,
                g,
                topo,
                bandwidth,
                parts,
                shards,
                metrics,
                seq,
                None,
            )
        };
        RunOutcome {
            programs: shards.into_iter().flat_map(Shard::into_programs).collect(),
            metrics,
            timings,
        }
    }
}

/// Milliseconds of a [`std::time::Duration`], for the phase-timing
/// accumulators.
pub(crate) fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// The inline round loop used at `threads = 1` (no pools, no barriers, no
/// mailbox hop — the single partition's staged messages land directly in
/// the shard's inbound buffer and its outbox flushes directly back).
///
/// Per-message work is identical to a lane of the parallel executor
/// ([`parallel::drive_par`]); only the envelope routing differs, which is
/// what keeps the two paths metric-identical.
#[allow(clippy::too_many_arguments)]
fn drive_seq<P, D>(
    config: &SimConfig,
    g: &Graph,
    topo: &Topology<'_>,
    bandwidth: usize,
    mut parts: Vec<D>,
    mut shards: Vec<Shard<P>>,
    mut metrics: RunMetrics,
    mut seq: u64,
    mut wakes: usize,
) -> (Vec<Shard<P>>, RunMetrics, PhaseTimings)
where
    P: NodeProgram,
    D: Delivery<PackedMsg<P::Msg>>,
{
    debug_assert_eq!(shards.len(), 1);
    debug_assert_eq!(parts.len(), 1);
    let mut timings = PhaseTimings::default();
    loop {
        if parts[0].pending() == 0 && wakes == 0 {
            metrics.terminated = shards.iter().all(Shard::all_done);
            break;
        }
        if metrics.rounds >= config.max_rounds {
            metrics.truncated = true;
            break;
        }
        metrics.rounds += 1;
        let round = metrics.rounds;
        let t0 = Instant::now();
        let mut acc = ShardAccount::default();
        parts[0].stage(round, topo, &mut shards[0].inbound, &mut acc);
        metrics.messages += acc.messages;
        metrics.max_queue = metrics.max_queue.max(acc.max_queue);
        let t1 = Instant::now();
        shards[0].run_round(g, topo, round);
        let t2 = Instant::now();
        flush_shard(
            &mut shards[0],
            &mut parts,
            topo,
            round,
            bandwidth,
            &mut seq,
            &mut metrics,
        );
        wakes = shards[0].pending_wakes();
        let t3 = Instant::now();
        timings.stage_ms += ms(t1 - t0);
        timings.compute_ms += ms(t2 - t1);
        timings.merge_ms += ms(t3 - t2);
    }
    (shards, metrics, timings)
}

/// Flushes one shard's outbox into the delivery partitions: per-message
/// bandwidth validation, global sequence numbering, bit accounting, and
/// routing by the receiver's shard. Used by the coordinator for round 0
/// (all shards, in shard order) and by the single-shard loop every round;
/// the parallel executor's lanes inline the same per-message work with
/// lane-local sequence indices instead. Sizing is `n`-aware
/// ([`MessageSize::size_bits_in`]): id payloads are billed at `O(log n)`
/// bits, as the CONGEST model assumes; a packed envelope bills its true
/// multi-value width (see [`PackedMsg`]) and must fit the budget like any
/// other message.
pub(crate) fn flush_shard<P, D>(
    shard: &mut Shard<P>,
    parts: &mut [D],
    topo: &Topology<'_>,
    round: u64,
    bandwidth: usize,
    seq: &mut u64,
    metrics: &mut RunMetrics,
) where
    P: NodeProgram,
    D: Delivery<PackedMsg<P::Msg>>,
{
    let n = topo.num_nodes();
    for (dir, priority, msg) in shard.outbox.drain(..) {
        let bits = msg.size_bits_in(n);
        assert!(
            bits <= bandwidth,
            "message of {bits} bits exceeds the {bandwidth}-bit CONGEST bandwidth"
        );
        metrics.bits += bits as u64;
        *seq += 1;
        parts[topo.dir_shard(dir)].push(dir, priority, *seq, msg, round, topo);
    }
}

/// SplitMix64-style mixer: derives a well-mixed 64-bit value from a seed
/// and a 32-bit salt. Used for the per-node RNG streams and exported for
/// protocols needing a shared deterministic hash (e.g. the sketch detection
/// of the distributed shortcut construction).
pub fn splitmix(seed: u64, salt: u32) -> u64 {
    let mut z = seed ^ (u64::from(salt).wrapping_mul(0x9e3779b97f4a7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::gen;

    /// Floods the maximum node id; every node is done once it stops hearing
    /// larger values.
    struct MaxFlood {
        best: u32,
    }

    impl NodeProgram for MaxFlood {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            let best = self.best;
            ctx.broadcast(best);
        }

        fn on_round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[Incoming<u32>]) {
            let mut improved = false;
            for m in inbox {
                if m.msg > self.best {
                    self.best = m.msg;
                    improved = true;
                }
            }
            if improved {
                let best = self.best;
                ctx.broadcast(best);
            }
        }

        fn is_done(&self) -> bool {
            true // quiescence-detected
        }
    }

    #[test]
    fn packing_zero_normalizes_at_construction() {
        let g = gen::path(4);
        let cfg = SimConfig {
            message_packing: 0,
            ..SimConfig::default()
        };
        let sim = Simulator::new(&g, cfg);
        assert_eq!(sim.effective_packing(), 1);
        // ...and a packing-0 run behaves exactly like packing-1.
        let run0 = sim.run(|v, _| MaxFlood { best: v.0 });
        let run1 = Simulator::new(&g, SimConfig::default()).run(|v, _| MaxFlood { best: v.0 });
        assert_eq!(run0.metrics.counts(), run1.metrics.counts());
    }

    #[test]
    fn max_flood_converges_in_diameter_rounds() {
        let g = gen::path(10);
        let sim = Simulator::new(&g, SimConfig::default());
        let run = sim.run(|v, _| MaxFlood { best: v.0 });
        assert!(run.metrics.terminated);
        assert!(run.programs.iter().all(|p| p.best == 9));
        // Node 9 is at one end: the value needs 9 hops, +1 quiescence round.
        assert!(run.metrics.rounds >= 9 && run.metrics.rounds <= 11);
    }

    #[test]
    fn strict_mode_rejects_double_send() {
        struct DoubleSend;
        impl NodeProgram for DoubleSend {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                if ctx.node() == NodeId(0) {
                    ctx.send(0, 1);
                    ctx.send(0, 2);
                }
            }
            fn on_round(&mut self, _: &mut Ctx<'_, u32>, _: &[Incoming<u32>]) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = gen::path(2);
        let sim = Simulator::new(&g, SimConfig::default());
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run(|_, _| DoubleSend)));
        assert!(result.is_err());
    }

    #[test]
    fn queued_mode_drains_by_priority() {
        /// Node 0 enqueues three messages to node 1 in one round with
        /// descending priority values; node 1 records arrival order.
        struct Sender;
        impl NodeProgram for Sender {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                if ctx.node() == NodeId(0) {
                    ctx.send_with_priority(0, 30, 3);
                    ctx.send_with_priority(0, 10, 1);
                    ctx.send_with_priority(0, 20, 2);
                }
            }
            fn on_round(&mut self, _: &mut Ctx<'_, u32>, _: &[Incoming<u32>]) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        struct Recorder(Vec<u32>);
        enum Either {
            S(Sender),
            R(Recorder),
        }
        impl NodeProgram for Either {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                if let Either::S(s) = self {
                    s.on_start(ctx);
                }
            }
            fn on_round(&mut self, _: &mut Ctx<'_, u32>, inbox: &[Incoming<u32>]) {
                if let Either::R(r) = self {
                    r.0.extend(inbox.iter().map(|m| m.msg));
                }
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = gen::path(2);
        let sim = Simulator::new(
            &g,
            SimConfig {
                mode: SimMode::Queued,
                ..SimConfig::default()
            },
        );
        let run = sim.run(|v, _| {
            if v == NodeId(0) {
                Either::S(Sender)
            } else {
                Either::R(Recorder(Vec::new()))
            }
        });
        assert!(run.metrics.terminated);
        assert_eq!(run.metrics.rounds, 3); // one message per round
        assert_eq!(run.metrics.max_queue, 3);
        let Either::R(r) = &run.programs[1] else {
            panic!("node 1 is the recorder");
        };
        assert_eq!(r.0, vec![10, 20, 30]);
    }

    #[test]
    fn bandwidth_is_enforced() {
        struct BigMsg;
        #[derive(Clone)]
        struct Huge;
        impl MessageSize for Huge {
            fn size_bits(&self) -> usize {
                1 << 20
            }
        }
        impl NodeProgram for BigMsg {
            type Msg = Huge;
            fn on_start(&mut self, ctx: &mut Ctx<'_, Huge>) {
                if ctx.node() == NodeId(0) {
                    ctx.send(0, Huge);
                }
            }
            fn on_round(&mut self, _: &mut Ctx<'_, Huge>, _: &[Incoming<Huge>]) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = gen::path(2);
        let sim = Simulator::new(&g, SimConfig::default());
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run(|_, _| BigMsg)));
        assert!(result.is_err());
    }

    #[test]
    fn wake_next_round_ticks_without_messages() {
        struct Counter {
            ticks: u32,
        }
        impl NodeProgram for Counter {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                ctx.wake_next_round();
            }
            fn on_round(&mut self, ctx: &mut Ctx<'_, u32>, _: &[Incoming<u32>]) {
                self.ticks += 1;
                if self.ticks < 5 {
                    ctx.wake_next_round();
                }
            }
            fn is_done(&self) -> bool {
                self.ticks >= 5
            }
        }
        let g = gen::path(2);
        let sim = Simulator::new(&g, SimConfig::default());
        let run = sim.run(|_, _| Counter { ticks: 0 });
        assert!(run.metrics.terminated);
        assert_eq!(run.metrics.rounds, 5);
        assert!(run.programs.iter().all(|p| p.ticks == 5));
    }

    #[test]
    fn max_rounds_caps_runaway_protocols() {
        struct Forever;
        impl NodeProgram for Forever {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                ctx.wake_next_round();
            }
            fn on_round(&mut self, ctx: &mut Ctx<'_, u32>, _: &[Incoming<u32>]) {
                ctx.wake_next_round();
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = gen::path(2);
        let sim = Simulator::new(
            &g,
            SimConfig {
                max_rounds: 10,
                ..SimConfig::default()
            },
        );
        let run = sim.run(|_, _| Forever);
        assert!(!run.metrics.terminated);
        assert!(
            run.metrics.truncated,
            "hitting the cap with pending work must be observable"
        );
        assert_eq!(run.metrics.rounds, 10);
    }

    #[test]
    fn quiescent_runs_are_not_truncated() {
        let g = gen::path(10);
        let sim = Simulator::new(&g, SimConfig::default());
        let run = sim.run(|v, _| MaxFlood { best: v.0 });
        assert!(run.metrics.terminated);
        assert!(!run.metrics.truncated);
    }

    #[test]
    fn truncation_with_messages_in_flight_is_flagged() {
        // MaxFlood on a long path needs ~n rounds; cap it far below that.
        let g = gen::path(40);
        let sim = Simulator::new(
            &g,
            SimConfig {
                max_rounds: 5,
                ..SimConfig::default()
            },
        );
        let run = sim.run(|v, _| MaxFlood { best: v.0 });
        assert!(run.metrics.truncated);
        assert!(!run.metrics.terminated);
        assert_eq!(run.metrics.rounds, 5);
        // The flood cannot have finished.
        assert!(run.programs.iter().any(|p| p.best != 39));
    }

    #[test]
    fn determinism_across_runs() {
        let g = gen::grid(4, 4);
        let sim = Simulator::new(&g, SimConfig::default());
        let a = sim.run(|v, _| MaxFlood { best: v.0 });
        let b = sim.run(|v, _| MaxFlood { best: v.0 });
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn thread_count_does_not_change_metrics_or_results() {
        let g = gen::grid(7, 9);
        let baseline = Simulator::new(&g, SimConfig::default()).run(|v, _| MaxFlood { best: v.0 });
        for threads in [2, 3, 4, 7] {
            let sim = Simulator::new(
                &g,
                SimConfig {
                    threads,
                    ..SimConfig::default()
                },
            );
            let run = sim.run(|v, _| MaxFlood { best: v.0 });
            assert_eq!(
                run.metrics.counts(),
                baseline.metrics.counts(),
                "threads={threads}"
            );
            assert_eq!(run.metrics.threads, threads, "execution config recorded");
            assert!(run.programs.iter().all(|p| p.best == 62));
        }
    }

    #[test]
    fn queued_mode_is_thread_count_invariant() {
        struct Burst;
        impl NodeProgram for Burst {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                for port in 0..ctx.degree() {
                    for k in 0..3u32 {
                        ctx.send_with_priority(port, k, u64::from(3 - k));
                    }
                }
            }
            fn on_round(&mut self, _: &mut Ctx<'_, u32>, _: &[Incoming<u32>]) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = gen::torus(4, 4);
        let run_with = |threads| {
            Simulator::new(
                &g,
                SimConfig {
                    mode: SimMode::Queued,
                    threads,
                    ..SimConfig::default()
                },
            )
            .run(|_, _| Burst)
            .metrics
        };
        let t1 = run_with(1);
        assert_eq!(t1.max_queue, 3);
        for threads in [2, 4, 5] {
            assert_eq!(run_with(threads).counts(), t1.counts(), "threads={threads}");
        }
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        #[derive(Debug)]
        struct Bomb;
        impl NodeProgram for Bomb {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                ctx.wake_next_round();
            }
            fn on_round(&mut self, ctx: &mut Ctx<'_, u32>, _: &[Incoming<u32>]) {
                if ctx.node() == NodeId(5) {
                    panic!("protocol bug on node 5");
                }
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = gen::path(8);
        let sim = Simulator::new(
            &g,
            SimConfig {
                threads: 4,
                ..SimConfig::default()
            },
        );
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run(|_, _| Bomb)));
        let payload = result.expect_err("the worker panic must reach the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("protocol bug on node 5"), "got: {msg}");
    }

    /// Node 0 bursts `count` u32 values at node 1 in one callback; node 1
    /// records arrivals per round.
    struct BurstSender {
        count: u32,
    }
    struct BurstRecorder {
        values: Vec<u32>,
        per_round: Vec<usize>,
    }
    enum BurstP {
        S(BurstSender),
        R(BurstRecorder),
    }
    impl NodeProgram for BurstP {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if let BurstP::S(s) = self {
                for k in 0..s.count {
                    ctx.send(0, k);
                }
            }
        }
        fn on_round(&mut self, _: &mut Ctx<'_, u32>, inbox: &[Incoming<u32>]) {
            if let BurstP::R(r) = self {
                r.per_round.push(inbox.len());
                r.values.extend(inbox.iter().map(|m| m.msg));
            }
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    fn run_burst(mode: SimMode, packing: usize, count: u32) -> (RunMetrics, Vec<u32>, Vec<usize>) {
        let g = gen::path(2);
        let sim = Simulator::new(
            &g,
            SimConfig {
                mode,
                message_packing: packing,
                ..SimConfig::default()
            },
        );
        let run = sim.run(|v, _| {
            if v == NodeId(0) {
                BurstP::S(BurstSender { count })
            } else {
                BurstP::R(BurstRecorder {
                    values: Vec::new(),
                    per_round: Vec::new(),
                })
            }
        });
        let BurstP::R(r) = &run.programs[1] else {
            panic!("node 1 records");
        };
        (run.metrics, r.values.clone(), r.per_round.clone())
    }

    #[test]
    fn packing_coalesces_queued_bursts_and_cuts_rounds() {
        let (unpacked, base_vals, _) = run_burst(SimMode::Queued, 1, 12);
        assert_eq!(unpacked.rounds, 12);
        assert_eq!(unpacked.messages, 12);
        let (packed, vals, per_round) = run_burst(SimMode::Queued, 4, 12);
        // 12 values in envelopes of 4 → 3 messages, 3 rounds, same payload.
        assert_eq!(packed.rounds, 3);
        assert_eq!(packed.messages, 3);
        assert_eq!(packed.max_queue, 3);
        assert_eq!(vals, base_vals, "payload sequence is packing-invariant");
        assert_eq!(per_round, vec![4, 4, 4]);
        // Plain u32 has no shared framing: bits are exactly invariant.
        assert_eq!(packed.bits, unpacked.bits);
        assert_eq!(packed.packing, 4);
        assert_eq!(unpacked.packing, 1);
    }

    #[test]
    fn strict_mode_admits_bursts_within_one_packed_envelope() {
        // 3 consecutive sends at packing 4 fit one envelope: legal strict
        // traffic (one message on the edge), delivered in one round.
        let (m, vals, _) = run_burst(SimMode::Strict, 4, 3);
        assert_eq!(m.messages, 1);
        assert_eq!(m.rounds, 1);
        assert_eq!(vals, vec![0, 1, 2]);
        // 5 sends overflow into a second envelope → strict double-send.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_burst(SimMode::Strict, 4, 5)
        }));
        assert!(result.is_err(), "a second envelope must still panic");
    }

    #[test]
    fn packing_respects_the_bandwidth_budget() {
        // Budget 70 bits fits two 32-bit values but not three, whatever the
        // packing factor says.
        let g = gen::path(2);
        let sim = Simulator::new(
            &g,
            SimConfig {
                mode: SimMode::Queued,
                bandwidth_bits: Some(70),
                message_packing: 8,
                ..SimConfig::default()
            },
        );
        let run = sim.run(|v, _| {
            if v == NodeId(0) {
                BurstP::S(BurstSender { count: 6 })
            } else {
                BurstP::R(BurstRecorder {
                    values: Vec::new(),
                    per_round: Vec::new(),
                })
            }
        });
        assert_eq!(run.metrics.messages, 3, "6 values / 2 per 70-bit envelope");
        let BurstP::R(r) = &run.programs[1] else {
            panic!("node 1 records");
        };
        assert_eq!(r.per_round, vec![2, 2, 2]);
        assert_eq!(r.values, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn packing_only_coalesces_same_priority_runs() {
        struct MixedPrio;
        struct Rec(Vec<u32>);
        enum P {
            S(MixedPrio),
            R(Rec),
        }
        impl NodeProgram for P {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                if let P::S(_) = self {
                    ctx.send_with_priority(0, 1, 5);
                    ctx.send_with_priority(0, 2, 5);
                    ctx.send_with_priority(0, 3, 0); // priority break
                }
            }
            fn on_round(&mut self, _: &mut Ctx<'_, u32>, inbox: &[Incoming<u32>]) {
                if let P::R(r) = self {
                    r.0.extend(inbox.iter().map(|m| m.msg));
                }
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = gen::path(2);
        let sim = Simulator::new(
            &g,
            SimConfig {
                mode: SimMode::Queued,
                message_packing: 8,
                ..SimConfig::default()
            },
        );
        let run = sim.run(|v, _| {
            if v == NodeId(0) {
                P::S(MixedPrio)
            } else {
                P::R(Rec(Vec::new()))
            }
        });
        // Two envelopes: [1, 2] at priority 5 and [3] at priority 0; the
        // lower priority value still drains first.
        assert_eq!(run.metrics.messages, 2);
        assert_eq!(run.metrics.rounds, 2);
        let P::R(r) = &run.programs[1] else {
            panic!("node 1 records");
        };
        assert_eq!(r.0, vec![3, 1, 2]);
    }

    #[test]
    fn packed_metrics_are_thread_count_invariant() {
        let g = gen::grid(6, 6);
        let run_with = |threads| {
            Simulator::new(
                &g,
                SimConfig {
                    mode: SimMode::Queued,
                    threads,
                    message_packing: 4,
                    ..SimConfig::default()
                },
            )
            .run(|v, _| MaxFlood { best: v.0 })
            .metrics
        };
        let t1 = run_with(1);
        for threads in [2, 4] {
            assert_eq!(run_with(threads).counts(), t1.counts(), "threads={threads}");
        }
    }

    #[test]
    fn zero_threads_resolves_to_host_parallelism() {
        let g = gen::grid(4, 4);
        let sim = Simulator::new(
            &g,
            SimConfig {
                threads: 0,
                ..SimConfig::default()
            },
        );
        assert!(sim.effective_threads() >= 1);
        let run = sim.run(|v, _| MaxFlood { best: v.0 });
        let base = Simulator::new(&g, SimConfig::default()).run(|v, _| MaxFlood { best: v.0 });
        assert_eq!(run.metrics.counts(), base.metrics.counts());
        assert_eq!(run.metrics.threads, sim.effective_threads());
    }
}
