//! Per-run routing tables: the directed-edge reverse map and the shard
//! layout of the node-id space.
//!
//! Messages are addressed by *directed edge id* — the graph's CSR slot
//! index `first_out[v] + port`, reused verbatim so the engine needs no
//! per-run index building beyond one O(n + m) reverse-port table. Shards
//! are contiguous node-id ranges; since a directed edge has exactly one
//! receiver, each dir belongs to exactly one receiver shard, which is what
//! lets the delivery backends route staged messages without locks.

use lcs_graph::{Graph, NodeId};

/// Immutable per-run routing state shared by the delivery backends and the
/// shard workers (read-only across threads).
pub(crate) struct Topology<'g> {
    g: &'g Graph,
    /// dir -> (receiver node, receiver's port back to the sender).
    dir_recv: Vec<(u32, u32)>,
    /// Shard boundaries over the node-id space: shard `s` owns nodes
    /// `starts[s]..starts[s + 1]`. Length `num_shards + 1`.
    starts: Vec<u32>,
    /// dir -> shard of the *receiver*, precomputed so the hot flush path
    /// routes envelopes without the boundary scan in [`shard_of`].
    ///
    /// [`shard_of`]: Topology::shard_of
    dir_shard: Vec<u32>,
    /// dir -> dense index within the receiver shard's dir partition,
    /// assigned in ascending global-dir order (so with one shard it is the
    /// identity). Lets the per-shard delivery partitions use flat arrays
    /// sized by their own dir count.
    dir_local: Vec<u32>,
    /// Per-shard partition sizes: `shard_dirs[s]` dirs are received by
    /// shard `s`.
    shard_dirs: Vec<usize>,
}

impl<'g> Topology<'g> {
    /// Builds the reverse-port table in O(n + m) and splits the node-id
    /// space into `shards` contiguous, near-equal ranges.
    pub fn build(g: &'g Graph, shards: usize) -> Self {
        let n = g.num_nodes();
        let first_out = g.first_out();
        let num_dirs = *first_out.last().unwrap_or(&0) as usize;

        // dir -> (receiver, receiver's port back), built by pairing each
        // undirected edge's two CSR slots. A slot's side is 1 iff its tail
        // is the edge's larger endpoint, derivable from the head entry
        // alone (endpoints are canonical `u < v`, so tail > head ⟺ tail is
        // the larger endpoint).
        let mut edge_dirs: Vec<[u32; 2]> = vec![[0; 2]; g.num_edges()];
        for v in g.nodes() {
            let base = first_out[v.index()];
            let heads = g.heads(v);
            for (port, &e) in g.edge_ids(v).iter().enumerate() {
                let side = usize::from(v > heads[port]);
                edge_dirs[e.index()][side] = base + port as u32;
            }
        }
        let mut dir_recv: Vec<(u32, u32)> = vec![(0, 0); num_dirs];
        for v in g.nodes() {
            let base = first_out[v.index()];
            let heads = g.heads(v);
            for (port, &e) in g.edge_ids(v).iter().enumerate() {
                let side = usize::from(v > heads[port]);
                let back = edge_dirs[e.index()][1 - side];
                let recv = heads[port];
                dir_recv[(base + port as u32) as usize] = (recv.0, back - first_out[recv.index()]);
            }
        }

        let shards = shards.max(1).min(n.max(1));
        let starts: Vec<u32> = (0..=shards).map(|s| (s * n / shards) as u32).collect();
        let mut topo = Topology {
            g,
            dir_recv,
            starts,
            dir_shard: Vec::new(),
            dir_local: Vec::new(),
            shard_dirs: Vec::new(),
        };

        // Receiver-shard routing: one more O(m) pass. `dir_local` is dense
        // within each shard and ascending in global dir order, so the
        // delivery partitions can index flat arrays by it while preserving
        // the global order whenever they iterate their own dirs.
        let mut dir_shard = vec![0u32; num_dirs];
        let mut dir_local = vec![0u32; num_dirs];
        let mut shard_dirs = vec![0usize; shards];
        for dir in 0..num_dirs {
            let s = topo.shard_of(topo.dir_recv[dir].0);
            dir_shard[dir] = s as u32;
            dir_local[dir] = shard_dirs[s] as u32;
            shard_dirs[s] += 1;
        }
        topo.dir_shard = dir_shard;
        topo.dir_local = dir_local;
        topo.shard_dirs = shard_dirs;
        topo
    }

    /// Number of directed edges (`2m`). Production code sizes per-shard
    /// structures via [`shard_dir_count`](Topology::shard_dir_count); this
    /// remains for the delivery unit tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn num_dirs(&self) -> usize {
        self.dir_recv.len()
    }

    /// Number of nodes in the simulated network — the `n` the id-aware
    /// message sizing ([`MessageSize::size_bits_in`]) is billed against.
    ///
    /// [`MessageSize::size_bits_in`]: crate::MessageSize::size_bits_in
    pub fn num_nodes(&self) -> usize {
        self.g.num_nodes()
    }

    /// Number of shards the node-id space is split into.
    pub fn num_shards(&self) -> usize {
        self.starts.len() - 1
    }

    /// The node range `[lo, hi)` owned by shard `s`.
    pub fn shard_range(&self, s: usize) -> (u32, u32) {
        (self.starts[s], self.starts[s + 1])
    }

    /// The shard owning `node`. Linear scan: the boundary list has at most
    /// `threads + 1` entries (and single-shard runs short-circuit).
    #[inline]
    pub fn shard_of(&self, node: u32) -> usize {
        debug_assert!((node as usize) < self.g.num_nodes());
        if self.starts.len() == 2 {
            return 0;
        }
        self.starts[1..self.starts.len() - 1]
            .iter()
            .take_while(|&&b| b <= node)
            .count()
    }

    /// `(receiver node, receiver's port back to the sender)` of `dir`.
    #[inline]
    pub fn recv(&self, dir: u32) -> (u32, u32) {
        self.dir_recv[dir as usize]
    }

    /// The shard that *receives* (and therefore delivers) `dir`.
    #[inline]
    pub fn dir_shard(&self, dir: u32) -> usize {
        self.dir_shard[dir as usize] as usize
    }

    /// Dense index of `dir` within its receiver shard's partition.
    #[inline]
    pub fn dir_local(&self, dir: u32) -> usize {
        self.dir_local[dir as usize] as usize
    }

    /// Number of dirs received by shard `s` — the size of its delivery
    /// partition.
    #[inline]
    pub fn shard_dir_count(&self, s: usize) -> usize {
        self.shard_dirs[s]
    }

    /// The sender side of `dir`: `(node, port)`. O(log n) — only used on
    /// error-reporting paths.
    pub fn sender_of(&self, dir: u32) -> (NodeId, usize) {
        let first_out = self.g.first_out();
        let v = first_out.partition_point(|&b| b <= dir) - 1;
        (NodeId(v as u32), (dir - first_out[v]) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::gen;

    #[test]
    fn reverse_ports_pair_up() {
        let g = gen::grid(4, 5);
        let topo = Topology::build(&g, 3);
        let first_out = g.first_out();
        for v in g.nodes() {
            let base = first_out[v.index()];
            for port in 0..g.degree(v) {
                let dir = base + port as u32;
                let (recv, back) = topo.recv(dir);
                // The reverse slot of the reverse slot is the original.
                let back_dir = first_out[recv as usize] + back;
                let (r2, p2) = topo.recv(back_dir);
                assert_eq!((r2, p2), (v.0, port as u32));
            }
        }
    }

    #[test]
    fn shards_partition_the_id_space() {
        let g = gen::path(10);
        for shards in [1, 2, 3, 4, 10, 16] {
            let topo = Topology::build(&g, shards);
            assert_eq!(topo.shard_range(0).0, 0);
            assert_eq!(topo.shard_range(topo.num_shards() - 1).1, 10);
            for s in 0..topo.num_shards() {
                let (lo, hi) = topo.shard_range(s);
                assert!(lo <= hi);
                for v in lo..hi {
                    assert_eq!(topo.shard_of(v), s);
                }
            }
        }
    }

    #[test]
    fn dir_partitions_are_dense_and_order_preserving() {
        let g = gen::grid(4, 5);
        for shards in [1, 2, 3, 7] {
            let topo = Topology::build(&g, shards);
            let mut counts = vec![0usize; topo.num_shards()];
            let mut last_local = vec![None::<usize>; topo.num_shards()];
            for dir in 0..topo.num_dirs() as u32 {
                let s = topo.dir_shard(dir);
                assert_eq!(s, topo.shard_of(topo.recv(dir).0));
                let local = topo.dir_local(dir);
                // Dense and ascending in global dir order within a shard.
                assert_eq!(local, counts[s]);
                if let Some(prev) = last_local[s] {
                    assert_eq!(local, prev + 1);
                }
                last_local[s] = Some(local);
                counts[s] += 1;
            }
            for (s, &c) in counts.iter().enumerate() {
                assert_eq!(c, topo.shard_dir_count(s));
            }
            assert_eq!(counts.iter().sum::<usize>(), topo.num_dirs());
        }
        // Single shard: dir_local is the identity.
        let topo = Topology::build(&g, 1);
        for dir in 0..topo.num_dirs() as u32 {
            assert_eq!(topo.dir_local(dir), dir as usize);
        }
    }

    #[test]
    fn sender_of_inverts_dir_ids() {
        let g = gen::torus(3, 4);
        let topo = Topology::build(&g, 2);
        for v in g.nodes() {
            for port in 0..g.degree(v) {
                let dir = g.first_out()[v.index()] + port as u32;
                assert_eq!(topo.sender_of(dir), (v, port));
            }
        }
    }
}
