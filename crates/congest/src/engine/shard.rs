//! A contiguous node shard: the unit of work of the parallel round
//! executor.
//!
//! Each shard exclusively owns its nodes' programs, RNG streams, inboxes,
//! and wake bookkeeping, plus two message buffers: `inbound` (staged
//! deliveries for the current round, filled in place by the shard's own
//! delivery partition) and `outbox` (wire envelopes produced this round,
//! validated and routed by the lane's flush step). A worker thread
//! touches nothing outside its lane during a round, which is why no
//! per-message synchronization exists anywhere.
//!
//! The shard is also where **multi-value message packing** happens: a
//! node's raw sends land in a scratch buffer during its callback, and
//! [`Shard::exec_node`] coalesces consecutive same-port, same-priority
//! runs into [`PackedMsg`] envelopes — up to [`SimConfig::message_packing`]
//! values and the bandwidth budget per envelope. At packing 1 every send
//! becomes a `PackedMsg::One` with the exact bit cost of the raw message,
//! so the wire stream (and every metric) is identical to the unpacked
//! engine. Packing on the shard keeps the coalescing work parallel.
//!
//! Determinism: within a shard, nodes run in ascending id order and each
//! node's envelopes are appended in issue order; the global send order is
//! *defined* as the shard outboxes concatenated in shard order, which the
//! executor realizes without serializing by prefix-summing per-shard send
//! counts into sequence-number bases (see [`super::parallel`]). That
//! order is identical to the sequential engine's (ascending node id),
//! making sequence numbers — and with them every pinned metric —
//! independent of the thread count.
//!
//! [`SimConfig::message_packing`]: super::SimConfig::message_packing

use super::topology::Topology;
use super::{Ctx, Incoming, NodeProgram};
use crate::{MessageSize, PackedMsg};
use lcs_graph::{Graph, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

pub(crate) struct Shard<P: NodeProgram> {
    /// First node id owned by this shard.
    lo: u32,
    programs: Vec<P>,
    rngs: Vec<SmallRng>,
    inboxes: Vec<Vec<Incoming<P::Msg>>>,
    wake_flag: Vec<bool>,
    /// Nodes (global ids) that requested a wake-up for the next round.
    wake_list: Vec<u32>,
    /// Deliveries staged for this round: `(dir, envelope)` with the
    /// receiver in this shard. Filled by the shard's delivery partition,
    /// unpacked and drained by `run_round`.
    pub(crate) inbound: Vec<(u32, PackedMsg<P::Msg>)>,
    /// Wire envelopes produced this round: `(dir, priority, envelope)` in
    /// deterministic node-then-issue order. Validated, bit-accounted, and
    /// routed to the receiving lanes by the flush step.
    pub(crate) outbox: Vec<(u32, u64, PackedMsg<P::Msg>)>,
    /// Scratch: one node's raw sends `(port, priority, msg)` during its
    /// callback, coalesced into `outbox` envelopes afterwards.
    raw: Vec<(u32, u64, P::Msg)>,
    /// Scratch: envelope lengths of the current node's packing pass.
    batch_lens: Vec<u32>,
    /// Scratch: nodes to execute this round.
    to_run: Vec<u32>,
    /// Resolved [`SimConfig::message_packing`]: max values per envelope.
    ///
    /// [`SimConfig::message_packing`]: super::SimConfig::message_packing
    pack: usize,
    /// Per-message bandwidth budget in bits (envelopes must fit it).
    budget: usize,
    /// Network size the id-aware message sizing is billed against.
    n: usize,
}

impl<P: NodeProgram> Shard<P> {
    pub fn new(
        g: &Graph,
        range: (u32, u32),
        seed: u64,
        pack: usize,
        budget: usize,
        init: &mut impl FnMut(NodeId, &Graph) -> P,
    ) -> Self {
        let (lo, hi) = range;
        let len = (hi - lo) as usize;
        Shard {
            lo,
            programs: (lo..hi).map(|v| init(NodeId(v), g)).collect(),
            rngs: (lo..hi)
                .map(|v| SmallRng::seed_from_u64(super::splitmix(seed, v)))
                .collect(),
            inboxes: (0..len).map(|_| Vec::new()).collect(),
            wake_flag: vec![false; len],
            wake_list: Vec::new(),
            inbound: Vec::new(),
            outbox: Vec::new(),
            raw: Vec::new(),
            batch_lens: Vec::new(),
            to_run: Vec::new(),
            pack,
            budget,
            n: g.num_nodes(),
        }
    }

    /// Runs `on_start` for every node of the shard (round 0).
    pub fn run_start(&mut self, g: &Graph) {
        for local in 0..self.programs.len() {
            self.exec_node(g, self.lo + local as u32, 0, true);
        }
    }

    /// One round: unpack the staged `inbound` envelopes into inboxes, pick
    /// up pending wake-ups, and run the affected nodes in ascending order.
    pub fn run_round(&mut self, g: &Graph, topo: &Topology<'_>, round: u64) {
        self.to_run.clear();
        for (dir, env) in self.inbound.drain(..) {
            let (recv, port) = topo.recv(dir);
            let local = (recv - self.lo) as usize;
            if self.inboxes[local].is_empty() {
                self.to_run.push(recv);
            }
            let inbox = &mut self.inboxes[local];
            env.for_each(|msg| {
                inbox.push(Incoming {
                    port: port as usize,
                    msg,
                });
            });
        }
        // Wake-ups requested last round join the receivers.
        let mut wakes = std::mem::take(&mut self.wake_list);
        for v in wakes.drain(..) {
            let local = (v - self.lo) as usize;
            self.wake_flag[local] = false;
            if self.inboxes[local].is_empty() {
                self.to_run.push(v);
            }
        }
        self.wake_list = wakes;
        self.to_run.sort_unstable(); // deterministic execution order

        let to_run = std::mem::take(&mut self.to_run);
        for &v in &to_run {
            self.exec_node(g, v, round, false);
        }
        self.to_run = to_run;
    }

    /// Runs one node's callback, coalesces its raw sends into wire
    /// envelopes (consecutive same-port, same-priority runs of up to
    /// `pack` values within the bit budget), and appends them — ports
    /// rewritten to directed-edge ids — to the shard outbox.
    fn exec_node(&mut self, g: &Graph, v: u32, round: u64, start: bool) {
        let local = (v - self.lo) as usize;
        let node = NodeId(v);
        let mut wake = false;
        debug_assert!(self.raw.is_empty());
        {
            let mut ctx = Ctx {
                node,
                round,
                heads: g.heads(node),
                edges: g.edge_ids(node),
                outbox: &mut self.raw,
                rng: &mut self.rngs[local],
                wake: &mut wake,
            };
            if start {
                self.programs[local].on_start(&mut ctx);
            } else {
                self.programs[local].on_round(&mut ctx, &self.inboxes[local]);
                self.inboxes[local].clear();
            }
        }
        if wake && !self.wake_flag[local] {
            self.wake_flag[local] = true;
            self.wake_list.push(v);
        }
        // Ctx::send recorded the local port; the CSR base rewrites it to
        // the global directed edge id now that the sender is known.
        let base = g.first_out()[v as usize];
        if self.pack == 1 {
            // Unpacked fast path: every send is its own envelope, in issue
            // order — the exact wire stream of the pre-packing engine.
            for (port, priority, msg) in self.raw.drain(..) {
                debug_assert!((port as usize) < g.degree(node));
                self.outbox
                    .push((base + port, priority, PackedMsg::One(msg)));
            }
            return;
        }

        // Pass 1 (by reference): split the raw sends into maximal packable
        // runs. A run extends while the next send targets the same port
        // with the same priority, the value count stays below `pack`, and
        // the packed width (first value full-size, later values at their
        // marginal cost) stays within the budget.
        self.batch_lens.clear();
        let raw = &self.raw;
        let mut i = 0;
        while i < raw.len() {
            let (port, priority, ref head) = raw[i];
            let mut cost = head.size_bits_in(self.n);
            let mut j = i + 1;
            while j < raw.len() && j - i < self.pack {
                let (p2, prio2, ref m2) = raw[j];
                if p2 != port || prio2 != priority {
                    break;
                }
                let marginal = m2.size_bits_packed_in(&raw[j - 1].2, self.n);
                if cost + marginal > self.budget {
                    break;
                }
                cost += marginal;
                j += 1;
            }
            self.batch_lens.push((j - i) as u32);
            i = j;
        }

        // Pass 2 (by value): drain the raw sends into envelopes.
        let mut it = self.raw.drain(..);
        for &len in &self.batch_lens {
            let (port, priority, msg) = it.next().expect("length computed from this buffer");
            debug_assert!((port as usize) < g.degree(node));
            let env = if len == 1 {
                PackedMsg::One(msg)
            } else {
                let mut values = Vec::with_capacity(len as usize);
                values.push(msg);
                for _ in 1..len {
                    values.push(it.next().expect("length computed from this buffer").2);
                }
                PackedMsg::Batch(values)
            };
            self.outbox.push((base + port, priority, env));
        }
        debug_assert!(it.next().is_none());
        drop(it);
    }

    /// Wake-ups pending for the next round.
    pub fn pending_wakes(&self) -> usize {
        self.wake_list.len()
    }

    /// Whether every program of the shard reports local termination.
    pub fn all_done(&self) -> bool {
        self.programs.iter().all(NodeProgram::is_done)
    }

    pub fn into_programs(self) -> Vec<P> {
        self.programs
    }
}
