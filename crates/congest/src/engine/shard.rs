//! A contiguous node shard: the unit of work of the parallel round
//! executor.
//!
//! Each shard exclusively owns its nodes' programs, RNG streams, inboxes,
//! and wake bookkeeping, plus two message buffers: `inbound` (staged
//! deliveries for the current round, filled by the delivery backend) and
//! `outbox` (sends produced this round, drained by the coordinator's merge
//! pass). A worker thread touches nothing outside its shard during a
//! round, which is why no per-message synchronization exists anywhere.
//!
//! Determinism: within a shard, nodes run in ascending id order and each
//! node's sends are appended in issue order; the coordinator merges shard
//! outboxes in shard order. The resulting global send order is therefore
//! identical to the sequential engine's (ascending node id), making
//! sequence numbers — and with them every pinned metric — independent of
//! the thread count.

use super::topology::Topology;
use super::{Ctx, Incoming, NodeProgram};
use lcs_graph::{Graph, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

pub(crate) struct Shard<P: NodeProgram> {
    /// First node id owned by this shard.
    lo: u32,
    programs: Vec<P>,
    rngs: Vec<SmallRng>,
    inboxes: Vec<Vec<Incoming<P::Msg>>>,
    wake_flag: Vec<bool>,
    /// Nodes (global ids) that requested a wake-up for the next round.
    wake_list: Vec<u32>,
    /// Deliveries staged for this round: `(dir, msg)` with the receiver in
    /// this shard. Swapped in by the coordinator, drained by `run_round`.
    pub(crate) inbound: Vec<(u32, P::Msg)>,
    /// Sends produced this round: `(dir, priority, msg)` in deterministic
    /// node-then-issue order. Drained by the coordinator's merge pass.
    pub(crate) outbox: Vec<(u32, u64, P::Msg)>,
    /// Scratch: nodes to execute this round.
    to_run: Vec<u32>,
}

impl<P: NodeProgram> Shard<P> {
    pub fn new(
        g: &Graph,
        range: (u32, u32),
        seed: u64,
        init: &mut impl FnMut(NodeId, &Graph) -> P,
    ) -> Self {
        let (lo, hi) = range;
        let len = (hi - lo) as usize;
        Shard {
            lo,
            programs: (lo..hi).map(|v| init(NodeId(v), g)).collect(),
            rngs: (lo..hi)
                .map(|v| SmallRng::seed_from_u64(super::splitmix(seed, v)))
                .collect(),
            inboxes: (0..len).map(|_| Vec::new()).collect(),
            wake_flag: vec![false; len],
            wake_list: Vec::new(),
            inbound: Vec::new(),
            outbox: Vec::new(),
            to_run: Vec::new(),
        }
    }

    /// Runs `on_start` for every node of the shard (round 0).
    pub fn run_start(&mut self, g: &Graph) {
        for local in 0..self.programs.len() {
            self.exec_node(g, self.lo + local as u32, 0, true);
        }
    }

    /// One round: deliver the staged `inbound` messages into inboxes, pick
    /// up pending wake-ups, and run the affected nodes in ascending order.
    pub fn run_round(&mut self, g: &Graph, topo: &Topology<'_>, round: u64) {
        self.to_run.clear();
        for (dir, msg) in self.inbound.drain(..) {
            let (recv, port) = topo.recv(dir);
            let local = (recv - self.lo) as usize;
            if self.inboxes[local].is_empty() {
                self.to_run.push(recv);
            }
            self.inboxes[local].push(Incoming {
                port: port as usize,
                msg,
            });
        }
        // Wake-ups requested last round join the receivers.
        let mut wakes = std::mem::take(&mut self.wake_list);
        for v in wakes.drain(..) {
            let local = (v - self.lo) as usize;
            self.wake_flag[local] = false;
            if self.inboxes[local].is_empty() {
                self.to_run.push(v);
            }
        }
        self.wake_list = wakes;
        self.to_run.sort_unstable(); // deterministic execution order

        let to_run = std::mem::take(&mut self.to_run);
        for &v in &to_run {
            self.exec_node(g, v, round, false);
        }
        self.to_run = to_run;
    }

    /// Runs one node's callback and appends its sends (ports rewritten to
    /// directed-edge ids) to the shard outbox.
    fn exec_node(&mut self, g: &Graph, v: u32, round: u64, start: bool) {
        let local = (v - self.lo) as usize;
        let node = NodeId(v);
        let outbox_from = self.outbox.len();
        let mut wake = false;
        {
            let mut ctx = Ctx {
                node,
                round,
                heads: g.heads(node),
                edges: g.edge_ids(node),
                outbox: &mut self.outbox,
                rng: &mut self.rngs[local],
                wake: &mut wake,
            };
            if start {
                self.programs[local].on_start(&mut ctx);
            } else {
                self.programs[local].on_round(&mut ctx, &self.inboxes[local]);
                self.inboxes[local].clear();
            }
        }
        if wake && !self.wake_flag[local] {
            self.wake_flag[local] = true;
            self.wake_list.push(v);
        }
        // Ctx::send records the local port; rewrite to the global directed
        // edge id (the CSR slot) now that the sender is known.
        let base = g.first_out()[v as usize];
        for entry in &mut self.outbox[outbox_from..] {
            debug_assert!((entry.0 as usize) < g.degree(node));
            entry.0 += base;
        }
    }

    /// Wake-ups pending for the next round.
    pub fn pending_wakes(&self) -> usize {
        self.wake_list.len()
    }

    /// Whether every program of the shard reports local termination.
    pub fn all_done(&self) -> bool {
        self.programs.iter().all(NodeProgram::is_done)
    }

    pub fn into_programs(self) -> Vec<P> {
        self.programs
    }
}
