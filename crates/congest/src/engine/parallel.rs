//! The decentralized sharded round executor.
//!
//! Earlier engine versions funneled every envelope through a coordinator
//! thread that validated, sequence-numbered, bit-accounted, and staged all
//! messages between rounds — an `O(messages)` serial section that capped
//! parallel speedup well below the shard count. This executor moves all of
//! that **into the shards**. Each *lane* pairs a [`Shard`] with the
//! delivery partition of the dirs its nodes receive, and runs four steps
//! per round with no synchronization beyond two barriers:
//!
//! 1. **Ingest** the mailboxes routed to it last round (sender-shard
//!    order), pushing each envelope into its own delivery partition with
//!    the *exact global sequence number* reconstructed as
//!    `mail.base + idx + 1`.
//! 2. **Stage** the round's due deliveries straight into its shard's
//!    inbound buffer.
//! 3. **Compute** the node callbacks ([`Shard::run_round`]).
//! 4. **Flush**: validate each send against the bandwidth budget, account
//!    its bits, and route it — tagged with its lane-local send index — to
//!    the receiving lane's mailbox for the *next* round.
//!
//! The coordinator's serial window between rounds is `O(lanes)`, not
//! `O(messages)`: sum the per-lane accounts for the quiescence check,
//! prefix-sum the per-lane send counts **in shard order** to obtain each
//! lane's sequence base for the round, and rotate the mailbox buffers
//! (receiver's drained vec swaps back to the sender — the steady state
//! allocates nothing). The per-round metric fold is overlapped with the
//! next round's compute.
//!
//! # Determinism argument
//!
//! The global send order is defined as: shards in ascending order, nodes
//! ascending within a shard, issue order within a node. The prefix sum
//! gives lane `t` the base `seq + Σ_{u<t} sends_u`, so
//! `base + idx + 1` reproduces the exact sequence numbers a serial merge
//! in that order would have assigned. A partition only ever sees the
//! envelopes addressed to its own dirs, ingested sender-shard-major — a
//! filter of the fixed global order, hence itself fixed. Metrics are
//! folded from the per-lane [`ShardAccount`]s in shard order. None of
//! this depends on which OS thread runs which lane, so rounds, messages,
//! bits, and max_queue are bit-identical at any thread count — the pinned
//! corpus in `tests/sim_conformance.rs` checks exactly this.
//!
//! # Execution
//!
//! Lanes are the *determinism* unit; OS threads are the *execution* unit.
//! `exec = min(available_parallelism, lanes)` threads run the lanes
//! round-robin (thread `w` owns lanes `w, w + exec, …`). On a single-core
//! host `exec == 1` and the whole loop runs inline — no threads, no
//! barriers, no mutexes — so asking for `threads = 4` on one core costs
//! (almost) nothing over `threads = 1` instead of thrashing a spin
//! barrier. With `exec > 1`, rounds are microseconds long, so the barrier
//! is a spin barrier (sense-reversing, two atomics) with a `yield_now`
//! fallback for oversubscribed hosts. Worker panics are caught, parked
//! until the barrier cycle completes (a raw unwind past a barrier would
//! deadlock everyone else), and re-raised on the coordinator once the
//! workers have been shut down — so a protocol assertion behaves exactly
//! as in the single-shard engine.

use super::delivery::{Delivery, ShardAccount};
use super::shard::Shard;
use super::topology::Topology;
use super::{ms, NodeProgram, RunMetrics, SimConfig};
use crate::{MessageSize, PackedMsg, PhaseTimings};
use lcs_graph::Graph;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A sense-reversing spin barrier for `total` participants.
///
/// Spins briefly, then yields — on a loaded or single-core host the
/// participants degrade to cooperative scheduling instead of burning the
/// quantum.
pub(crate) struct SpinBarrier {
    total: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    pub fn new(total: usize) -> Self {
        SpinBarrier {
            total,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    pub fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            // Last arrival: reset the count, then open the next generation.
            // Every other participant is past its own increment (it read
            // `gen` first), so the reset cannot race a stale arrival.
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins = spins.saturating_add(1);
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// One routed envelope: a validated send awaiting ingestion by the
/// receiving lane.
struct Env<M> {
    dir: u32,
    priority: u64,
    /// Send index within the sending lane's round (0-based); the global
    /// sequence number is `Mail::base + idx + 1`.
    idx: u32,
    msg: M,
}

/// A mailbox: the envelopes one sender lane routed to one receiver lane
/// in one round, plus the sender's sequence base for that round.
struct Mail<M> {
    base: u64,
    envs: Vec<Env<M>>,
}

/// A lane: one shard plus the delivery partition of the dirs it receives,
/// its mailboxes, and its per-round account. The unit of deterministic
/// work; several lanes may share one OS thread.
struct Lane<P: NodeProgram, D> {
    shard: Shard<P>,
    part: D,
    /// `in_from[t]`: the mailbox sender lane `t` routed to this lane last
    /// round. Ingested in `t` order (= global send order filtered to this
    /// partition's dirs).
    in_from: Vec<Mail<PackedMsg<P::Msg>>>,
    /// `out_to[s]`: envelopes this lane's nodes sent to receiver lane `s`
    /// this round, in issue order, tagged with lane-local send indices.
    out_to: Vec<Vec<Env<PackedMsg<P::Msg>>>>,
    account: ShardAccount,
}

/// One lane's full round: ingest → stage → compute → flush. Runs with no
/// access to any other lane's state; panics (bandwidth or strict-mode
/// assertions) unwind to the calling worker's catch.
fn lane_phase<P, D>(
    lane: &mut Lane<P, D>,
    g: &Graph,
    topo: &Topology<'_>,
    round: u64,
    bandwidth: usize,
) where
    P: NodeProgram,
    D: Delivery<PackedMsg<P::Msg>>,
{
    let Lane {
        shard,
        part,
        in_from,
        out_to,
        account: acc,
    } = lane;

    // Ingest: last round's sends routed to this partition, sender-shard
    // major. The senders executed in `round - 1`, which is the round the
    // delivery backends schedule from.
    for mail in in_from.iter_mut() {
        for env in mail.envs.drain(..) {
            part.push(
                env.dir,
                env.priority,
                mail.base + u64::from(env.idx) + 1,
                env.msg,
                round - 1,
                topo,
            );
        }
    }

    *acc = ShardAccount::default();

    // Stage this round's due deliveries straight into the shard's inbound
    // buffer — no coordinator staging pass, no extra copy.
    debug_assert!(shard.inbound.is_empty());
    part.stage(round, topo, &mut shard.inbound, acc);

    // Compute.
    shard.run_round(g, topo, round);

    // Flush: validate + bit-account this lane's own sends and route each
    // envelope to the lane that receives it. `idx` is the lane-local send
    // index the coordinator's prefix sum turns into exact global seqs.
    let n = topo.num_nodes();
    let mut idx = 0u32;
    for (dir, priority, msg) in shard.outbox.drain(..) {
        let bits = msg.size_bits_in(n);
        assert!(
            bits <= bandwidth,
            "message of {bits} bits exceeds the {bandwidth}-bit CONGEST bandwidth"
        );
        acc.bits += bits as u64;
        out_to[topo.dir_shard(dir)].push(Env {
            dir,
            priority,
            idx,
            msg,
        });
        idx += 1;
    }
    acc.sends = u64::from(idx);
    acc.wakes = shard.pending_wakes();
    acc.pending = part.pending();
}

/// The coordinator's mailbox rotation: assigns each lane its sequence
/// base for the finished round (prefix sum of send counts in shard
/// order — the determinism keystone) and swaps every `out_to[s]` with the
/// matching `in_from[t]` buffer, so the receiver gets the envelopes and
/// the sender gets a drained vec back. `O(lanes²)` pointer swaps, no
/// envelope is copied.
fn rotate_mailboxes<P, D>(lanes: &mut [&mut Lane<P, D>], seq: &mut u64)
where
    P: NodeProgram,
{
    let count = lanes.len();
    let mut bases = [0u64; 64];
    debug_assert!(count <= 64, "threads are clamped to 64");
    for (t, lane) in lanes.iter().enumerate() {
        bases[t] = *seq;
        *seq += lane.account.sends;
    }
    for t in 0..count {
        for s in 0..count {
            if s == t {
                let Lane {
                    in_from, out_to, ..
                } = &mut *lanes[t];
                std::mem::swap(&mut out_to[t], &mut in_from[t].envs);
                in_from[t].base = bases[t];
            } else {
                let (a, b) = lanes.split_at_mut(s.max(t));
                let (sender, receiver) = if t < s {
                    (&mut *a[t], &mut *b[0])
                } else {
                    (&mut *b[0], &mut *a[s])
                };
                std::mem::swap(&mut sender.out_to[s], &mut receiver.in_from[t].envs);
                receiver.in_from[t].base = bases[t];
            }
        }
    }
}

/// Folds the per-lane accounts of one round into the run metrics, in
/// shard order.
fn fold_accounts(accounts: &[ShardAccount], metrics: &mut RunMetrics) {
    for acc in accounts {
        metrics.bits += acc.bits;
        metrics.messages += acc.messages;
        metrics.max_queue = metrics.max_queue.max(acc.max_queue);
    }
}

/// Runs the round loop over `shards.len()` lanes. Returns the final
/// shards (for program extraction), metrics, and phase timings.
///
/// `metrics` and `seq` carry the round-0 (`on_start`) state the caller
/// already flushed into the partitions. `exec_override` forces the OS
/// thread count (tests use it to exercise the threaded path on
/// single-core hosts); `None` resolves to the host parallelism.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive_par<P, D>(
    config: &SimConfig,
    g: &Graph,
    topo: &Topology<'_>,
    bandwidth: usize,
    parts: Vec<D>,
    shards: Vec<Shard<P>>,
    metrics: RunMetrics,
    seq: u64,
    exec_override: Option<usize>,
) -> (Vec<Shard<P>>, RunMetrics, PhaseTimings)
where
    P: NodeProgram + Send,
    P::Msg: Send,
    D: Delivery<PackedMsg<P::Msg>> + Send,
{
    let count = shards.len();
    debug_assert_eq!(parts.len(), count);
    let lanes: Vec<Lane<P, D>> = shards
        .into_iter()
        .zip(parts)
        .map(|(shard, part)| {
            // Seed the account with the round-0 state so the first serial
            // window's quiescence check sees on_start's sends and wakes.
            let account = ShardAccount {
                wakes: shard.pending_wakes(),
                pending: part.pending(),
                ..ShardAccount::default()
            };
            Lane {
                shard,
                part,
                in_from: (0..count)
                    .map(|_| Mail {
                        base: 0,
                        envs: Vec::new(),
                    })
                    .collect(),
                out_to: (0..count).map(|_| Vec::new()).collect(),
                account,
            }
        })
        .collect();

    let exec = exec_override
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .clamp(1, count);

    let (lanes, metrics, timings) = if exec == 1 {
        drive_lanes_inline(config, g, topo, bandwidth, lanes, metrics, seq)
    } else {
        drive_lanes_threaded(config, g, topo, bandwidth, lanes, metrics, seq, exec)
    };
    (
        lanes.into_iter().map(|l| l.shard).collect(),
        metrics,
        timings,
    )
}

/// The `exec == 1` loop: every lane runs on the calling thread, in lane
/// order, with zero synchronization. Deterministically identical to the
/// threaded loop (same lane phases, same serial window); this is what a
/// multi-shard config costs on a single-core host.
fn drive_lanes_inline<P, D>(
    config: &SimConfig,
    g: &Graph,
    topo: &Topology<'_>,
    bandwidth: usize,
    mut lanes: Vec<Lane<P, D>>,
    mut metrics: RunMetrics,
    mut seq: u64,
) -> (Vec<Lane<P, D>>, RunMetrics, PhaseTimings)
where
    P: NodeProgram,
    D: Delivery<PackedMsg<P::Msg>>,
{
    let mut timings = PhaseTimings::default();
    let mut fold: Vec<ShardAccount> = Vec::with_capacity(lanes.len());
    loop {
        // Serial window (same work the threaded coordinator does).
        let t0 = Instant::now();
        let inflight: usize = lanes
            .iter()
            .map(|l| l.account.pending + l.account.sends as usize)
            .sum();
        let wakes: usize = lanes.iter().map(|l| l.account.wakes).sum();
        fold.clear();
        fold.extend(lanes.iter().map(|l| l.account));
        if inflight == 0 && wakes == 0 {
            fold_accounts(&fold, &mut metrics);
            metrics.terminated = lanes.iter().all(|l| l.shard.all_done());
            break;
        }
        if metrics.rounds >= config.max_rounds {
            fold_accounts(&fold, &mut metrics);
            metrics.truncated = true;
            break;
        }
        let mut refs: Vec<&mut Lane<P, D>> = lanes.iter_mut().collect();
        rotate_mailboxes(&mut refs, &mut seq);
        metrics.rounds += 1;
        let round = metrics.rounds;
        let t1 = Instant::now();
        fold_accounts(&fold, &mut metrics);
        let t2 = Instant::now();
        for lane in &mut lanes {
            lane_phase(lane, g, topo, round, bandwidth);
        }
        let t3 = Instant::now();
        timings.stage_ms += ms(t1 - t0);
        timings.merge_ms += ms(t2 - t1);
        timings.compute_ms += ms(t3 - t2);
    }
    (lanes, metrics, timings)
}

/// The `exec > 1` loop: `exec - 1` scoped workers plus the coordinator,
/// each running the lanes `w, w + exec, …` between two spin barriers per
/// round. The round-`r-1` metric fold happens after the release barrier,
/// overlapped with the workers' round-`r` compute.
#[allow(clippy::too_many_arguments)]
fn drive_lanes_threaded<P, D>(
    config: &SimConfig,
    g: &Graph,
    topo: &Topology<'_>,
    bandwidth: usize,
    lanes: Vec<Lane<P, D>>,
    mut metrics: RunMetrics,
    mut seq: u64,
    exec: usize,
) -> (Vec<Lane<P, D>>, RunMetrics, PhaseTimings)
where
    P: NodeProgram + Send,
    P::Msg: Send,
    D: Delivery<PackedMsg<P::Msg>> + Send,
{
    let cells: Vec<Mutex<Lane<P, D>>> = lanes.into_iter().map(Mutex::new).collect();
    let barrier = SpinBarrier::new(exec);
    let stop = AtomicBool::new(false);
    let round_now = AtomicU64::new(0);
    let worker_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let mut timings = PhaseTimings::default();

    std::thread::scope(|scope| {
        for w in 1..exec {
            let cells = &cells;
            let (barrier, stop, round_now) = (&barrier, &stop, &round_now);
            let worker_panic = &worker_panic;
            scope.spawn(move || loop {
                barrier.wait(); // released by the coordinator once rotated
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let round = round_now.load(Ordering::Acquire);
                let result = catch_unwind(AssertUnwindSafe(|| {
                    for cell in cells.iter().skip(w).step_by(exec) {
                        lane_phase(&mut lock(cell), g, topo, round, bandwidth);
                    }
                }));
                if let Err(payload) = result {
                    lock(worker_panic).get_or_insert(payload);
                }
                barrier.wait(); // round work done
            });
        }

        // The coordinator loop must not unwind between barriers (the
        // workers would deadlock); its own lane phases are caught like a
        // worker's, and the serial window is guarded by this outer catch.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut fold: Vec<ShardAccount> = Vec::with_capacity(cells.len());
            loop {
                // Serial window: the workers are parked at the release
                // barrier, so every lock is uncontended.
                let t0 = Instant::now();
                let mut guards: Vec<_> = cells.iter().map(lock).collect();
                let inflight: usize = guards
                    .iter()
                    .map(|l| l.account.pending + l.account.sends as usize)
                    .sum();
                let wakes: usize = guards.iter().map(|l| l.account.wakes).sum();
                fold.clear();
                fold.extend(guards.iter().map(|l| l.account));
                if inflight == 0 && wakes == 0 {
                    fold_accounts(&fold, &mut metrics);
                    metrics.terminated = guards.iter().all(|l| l.shard.all_done());
                    break;
                }
                if metrics.rounds >= config.max_rounds {
                    fold_accounts(&fold, &mut metrics);
                    metrics.truncated = true;
                    break;
                }
                let mut refs: Vec<&mut Lane<P, D>> = guards.iter_mut().map(|g| &mut **g).collect();
                rotate_mailboxes(&mut refs, &mut seq);
                drop(refs);
                drop(guards);
                metrics.rounds += 1;
                let round = metrics.rounds;
                round_now.store(round, Ordering::Release);
                let t1 = Instant::now();

                barrier.wait(); // release the workers into the round
                                // Overlap: fold the previous round's accounts while the
                                // workers are already computing this one.
                fold_accounts(&fold, &mut metrics);
                let t2 = Instant::now();
                // The coordinator is worker 0: run its own lanes.
                let own = catch_unwind(AssertUnwindSafe(|| {
                    for cell in cells.iter().step_by(exec) {
                        lane_phase(&mut lock(cell), g, topo, round, bandwidth);
                    }
                }));
                if let Err(payload) = own {
                    lock(&worker_panic).get_or_insert(payload);
                }
                barrier.wait(); // wait for every lane to finish
                let t3 = Instant::now();
                timings.stage_ms += ms(t1 - t0);
                timings.merge_ms += ms(t2 - t1);
                timings.compute_ms += ms(t3 - t2);

                if lock(&worker_panic).is_some() {
                    break; // re-raised below, after the workers are stopped
                }
            }
        }));

        // Shut the workers down (they are parked at the release barrier).
        stop.store(true, Ordering::Release);
        barrier.wait();
        if let Err(payload) = outcome {
            lock(&worker_panic).get_or_insert(payload);
        }
    });

    if let Some(payload) = lock(&worker_panic).take() {
        resume_unwind(payload);
    }

    let lanes = cells
        .into_iter()
        .map(|c| c.into_inner().unwrap_or_else(|e| e.into_inner()))
        .collect();
    (lanes, metrics, timings)
}

/// Locks ignoring poison: a poisoned lane only occurs on a worker panic,
/// which the coordinator re-raises anyway.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::super::delivery::StrictDelivery;
    use super::super::{flush_shard, Ctx, Incoming};
    use super::*;
    use lcs_graph::{gen, NodeId};

    /// MaxFlood: floods the maximum node id (same shape as the engine-level
    /// test program, rebuilt here because that one is private to the
    /// `engine::tests` module).
    struct MaxFlood {
        best: u32,
    }

    impl NodeProgram for MaxFlood {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            let best = self.best;
            ctx.broadcast(best);
        }

        fn on_round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[Incoming<u32>]) {
            let mut improved = false;
            for m in inbox {
                if m.msg > self.best {
                    self.best = m.msg;
                    improved = true;
                }
            }
            if improved {
                let best = self.best;
                ctx.broadcast(best);
            }
        }

        fn is_done(&self) -> bool {
            true
        }
    }

    /// Replicates `Simulator::run`'s setup (round 0 included) and drives
    /// the lanes with a forced OS thread count — the only way to exercise
    /// the threaded path on a single-core host.
    fn run_max_flood(
        g: &lcs_graph::Graph,
        lanes: usize,
        exec: usize,
    ) -> (Vec<MaxFlood>, RunMetrics) {
        let config = SimConfig::default();
        let topo = Topology::build(g, lanes);
        let mut shards: Vec<Shard<MaxFlood>> = (0..topo.num_shards())
            .map(|s| {
                Shard::new(
                    g,
                    topo.shard_range(s),
                    config.seed,
                    1,
                    1 << 20,
                    &mut |v, _| MaxFlood { best: v.0 },
                )
            })
            .collect();
        let mut parts: Vec<StrictDelivery<PackedMsg<u32>>> = (0..topo.num_shards())
            .map(|s| StrictDelivery::new(topo.shard_dir_count(s)))
            .collect();
        let mut metrics = RunMetrics::default();
        let mut seq = 0u64;
        for shard in &mut shards {
            shard.run_start(g);
        }
        for shard in &mut shards {
            flush_shard(shard, &mut parts, &topo, 0, 1 << 20, &mut seq, &mut metrics);
        }
        let (shards, metrics, _) = drive_par(
            &config,
            g,
            &topo,
            1 << 20,
            parts,
            shards,
            metrics,
            seq,
            Some(exec),
        );
        (
            shards.into_iter().flat_map(Shard::into_programs).collect(),
            metrics,
        )
    }

    #[test]
    fn forced_thread_counts_match_the_inline_path() {
        let g = gen::grid(7, 9);
        let (base_progs, base) = run_max_flood(&g, 4, 1);
        assert!(base.terminated);
        assert!(base_progs.iter().all(|p| p.best == 62));
        for exec in [2, 3, 4] {
            let (progs, metrics) = run_max_flood(&g, 4, exec);
            assert_eq!(metrics.counts(), base.counts(), "exec={exec}");
            assert!(progs.iter().all(|p| p.best == 62), "exec={exec}");
        }
        // Lanes ≠ exec ≠ divisor cases: uneven round-robin assignment.
        let (_, m7) = run_max_flood(&g, 7, 3);
        let (_, m7b) = run_max_flood(&g, 7, 1);
        assert_eq!(m7.counts(), m7b.counts());
    }

    #[test]
    fn threaded_worker_panics_propagate() {
        struct Bomb;
        impl NodeProgram for Bomb {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                ctx.wake_next_round();
            }
            fn on_round(&mut self, ctx: &mut Ctx<'_, u32>, _: &[Incoming<u32>]) {
                if ctx.node() == NodeId(5) {
                    panic!("protocol bug on node 5");
                }
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = gen::path(8);
        let config = SimConfig::default();
        let topo = Topology::build(&g, 4);
        let mut shards: Vec<Shard<Bomb>> = (0..topo.num_shards())
            .map(|s| {
                Shard::new(
                    &g,
                    topo.shard_range(s),
                    config.seed,
                    1,
                    1 << 20,
                    &mut |_, _| Bomb,
                )
            })
            .collect();
        let parts: Vec<StrictDelivery<PackedMsg<u32>>> = (0..topo.num_shards())
            .map(|s| StrictDelivery::new(topo.shard_dir_count(s)))
            .collect();
        for shard in &mut shards {
            shard.run_start(&g);
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            drive_par(
                &config,
                &g,
                &topo,
                1 << 20,
                parts,
                shards,
                RunMetrics::default(),
                0,
                Some(2),
            )
        }));
        let payload = match result {
            Err(payload) => payload,
            Ok(_) => panic!("the worker panic must reach the caller"),
        };
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .unwrap_or_default();
        assert!(msg.contains("protocol bug on node 5"), "got: {msg}");
    }
}
