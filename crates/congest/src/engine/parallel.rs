//! The sharded parallel round executor.
//!
//! One coordinator (the calling thread) plus `num_shards` scoped workers.
//! Per round the coordinator stages deliveries into per-shard inbound
//! buffers, releases the workers through a barrier, waits for them, then
//! merges the shard outboxes — in shard order — into the delivery
//! backend. All validation, sequence numbering, and metric accounting
//! happens in that single-threaded merge, so the execution is bit-for-bit
//! the sequential one; the workers only parallelize message delivery and
//! the `on_round` callbacks.
//!
//! Rounds are microseconds long, so the barrier is a spin barrier
//! (sense-reversing, built from two atomics) with a `yield_now` fallback
//! for oversubscribed hosts. Worker panics are caught, parked until the
//! barrier cycle completes (a raw unwind past a barrier would deadlock
//! everyone else), and re-raised on the coordinator once the workers have
//! been shut down — so a protocol assertion behaves exactly as in the
//! sequential engine.

use super::delivery::Delivery;
use super::shard::Shard;
use super::topology::Topology;
use super::{flush_shard, NodeProgram, RunMetrics, SimConfig};
use crate::PackedMsg;
use lcs_graph::Graph;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A sense-reversing spin barrier for `total` participants.
///
/// Spins briefly, then yields — on a loaded or single-core host the
/// participants degrade to cooperative scheduling instead of burning the
/// quantum.
pub(crate) struct SpinBarrier {
    total: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    pub fn new(total: usize) -> Self {
        SpinBarrier {
            total,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    pub fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            // Last arrival: reset the count, then open the next generation.
            // Every other participant is past its own increment (it read
            // `gen` first), so the reset cannot race a stale arrival.
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins = spins.saturating_add(1);
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Runs the round loop with `shards.len()` worker threads. Returns the
/// final metrics and the shards (for program extraction).
///
/// `metrics`, `seq`, and `wakes` carry the round-0 (`on_start`) state the
/// caller already flushed.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive_par<P, D>(
    config: &SimConfig,
    g: &Graph,
    topo: &Topology<'_>,
    bandwidth: usize,
    mut delivery: D,
    shards: Vec<Shard<P>>,
    mut metrics: RunMetrics,
    mut seq: u64,
    mut wakes: usize,
) -> (Vec<Shard<P>>, RunMetrics)
where
    P: NodeProgram + Send,
    P::Msg: Send,
    D: Delivery<PackedMsg<P::Msg>>,
{
    let num_shards = shards.len();
    let cells: Vec<Mutex<Shard<P>>> = shards.into_iter().map(Mutex::new).collect();
    let barrier = SpinBarrier::new(num_shards + 1);
    let stop = AtomicBool::new(false);
    let round_now = AtomicU64::new(0);
    let worker_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    let mut staging: Vec<Vec<(u32, PackedMsg<P::Msg>)>> =
        (0..num_shards).map(|_| Vec::new()).collect();

    std::thread::scope(|scope| {
        for cell in &cells {
            let (barrier, stop, round_now) = (&barrier, &stop, &round_now);
            let worker_panic = &worker_panic;
            scope.spawn(move || loop {
                barrier.wait(); // released by the coordinator once staged
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let round = round_now.load(Ordering::Acquire);
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let mut shard = lock(cell);
                    shard.run_round(g, topo, round);
                }));
                if let Err(payload) = result {
                    lock(worker_panic).get_or_insert(payload);
                }
                barrier.wait(); // round work done
            });
        }

        // The coordinator loop must not unwind between barriers: a panic
        // (bandwidth or strict-mode assertion during the merge) is caught,
        // the workers — parked at the release barrier — are shut down, and
        // the payload re-raised outside the scope.
        let outcome = catch_unwind(AssertUnwindSafe(|| loop {
            if !delivery.inflight() && wakes == 0 {
                metrics.terminated = cells.iter().all(|c| lock(c).all_done());
                break;
            }
            if metrics.rounds >= config.max_rounds {
                metrics.truncated = true;
                break;
            }
            metrics.rounds += 1;
            let round = metrics.rounds;
            round_now.store(round, Ordering::Release);

            delivery.stage(round, topo, &mut staging, &mut metrics);
            for (cell, staged) in cells.iter().zip(staging.iter_mut()) {
                std::mem::swap(&mut lock(cell).inbound, staged);
            }

            barrier.wait(); // release the workers into the round
            barrier.wait(); // wait for every shard to finish

            if lock(&worker_panic).is_some() {
                break; // re-raised below, after the workers are stopped
            }

            // Merge in shard order: the global send order equals the
            // sequential engine's, so seq numbers and metrics match bit
            // for bit.
            wakes = 0;
            for cell in &cells {
                let mut shard = lock(cell);
                flush_shard(
                    &mut shard,
                    &mut delivery,
                    topo,
                    round,
                    bandwidth,
                    &mut seq,
                    &mut metrics,
                );
                wakes += shard.pending_wakes();
            }
        }));

        // Shut the workers down (they are parked at the release barrier).
        stop.store(true, Ordering::Release);
        barrier.wait();
        if let Err(payload) = outcome {
            lock(&worker_panic).get_or_insert(payload);
        }
    });

    if let Some(payload) = lock(&worker_panic).take() {
        resume_unwind(payload);
    }

    let shards = cells
        .into_iter()
        .map(|c| c.into_inner().unwrap_or_else(|e| e.into_inner()))
        .collect();
    (shards, metrics)
}

/// Locks ignoring poison: a poisoned shard only occurs on a worker panic,
/// which the coordinator re-raises anyway.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}
