//! Strict-mode delivery: a flat per-partition send arena.
//!
//! Pure CONGEST admits at most one message per directed edge per round, so
//! no queueing structure is needed at all: pushes append to the
//! partition's arena `Vec`, and staging a round is a single `Vec` swap
//! with the shard's inbound buffer (the two rotate, so the steady-state
//! round loop allocates nothing). Double-send detection stamps a per-dir
//! round mark, indexed by the partition-local dense dir index.

use super::{Delivery, ShardAccount, Topology};
use crate::MessageSize;

pub(crate) struct StrictDelivery<M> {
    /// Messages sent this round, in partition push order; swapped into the
    /// shard's inbound buffer at the next [`stage`].
    ///
    /// [`stage`]: Delivery::stage
    arena: Vec<(u32, M)>,
    /// Round stamp per partition-local dir for double-send detection.
    sent_round: Vec<u64>,
    /// Messages pushed but not yet staged.
    pending: usize,
}

impl<M> StrictDelivery<M> {
    pub fn new(local_dirs: usize) -> Self {
        StrictDelivery {
            arena: Vec::new(),
            sent_round: vec![0; local_dirs],
            pending: 0,
        }
    }
}

impl<M: MessageSize> Delivery<M> for StrictDelivery<M> {
    fn push(&mut self, dir: u32, _priority: u64, _seq: u64, msg: M, round: u64, topo: &Topology) {
        let local = topo.dir_local(dir);
        assert!(
            self.sent_round[local] != round + 1,
            "strict mode: node {} sent twice on port {} in round {round}",
            topo.sender_of(dir).0 .0,
            topo.sender_of(dir).1,
        );
        self.sent_round[local] = round + 1;
        self.arena.push((dir, msg));
        self.pending += 1;
    }

    fn pending(&self) -> usize {
        self.pending
    }

    fn stage(
        &mut self,
        _round: u64,
        _topo: &Topology,
        out: &mut Vec<(u32, M)>,
        acc: &mut ShardAccount,
    ) {
        if self.arena.is_empty() {
            return;
        }
        acc.max_queue = acc.max_queue.max(1);
        acc.messages += self.arena.len() as u64;
        self.pending -= self.arena.len();
        if out.is_empty() {
            std::mem::swap(&mut self.arena, out);
        } else {
            out.append(&mut self.arena);
        }
    }
}
