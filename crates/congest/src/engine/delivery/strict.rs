//! Strict-mode delivery: the double-buffered flat send arena.
//!
//! Pure CONGEST admits at most one message per directed edge per round, so
//! no queueing structure is needed at all: pushes append to a per-shard
//! arena `Vec` (routed by the receiver's shard at push time), and staging
//! a round is a handful of `Vec` swaps. The arenas rotate between the
//! backend and the shards' inbound buffers, so the steady-state round loop
//! allocates nothing.

use super::{Delivery, Topology};
use crate::{MessageSize, RunMetrics};

pub(crate) struct StrictDelivery<M> {
    /// Messages sent this round, grouped by the receiver's shard; swapped
    /// into the shards' inbound buffers at the next [`stage`].
    ///
    /// [`stage`]: Delivery::stage
    next: Vec<Vec<(u32, M)>>,
    /// Round stamp per directed edge for double-send detection.
    sent_round: Vec<u64>,
    /// Messages pushed but not yet staged.
    inflight: usize,
}

impl<M> StrictDelivery<M> {
    pub fn new(num_dirs: usize, num_shards: usize) -> Self {
        StrictDelivery {
            next: (0..num_shards).map(|_| Vec::new()).collect(),
            sent_round: vec![0; num_dirs],
            inflight: 0,
        }
    }
}

impl<M: MessageSize> Delivery<M> for StrictDelivery<M> {
    fn push(&mut self, dir: u32, _priority: u64, _seq: u64, msg: M, round: u64, topo: &Topology) {
        assert!(
            self.sent_round[dir as usize] != round + 1,
            "strict mode: node {} sent twice on port {} in round {round}",
            topo.sender_of(dir).0 .0,
            topo.sender_of(dir).1,
        );
        self.sent_round[dir as usize] = round + 1;
        let (recv, _) = topo.recv(dir);
        self.next[topo.shard_of(recv)].push((dir, msg));
        self.inflight += 1;
    }

    fn inflight(&self) -> bool {
        self.inflight > 0
    }

    fn stage(
        &mut self,
        _round: u64,
        _topo: &Topology,
        out: &mut [Vec<(u32, M)>],
        metrics: &mut RunMetrics,
    ) {
        for (arena, staged) in self.next.iter_mut().zip(out.iter_mut()) {
            if arena.is_empty() {
                continue;
            }
            metrics.max_queue = metrics.max_queue.max(1);
            metrics.messages += arena.len() as u64;
            self.inflight -= arena.len();
            debug_assert!(staged.is_empty());
            std::mem::swap(arena, staged);
        }
    }
}
