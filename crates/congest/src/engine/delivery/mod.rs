//! Pluggable delivery backends for the round loop.
//!
//! A backend owns every message between a sender's flush and its delivery
//! into the receiver's inbox. The engine drives it through exactly three
//! operations per round, all on the coordinating thread, in a fixed order:
//!
//! 1. [`Delivery::push`] — once per validated message, in the global
//!    deterministic send order (shards merged in shard order, nodes
//!    ascending within a shard, sends in issue order within a node).
//! 2. [`Delivery::stage`] — once per round: move everything due this round
//!    into per-shard staging lists (routed by the *receiver's* shard, so
//!    the shard workers can deliver without synchronization).
//! 3. [`Delivery::inflight`] — the quiescence check.
//!
//! Because staging happens on one thread in a fixed order, the metrics a
//! backend reports (`messages`, `max_queue`) are bit-identical regardless
//! of how many worker threads later drain the staged lists.
//!
//! Backends are generic over the wire message type; the engine
//! instantiates them with [`PackedMsg`]`<P::Msg>` envelopes, so one queue
//! slot / one delivery / one `messages` tick corresponds to one (possibly
//! multi-value) CONGEST message regardless of the packing factor.
//!
//! [`PackedMsg`]: crate::PackedMsg

mod queued;
mod strict;

pub(crate) use queued::CalendarDelivery;
pub(crate) use strict::StrictDelivery;

use super::topology::Topology;
use crate::{MessageSize, RunMetrics};

/// A delivery backend: accepts validated sends, schedules them, and stages
/// each round's deliveries into per-receiver-shard lists.
pub(crate) trait Delivery<M: MessageSize> {
    /// Accepts one message on directed edge `dir`.
    ///
    /// `seq` is the run-global send sequence number (monotonic in push
    /// order); `round` is the round the sender executed in (0 during
    /// `on_start`). Backends may panic on protocol violations (e.g. a
    /// strict-mode double send).
    fn push(&mut self, dir: u32, priority: u64, seq: u64, msg: M, round: u64, topo: &Topology<'_>);

    /// Whether any accepted message has not been staged yet.
    fn inflight(&self) -> bool;

    /// Moves every message due in `round` into `out`, where `out[s]`
    /// collects `(dir, msg)` pairs whose receiver lies in shard `s`. Every
    /// `out[s]` is empty on entry. Updates `metrics.messages` and
    /// `metrics.max_queue` exactly as the seed engine did.
    fn stage(
        &mut self,
        round: u64,
        topo: &Topology<'_>,
        out: &mut [Vec<(u32, M)>],
        metrics: &mut RunMetrics,
    );
}
