//! Pluggable delivery backends for the round loop — one *partition* per
//! receiver shard.
//!
//! A backend instance owns every in-flight message whose directed edge is
//! received by its shard, and runs entirely on that shard's lane: the lane
//! validates its own nodes' sends, routes each envelope to the receiving
//! lane's mailbox, and at the start of the next round the receiving lane
//! pushes the ingested envelopes into its partition and stages the round's
//! deliveries — no coordinator-side pass touches message payloads.
//!
//! Determinism does not depend on which thread runs a partition, only on
//! the *order* each partition sees its own pushes. The engine guarantees
//! that order is the global deterministic send order (shard-major, nodes
//! ascending within a shard, issue order within a node) filtered to the
//! partition's dirs — a filter of a fixed order is itself fixed — and
//! passes each push the exact global sequence number, reconstructed from
//! per-shard send counts via a prefix sum in shard order.
//!
//! Each partition accounts what it delivers into a [`ShardAccount`]; the
//! coordinator folds the accounts in shard order, which makes the summed
//! metrics (`messages`, `bits`, `max_queue`) bit-identical at any thread
//! count.
//!
//! Backends are generic over the wire message type; the engine
//! instantiates them with [`PackedMsg`]`<P::Msg>` envelopes, so one queue
//! slot / one delivery / one `messages` tick corresponds to one (possibly
//! multi-value) CONGEST message regardless of the packing factor.
//!
//! [`PackedMsg`]: crate::PackedMsg

mod queued;
mod strict;

pub(crate) use queued::CalendarDelivery;
pub(crate) use strict::StrictDelivery;

use super::topology::Topology;
use crate::MessageSize;

/// Per-shard, per-round delivery accounting, folded into [`RunMetrics`] by
/// the coordinator in shard order.
///
/// [`RunMetrics`]: crate::RunMetrics
#[derive(Clone, Copy, Default, Debug)]
pub(crate) struct ShardAccount {
    /// Envelopes this shard's nodes sent this round (validated and
    /// bit-accounted in-lane). Drives the seq-base prefix sum.
    pub sends: u64,
    /// Bits those sends were billed at.
    pub bits: u64,
    /// Envelopes this partition *delivered* this round.
    pub messages: u64,
    /// Largest per-dir backlog this partition observed this round.
    pub max_queue: u64,
    /// Wake-ups the shard's programs requested for future rounds.
    pub wakes: usize,
    /// Envelopes still queued in this partition after staging.
    pub pending: usize,
}

/// One receiver shard's delivery partition: accepts validated sends
/// addressed to this shard's dirs, schedules them, and stages each round's
/// deliveries.
pub(crate) trait Delivery<M: MessageSize> {
    /// Accepts one message on directed edge `dir` (which must belong to
    /// this partition's shard).
    ///
    /// `seq` is the run-global send sequence number (monotonic in global
    /// push order); `round` is the round the sender executed in (0 during
    /// `on_start`). Backends may panic on protocol violations (e.g. a
    /// strict-mode double send).
    fn push(&mut self, dir: u32, priority: u64, seq: u64, msg: M, round: u64, topo: &Topology<'_>);

    /// Number of accepted messages not yet staged.
    fn pending(&self) -> usize;

    /// Moves every message due in `round` into `out` as `(dir, msg)` pairs
    /// and accounts the deliveries (`messages`, `max_queue`, `pending`)
    /// into `acc`. `out` is this shard's inbound buffer; it is empty on
    /// entry.
    fn stage(
        &mut self,
        round: u64,
        topo: &Topology<'_>,
        out: &mut Vec<(u32, M)>,
        acc: &mut ShardAccount,
    );
}
