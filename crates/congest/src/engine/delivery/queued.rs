//! Queued-mode delivery: a bucketed calendar queue (one per receiver
//! shard).
//!
//! Queued mode delivers, per round, the `(priority, seq)`-minimum pending
//! message of every non-empty directed edge. The seed engine realized this
//! with per-edge `BinaryHeap`s scanned over an active-dir list; this
//! backend replaces both with a calendar:
//!
//! - **Per-dir queues** hold each directed edge's pending messages sorted
//!   ascending by `(priority, seq)` in a `VecDeque` ring, indexed by the
//!   partition-local dense dir index. The dominant workloads (detection
//!   convergecasts) send everything at one priority, so inserts are
//!   monotone `push_back`s and pops are `pop_front`s — no heap traffic,
//!   no comparisons beyond one against the back element. Preempting sends
//!   (a lower priority arriving behind queued messages) binary-search
//!   their slot; they only occur in multi-instance random-delay workloads.
//! - **Delivery tokens** schedule *when* a dir drains. Each push claims
//!   the dir's next free round via a per-dir clock:
//!   `slot = max(round + 1, next_slot)`, then `next_slot = slot + 1`. The
//!   clock makes every token slot of a dir distinct — the invariant that
//!   keeps delivery-time merging (below) within the one-message-per-edge-
//!   per-round CONGEST discipline. Tokens are anonymous — a fired token
//!   delivers whatever is minimal *at that round* — so preemption never
//!   reschedules anything.
//! - **Calendar buckets**: a token for round `r` lives in
//!   `buckets[r % horizon]`; staging round `r` drains one bucket linearly,
//!   like the strict arena. Tokens more than `horizon` rounds out (a dir
//!   backlog deeper than the horizon) wait in an **overflow ring** that is
//!   swept back into the buckets once per calendar wrap
//!   (`round % horizon == 0`); a slot `s` token is always swept in by the
//!   unique wrap in `[s - horizon + 1, s]`, i.e. before it is due.
//!
//! ## Delivery-time merging
//!
//! With `message_packing = k > 1`, a firing token absorbs the dir's
//! queued follow-up messages — same priority, FIFO order — into the
//! departing envelope while the combined value count stays within `k` and
//! the combined packed width within the bandwidth budget. This is what
//! lets *trickle* senders (one value per round, so send-side packing never
//! sees a run) ride multi-value messages: the backlog coalesces at the
//! moment the edge actually has bandwidth. Absorbed messages leave their
//! tokens behind; a stale token either finds the dir empty (skipped) or
//! delivers a later message a few rounds early — never two envelopes on
//! one dir in one round, because token slots are distinct per dir.
//! Per-dir future tokens always ≥ pending messages (a push adds one of
//! each; a firing token removes one token and ≥ 1 message unless the dir
//! is already empty), so no message is ever stranded.
//!
//! ## Why this is metric-identical to the seed engine at `packing = 1`
//!
//! Without merging there are no stale tokens, and the clock reduces to the
//! seed schedule: a dir's tokens occupy consecutive rounds starting no
//! later than the round after its first pending send (a push onto a
//! non-empty dir extends the token run by one; a push onto an empty dir
//! has `next_slot <= round + 1` and starts a new run next round). Hence
//! every non-empty dir fires exactly one token per round — the same "each
//! active dir delivers its minimum once per round" schedule the seed
//! engine's active-list scan produced, with `max_queue` measured at the
//! same instant (delivery time).

use super::{Delivery, ShardAccount, Topology};
use crate::message::Mergeable;
use crate::MessageSize;
use std::collections::VecDeque;

/// Calendar width in rounds. Backlogs deeper than this spill to the
/// overflow ring; 64 covers every corpus workload (detection backlogs track
/// the congestion threshold, double-digit in practice) while keeping the
/// bucket array cache-resident.
pub(crate) const HORIZON: u64 = 64;

/// One pending message on a directed edge.
struct Pending<M> {
    priority: u64,
    seq: u64,
    msg: M,
}

impl<M> Pending<M> {
    fn key(&self) -> (u64, u64) {
        (self.priority, self.seq)
    }
}

pub(crate) struct CalendarDelivery<M> {
    /// The `(priority, seq)`-minimum pending message per local dir, inline
    /// in a flat array: the common ≤1-message-per-dir case (every one-shot
    /// protocol) never touches a heap allocation or a pointer chase.
    slots: Vec<Option<Pending<M>>>,
    /// Pending messages beyond the minimum, ascending by `(priority, seq)`.
    /// A `VecDeque` ring per local dir, allocated only once a second
    /// message queues; FIFO streams (equal priorities ⇒ monotone keys) are
    /// pure `push_back`/`pop_front`, a displaced slot minimum re-enters at
    /// the front, and only preempting mid-priority sends binary-search.
    rest: Vec<VecDeque<Pending<M>>>,
    /// Dense mirror of `rest[local].len()`, so the hot pop path skips the
    /// ring headers entirely while any dir's backlog is ≤ 1.
    rest_len: Vec<u32>,
    /// Per-local-dir token clock: the earliest round this dir has not yet
    /// claimed a delivery token for.
    next_slot: Vec<u64>,
    /// `buckets[r % horizon]` holds the (global) dirs delivering in round
    /// `r`.
    buckets: Vec<Vec<u32>>,
    /// Tokens scheduled beyond the calendar window: `(round, dir)`, swept
    /// into the buckets at each calendar wrap.
    overflow: Vec<(u64, u32)>,
    horizon: u64,
    /// Messages accepted but not yet delivered.
    pending: usize,
    /// Max values per delivered envelope (the resolved `message_packing`);
    /// 1 disables delivery-time merging.
    pack: usize,
    /// Per-message bandwidth budget in bits, capping merged envelopes.
    budget: usize,
}

impl<M> CalendarDelivery<M> {
    pub fn new(local_dirs: usize, pack: usize, budget: usize) -> Self {
        Self::with_horizon(local_dirs, HORIZON, pack, budget)
    }

    /// Test hook: a custom (small) horizon exercises the overflow ring
    /// without thousand-message backlogs.
    pub fn with_horizon(local_dirs: usize, horizon: u64, pack: usize, budget: usize) -> Self {
        assert!(horizon >= 1);
        CalendarDelivery {
            slots: (0..local_dirs).map(|_| None).collect(),
            rest: (0..local_dirs).map(|_| VecDeque::new()).collect(),
            rest_len: vec![0; local_dirs],
            next_slot: vec![0; local_dirs],
            buckets: (0..horizon).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            horizon,
            pending: 0,
            pack: pack.max(1),
            budget,
        }
    }
}

impl<M> CalendarDelivery<M> {
    /// Inserts into the local dir's `(priority, seq)`-ordered pending
    /// queue.
    fn insert(&mut self, local: usize, item: Pending<M>) {
        match &mut self.slots[local] {
            empty @ None => *empty = Some(item),
            Some(held) => {
                if item.key() < held.key() {
                    // New minimum: the displaced slot holder precedes
                    // everything already in `rest`.
                    let displaced = std::mem::replace(held, item);
                    self.rest[local].push_front(displaced);
                } else {
                    let rest = &mut self.rest[local];
                    match rest.back() {
                        Some(back) if back.key() > item.key() => {
                            // Preempting send: binary-search the slot.
                            let at = rest.partition_point(|p| p.key() < item.key());
                            rest.insert(at, item);
                        }
                        _ => rest.push_back(item),
                    }
                }
                self.rest_len[local] += 1;
            }
        }
    }

    /// Removes and returns the local dir's minimum, refilling the slot
    /// from the rest ring. `None` when the dir has nothing pending (a
    /// stale token after delivery-time merging). On `Some`, the second
    /// element is the queue length before the pop.
    fn pop_min(&mut self, local: usize) -> Option<(Pending<M>, usize)> {
        let item = self.slots[local].take()?;
        let rest_len = self.rest_len[local];
        if rest_len > 0 {
            self.slots[local] = self.rest[local].pop_front();
            self.rest_len[local] = rest_len - 1;
        }
        Some((item, 1 + rest_len as usize))
    }
}

impl<M: MessageSize + Mergeable> Delivery<M> for CalendarDelivery<M> {
    fn push(&mut self, dir: u32, priority: u64, seq: u64, msg: M, round: u64, topo: &Topology) {
        let local = topo.dir_local(dir);
        self.insert(local, Pending { priority, seq, msg });
        // Claim the dir's next free delivery round. `round + 1 ..
        // round + horizon` are all in the calendar window at push time (the
        // round-`round` bucket was drained before any round-`round` send is
        // pushed), and `round + horizon` would collide with it, so
        // strictly-less guards the bucket bound. The clock only trails
        // `round + 1` while the dir has been idle, in which case it has no
        // outstanding tokens; after merging it may lead the dir's true
        // backlog, keeping new slots distinct from stale tokens.
        let slot = (round + 1).max(self.next_slot[local]);
        self.next_slot[local] = slot + 1;
        if slot < round + self.horizon {
            self.buckets[(slot % self.horizon) as usize].push(dir);
        } else {
            self.overflow.push((slot, dir));
        }
        self.pending += 1;
    }

    fn pending(&self) -> usize {
        self.pending
    }

    fn stage(
        &mut self,
        round: u64,
        topo: &Topology,
        out: &mut Vec<(u32, M)>,
        acc: &mut ShardAccount,
    ) {
        // Calendar wrap: pull overdue-soon tokens out of the overflow ring.
        // `slot == round` entries must land before the drain below; tokens at
        // `round + horizon` or later would collide with still-pending buckets
        // and wait for the next wrap.
        if round.is_multiple_of(self.horizon) && !self.overflow.is_empty() {
            let (horizon, buckets) = (self.horizon, &mut self.buckets);
            self.overflow.retain(|&(slot, dir)| {
                debug_assert!(slot >= round);
                if slot < round + horizon {
                    buckets[(slot % horizon) as usize].push(dir);
                    false
                } else {
                    true
                }
            });
        }

        let n = topo.num_nodes();
        let idx = (round % self.horizon) as usize;
        for k in 0..self.buckets[idx].len() {
            let dir = self.buckets[idx][k];
            let local = topo.dir_local(dir);
            let Some((item, qlen)) = self.pop_min(local) else {
                continue; // stale token: this dir's backlog merged away
            };
            acc.max_queue = acc.max_queue.max(qlen as u64);
            let Pending {
                priority, mut msg, ..
            } = item;
            let mut removed = 1;
            if self.pack > 1 {
                // Delivery-time merging: absorb queued same-priority
                // follow-ups (FIFO: pop_min yields them in (priority, seq)
                // order) while the envelope stays within the packing
                // factor and the bandwidth budget.
                let mut vals = msg.values();
                let mut width = msg.size_bits_in(n);
                while vals < self.pack {
                    let Some(next) = self.slots[local].as_ref() else {
                        break;
                    };
                    if next.priority != priority {
                        break;
                    }
                    let nvals = next.msg.values();
                    if vals + nvals > self.pack {
                        break;
                    }
                    let cost = msg.merge_cost_in(&next.msg, n);
                    if width.saturating_add(cost) > self.budget {
                        break;
                    }
                    let (follow, _) = self.pop_min(local).expect("peeked above");
                    msg.absorb(follow.msg);
                    vals += nvals;
                    width += cost;
                    removed += 1;
                }
            }
            out.push((dir, msg));
            acc.messages += 1;
            self.pending -= removed;
        }
        self.buckets[idx].clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PackedMsg;
    use lcs_graph::gen;

    /// Raw `u32` payloads are unmergeable (the [`Mergeable`] defaults), so
    /// the scheduling tests below exercise the calendar exactly as a
    /// `packing = 1` run would even when constructed with a larger pack.
    impl Mergeable for u32 {}

    /// Drives a backend directly: pushes with explicit rounds, stages every
    /// round, and returns the delivered payloads in order.
    fn drain_all(cal: &mut CalendarDelivery<u32>, topo: &Topology, from_round: u64) -> Vec<u32> {
        let mut got = Vec::new();
        let mut acc = ShardAccount::default();
        let mut out = Vec::new();
        let mut round = from_round;
        while cal.pending() > 0 {
            round += 1;
            cal.stage(round, topo, &mut out, &mut acc);
            got.extend(out.drain(..).map(|(_, msg)| msg));
            assert!(round < from_round + 10_000, "calendar failed to drain");
        }
        got
    }

    #[test]
    fn priority_ties_resolve_fifo() {
        let g = gen::path(2);
        let topo = Topology::build(&g, 1);
        let mut cal: CalendarDelivery<u32> =
            CalendarDelivery::with_horizon(topo.num_dirs(), 4, 1, usize::MAX);
        // Same priority: seq (send order) breaks the tie.
        for (seq, msg) in [(1, 10), (2, 11), (3, 12), (4, 13)] {
            cal.push(0, 7, seq, msg, 0, &topo);
        }
        assert_eq!(drain_all(&mut cal, &topo, 0), vec![10, 11, 12, 13]);
    }

    #[test]
    fn preempting_priority_jumps_the_queue() {
        let g = gen::path(2);
        let topo = Topology::build(&g, 1);
        let mut cal: CalendarDelivery<u32> =
            CalendarDelivery::with_horizon(topo.num_dirs(), 4, 1, usize::MAX);
        cal.push(0, 5, 1, 50, 0, &topo);
        cal.push(0, 5, 2, 51, 0, &topo);
        cal.push(0, 1, 3, 10, 0, &topo); // lower priority value drains first
        assert_eq!(drain_all(&mut cal, &topo, 0), vec![10, 50, 51]);
    }

    #[test]
    fn horizon_overflow_delivers_in_slot_order() {
        let g = gen::path(2);
        let topo = Topology::build(&g, 1);
        // Horizon 4, backlog 11: tokens for rounds 1..=11, rounds >= 4
        // overflow and must be swept in across several calendar wraps.
        let mut cal: CalendarDelivery<u32> =
            CalendarDelivery::with_horizon(topo.num_dirs(), 4, 1, usize::MAX);
        for seq in 1..=11u64 {
            cal.push(0, 0, seq, seq as u32, 0, &topo);
        }
        assert!(
            !cal.overflow.is_empty(),
            "backlog must spill past the horizon"
        );
        let mut acc = ShardAccount::default();
        let mut out = Vec::new();
        for round in 1..=11u64 {
            cal.stage(round, &topo, &mut out, &mut acc);
            let staged: Vec<u32> = out.drain(..).map(|(_, msg)| msg).collect();
            assert_eq!(
                staged,
                vec![round as u32],
                "exactly one delivery per round, in slot order"
            );
        }
        assert_eq!(cal.pending(), 0);
        assert_eq!(acc.messages, 11);
        assert_eq!(acc.max_queue, 11);
    }

    #[test]
    fn mid_stream_sends_extend_the_token_run() {
        let g = gen::path(2);
        let topo = Topology::build(&g, 1);
        let mut cal: CalendarDelivery<u32> =
            CalendarDelivery::with_horizon(topo.num_dirs(), 4, 1, usize::MAX);
        let mut acc = ShardAccount::default();
        let mut out = Vec::new();
        cal.push(0, 0, 1, 1, 0, &topo);
        cal.push(0, 0, 2, 2, 0, &topo);
        cal.stage(1, &topo, &mut out, &mut acc);
        assert_eq!(out.drain(..).map(|(_, m)| m).collect::<Vec<_>>(), vec![1]);
        // Sent during round 1 while a token for round 2 is in flight: the
        // new message claims round 3, not a duplicate round-2 token.
        cal.push(0, 0, 3, 3, 1, &topo);
        cal.stage(2, &topo, &mut out, &mut acc);
        assert_eq!(out.drain(..).map(|(_, m)| m).collect::<Vec<_>>(), vec![2]);
        cal.stage(3, &topo, &mut out, &mut acc);
        assert_eq!(out.drain(..).map(|(_, m)| m).collect::<Vec<_>>(), vec![3]);
        assert_eq!(cal.pending(), 0);
        assert_eq!(acc.max_queue, 2);
    }

    #[test]
    fn idle_dir_restarts_cleanly_after_draining() {
        let g = gen::path(2);
        let topo = Topology::build(&g, 1);
        let mut cal: CalendarDelivery<u32> =
            CalendarDelivery::with_horizon(topo.num_dirs(), 4, 1, usize::MAX);
        let mut acc = ShardAccount::default();
        let mut out = Vec::new();
        cal.push(0, 0, 1, 1, 0, &topo);
        cal.stage(1, &topo, &mut out, &mut acc);
        out.clear();
        // Quiet rounds pass; a much later send must deliver the round after
        // it was pushed, not at the stale `next_slot`.
        for round in 2..=9 {
            cal.stage(round, &topo, &mut out, &mut acc);
            assert!(out.is_empty());
        }
        cal.push(0, 0, 2, 42, 9, &topo);
        cal.stage(10, &topo, &mut out, &mut acc);
        assert_eq!(out.drain(..).map(|(_, m)| m).collect::<Vec<_>>(), vec![42]);
    }

    /// Stages one round of a packed-envelope calendar, returning the
    /// delivered envelopes.
    fn stage_packed(
        cal: &mut CalendarDelivery<PackedMsg<u32>>,
        topo: &Topology,
        round: u64,
        acc: &mut ShardAccount,
    ) -> Vec<PackedMsg<u32>> {
        let mut out = Vec::new();
        cal.stage(round, topo, &mut out, acc);
        out.into_iter().map(|(_, m)| m).collect()
    }

    #[test]
    fn delivery_merging_respects_pack_and_budget() {
        let g = gen::path(2);
        let topo = Topology::build(&g, 1);
        // u32 payloads bill 32 bits each; a 70-bit budget fits 2 values.
        let mut cal: CalendarDelivery<PackedMsg<u32>> =
            CalendarDelivery::with_horizon(topo.num_dirs(), 8, 4, 70);
        let mut acc = ShardAccount::default();
        for seq in 1..=6u64 {
            cal.push(0, 0, seq, PackedMsg::One(seq as u32), 0, &topo);
        }
        // Budget caps each envelope at 2 values despite pack = 4; FIFO
        // order is preserved across the merged envelopes.
        let mut all = Vec::new();
        for round in 1..=6u64 {
            for env in stage_packed(&mut cal, &topo, round, &mut acc) {
                assert!(env.size_bits_in(topo.num_nodes()) <= 70);
                assert_eq!(env.len(), 2);
                all.extend(env.iter().copied());
            }
            if cal.pending() == 0 {
                break;
            }
        }
        assert_eq!(all, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(acc.messages, 3);
        assert_eq!(cal.pending(), 0);
    }

    #[test]
    fn delivery_merging_stops_at_pack_and_priority_boundaries() {
        let g = gen::path(2);
        let topo = Topology::build(&g, 1);
        let mut cal: CalendarDelivery<PackedMsg<u32>> =
            CalendarDelivery::with_horizon(topo.num_dirs(), 8, 3, usize::MAX);
        let mut acc = ShardAccount::default();
        // Four priority-0 values then two priority-1 values: the first
        // envelope takes 3 (the pack cap), the second takes the remaining
        // priority-0 value alone (a priority boundary stops the merge).
        for seq in 1..=4u64 {
            cal.push(0, 0, seq, PackedMsg::One(seq as u32), 0, &topo);
        }
        for seq in 5..=6u64 {
            cal.push(0, 1, seq, PackedMsg::One(seq as u32), 0, &topo);
        }
        let r1 = stage_packed(&mut cal, &topo, 1, &mut acc);
        assert_eq!(r1.len(), 1);
        assert_eq!(r1[0].iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
        let r2 = stage_packed(&mut cal, &topo, 2, &mut acc);
        assert_eq!(r2[0].iter().copied().collect::<Vec<_>>(), vec![4]);
        // The priority-1 backlog merges separately.
        let r3 = stage_packed(&mut cal, &topo, 3, &mut acc);
        assert_eq!(r3[0].iter().copied().collect::<Vec<_>>(), vec![5, 6]);
        assert_eq!(cal.pending(), 0);
        // Stale tokens (left by the merges) fire on an empty dir and are
        // skipped without delivering or panicking.
        for round in 4..=7u64 {
            assert!(stage_packed(&mut cal, &topo, round, &mut acc).is_empty());
        }
        assert_eq!(acc.messages, 3);
    }

    #[test]
    fn merging_never_double_delivers_a_dir_in_one_round() {
        let g = gen::path(2);
        let topo = Topology::build(&g, 1);
        let mut cal: CalendarDelivery<PackedMsg<u32>> =
            CalendarDelivery::with_horizon(topo.num_dirs(), 8, 4, usize::MAX);
        let mut acc = ShardAccount::default();
        // Backlog of 4 merges into one envelope in round 1, leaving stale
        // tokens at rounds 2..4. A send during round 1 must not ride a
        // stale token *and* its own token.
        for seq in 1..=4u64 {
            cal.push(0, 0, seq, PackedMsg::One(seq as u32), 0, &topo);
        }
        let r1 = stage_packed(&mut cal, &topo, 1, &mut acc);
        assert_eq!(r1[0].len(), 4);
        cal.push(0, 0, 5, PackedMsg::One(5), 1, &topo);
        let mut deliveries = 0;
        for round in 2..=8u64 {
            let envs = stage_packed(&mut cal, &topo, round, &mut acc);
            assert!(envs.len() <= 1, "one envelope per dir per round");
            deliveries += envs.len();
        }
        assert_eq!(deliveries, 1);
        assert_eq!(cal.pending(), 0);
    }
}
