//! Queued-mode delivery: a bucketed calendar queue.
//!
//! Queued mode delivers, per round, the `(priority, seq)`-minimum pending
//! message of every non-empty directed edge. The seed engine realized this
//! with per-edge `BinaryHeap`s scanned over an active-dir list; this
//! backend replaces both with a calendar:
//!
//! - **Per-dir queues** hold each directed edge's pending messages sorted
//!   ascending by `(priority, seq)` in a `VecDeque` ring. The dominant
//!   workloads (detection convergecasts) send everything at one priority,
//!   so inserts are monotone `push_back`s and pops are `pop_front`s — no
//!   heap traffic, no comparisons beyond one against the back element.
//!   Preempting sends (a lower priority arriving behind queued messages)
//!   binary-search their slot; they only occur in multi-instance
//!   random-delay workloads.
//! - **Delivery tokens** schedule *when* a dir drains: a dir with `q`
//!   pending messages owns tokens for `q` consecutive future rounds (one
//!   delivery per round, exactly the CONGEST queue discipline). Tokens are
//!   anonymous — a fired token delivers whatever is minimal *at that
//!   round* — so preemption never reschedules anything.
//! - **Calendar buckets**: token for round `r` lives in
//!   `buckets[r % horizon]`; staging round `r` drains one bucket linearly,
//!   like the strict arena. Tokens more than `horizon` rounds out (a dir
//!   backlog deeper than the horizon) wait in an **overflow ring** that is
//!   swept back into the buckets once per calendar wrap
//!   (`round % horizon == 0`); a slot `s` token is always swept in by the
//!   unique wrap in `[s - horizon + 1, s]`, i.e. before it is due.
//!
//! ## Why this is metric-identical to the seed engine
//!
//! A dir's tokens occupy consecutive rounds starting no later than the
//! round after its first pending send (induction: a push onto a non-empty
//! dir extends the token run by one; a push onto an empty dir starts a new
//! run next round). Hence every non-empty dir fires exactly one token per
//! round — the same "each active dir delivers its minimum once per round"
//! schedule the seed engine's active-list scan produced, with `max_queue`
//! measured at the same instant (delivery time).

use super::{Delivery, Topology};
use crate::{MessageSize, RunMetrics};
use std::collections::VecDeque;

/// Calendar width in rounds. Backlogs deeper than this spill to the
/// overflow ring; 64 covers every corpus workload (detection backlogs track
/// the congestion threshold, double-digit in practice) while keeping the
/// bucket array cache-resident.
pub(crate) const HORIZON: u64 = 64;

/// One pending message on a directed edge.
struct Pending<M> {
    priority: u64,
    seq: u64,
    msg: M,
}

impl<M> Pending<M> {
    fn key(&self) -> (u64, u64) {
        (self.priority, self.seq)
    }
}

pub(crate) struct CalendarDelivery<M> {
    /// The `(priority, seq)`-minimum pending message per dir, inline in a
    /// flat array: the common ≤1-message-per-dir case (every one-shot
    /// protocol) never touches a heap allocation or a pointer chase.
    slots: Vec<Option<Pending<M>>>,
    /// Pending messages beyond the minimum, ascending by `(priority, seq)`.
    /// A `VecDeque` ring per dir, allocated only once a second message
    /// queues; FIFO streams (equal priorities ⇒ monotone keys) are pure
    /// `push_back`/`pop_front`, a displaced slot minimum re-enters at the
    /// front, and only preempting mid-priority sends binary-search.
    rest: Vec<VecDeque<Pending<M>>>,
    /// Dense mirror of `rest[dir].len()`, so the hot pop path skips the
    /// ring headers entirely while any dir's backlog is ≤ 1.
    rest_len: Vec<u32>,
    /// `buckets[r % horizon]` holds the dirs delivering in round `r`.
    buckets: Vec<Vec<u32>>,
    /// Tokens scheduled beyond the calendar window: `(round, dir)`, swept
    /// into the buckets at each calendar wrap.
    overflow: Vec<(u64, u32)>,
    horizon: u64,
    inflight: usize,
}

impl<M> CalendarDelivery<M> {
    pub fn new(num_dirs: usize) -> Self {
        Self::with_horizon(num_dirs, HORIZON)
    }

    /// Test hook: a custom (small) horizon exercises the overflow ring
    /// without thousand-message backlogs.
    pub fn with_horizon(num_dirs: usize, horizon: u64) -> Self {
        assert!(horizon >= 1);
        CalendarDelivery {
            slots: (0..num_dirs).map(|_| None).collect(),
            rest: (0..num_dirs).map(|_| VecDeque::new()).collect(),
            rest_len: vec![0; num_dirs],
            buckets: (0..horizon).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            horizon,
            inflight: 0,
        }
    }
}

impl<M> CalendarDelivery<M> {
    /// Inserts into the dir's `(priority, seq)`-ordered pending queue and
    /// returns the queue length *before* the insert.
    fn insert(&mut self, dir: usize, item: Pending<M>) -> usize {
        match &mut self.slots[dir] {
            empty @ None => {
                *empty = Some(item);
                0
            }
            Some(held) => {
                let before = 1 + self.rest_len[dir] as usize;
                if item.key() < held.key() {
                    // New minimum: the displaced slot holder precedes
                    // everything already in `rest`.
                    let displaced = std::mem::replace(held, item);
                    self.rest[dir].push_front(displaced);
                } else {
                    let rest = &mut self.rest[dir];
                    match rest.back() {
                        Some(back) if back.key() > item.key() => {
                            // Preempting send: binary-search the slot.
                            let at = rest.partition_point(|p| p.key() < item.key());
                            rest.insert(at, item);
                        }
                        _ => rest.push_back(item),
                    }
                }
                self.rest_len[dir] += 1;
                before
            }
        }
    }

    /// Removes and returns the dir's minimum, refilling the slot from the
    /// overflow ring. Returns `(item, queue length before the pop)`.
    fn pop_min(&mut self, dir: usize) -> (Pending<M>, usize) {
        let item = self.slots[dir]
            .take()
            .expect("fired token implies a pending message");
        let rest_len = self.rest_len[dir];
        if rest_len > 0 {
            self.slots[dir] = self.rest[dir].pop_front();
            self.rest_len[dir] = rest_len - 1;
        }
        (item, 1 + rest_len as usize)
    }
}

impl<M: MessageSize> Delivery<M> for CalendarDelivery<M> {
    fn push(&mut self, dir: u32, priority: u64, seq: u64, msg: M, round: u64, _topo: &Topology) {
        let len_before = self.insert(dir as usize, Pending { priority, seq, msg });
        // Claim the dir's next delivery round. A non-empty dir always has
        // its in-flight tokens on the consecutive rounds starting next
        // round (it delivers every round), so the new message's token goes
        // `len_before` rounds after that — no per-dir clock needed.
        // `round + 1 .. round + horizon` are all in the calendar window at
        // push time (the round-`round` bucket was drained before any
        // round-`round` send is pushed), and `round + horizon` would
        // collide with it, so strictly-less guards the bucket bound.
        let slot = round + 1 + len_before as u64;
        if slot < round + self.horizon {
            self.buckets[(slot % self.horizon) as usize].push(dir);
        } else {
            self.overflow.push((slot, dir));
        }
        self.inflight += 1;
    }

    fn inflight(&self) -> bool {
        self.inflight > 0
    }

    fn stage(
        &mut self,
        round: u64,
        topo: &Topology,
        out: &mut [Vec<(u32, M)>],
        metrics: &mut RunMetrics,
    ) {
        // Calendar wrap: pull overdue-soon tokens out of the overflow ring.
        // `slot == round` entries must land before the drain below; tokens at
        // `round + horizon` or later would collide with still-pending buckets
        // and wait for the next wrap.
        if round.is_multiple_of(self.horizon) && !self.overflow.is_empty() {
            let (horizon, buckets) = (self.horizon, &mut self.buckets);
            self.overflow.retain(|&(slot, dir)| {
                debug_assert!(slot >= round);
                if slot < round + horizon {
                    buckets[(slot % horizon) as usize].push(dir);
                    false
                } else {
                    true
                }
            });
        }

        let idx = (round % self.horizon) as usize;
        for k in 0..self.buckets[idx].len() {
            let dir = self.buckets[idx][k];
            let (item, len) = self.pop_min(dir as usize);
            metrics.max_queue = metrics.max_queue.max(len as u64);
            let (recv, _) = topo.recv(dir);
            out[topo.shard_of(recv)].push((dir, item.msg));
            metrics.messages += 1;
            self.inflight -= 1;
        }
        self.buckets[idx].clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::gen;

    /// Drives a backend directly: pushes with explicit rounds, stages every
    /// round, and returns the delivered payloads in order.
    fn drain_all(cal: &mut CalendarDelivery<u32>, topo: &Topology, from_round: u64) -> Vec<u32> {
        let mut got = Vec::new();
        let mut metrics = RunMetrics::default();
        let mut out = vec![Vec::new(); topo.num_shards()];
        let mut round = from_round;
        while cal.inflight() {
            round += 1;
            cal.stage(round, topo, &mut out, &mut metrics);
            for staged in &mut out {
                got.extend(staged.drain(..).map(|(_, msg)| msg));
            }
            assert!(round < from_round + 10_000, "calendar failed to drain");
        }
        got
    }

    #[test]
    fn priority_ties_resolve_fifo() {
        let g = gen::path(2);
        let topo = Topology::build(&g, 1);
        let mut cal: CalendarDelivery<u32> = CalendarDelivery::with_horizon(topo.num_dirs(), 4);
        // Same priority: seq (send order) breaks the tie.
        for (seq, msg) in [(1, 10), (2, 11), (3, 12), (4, 13)] {
            cal.push(0, 7, seq, msg, 0, &topo);
        }
        assert_eq!(drain_all(&mut cal, &topo, 0), vec![10, 11, 12, 13]);
    }

    #[test]
    fn preempting_priority_jumps_the_queue() {
        let g = gen::path(2);
        let topo = Topology::build(&g, 1);
        let mut cal: CalendarDelivery<u32> = CalendarDelivery::with_horizon(topo.num_dirs(), 4);
        cal.push(0, 5, 1, 50, 0, &topo);
        cal.push(0, 5, 2, 51, 0, &topo);
        cal.push(0, 1, 3, 10, 0, &topo); // lower priority value drains first
        assert_eq!(drain_all(&mut cal, &topo, 0), vec![10, 50, 51]);
    }

    #[test]
    fn horizon_overflow_delivers_in_slot_order() {
        let g = gen::path(2);
        let topo = Topology::build(&g, 1);
        // Horizon 4, backlog 11: tokens for rounds 1..=11, rounds >= 4
        // overflow and must be swept in across several calendar wraps.
        let mut cal: CalendarDelivery<u32> = CalendarDelivery::with_horizon(topo.num_dirs(), 4);
        for seq in 1..=11u64 {
            cal.push(0, 0, seq, seq as u32, 0, &topo);
        }
        assert!(
            !cal.overflow.is_empty(),
            "backlog must spill past the horizon"
        );
        let mut metrics = RunMetrics::default();
        let mut out = vec![Vec::new()];
        for round in 1..=11u64 {
            cal.stage(round, &topo, &mut out, &mut metrics);
            let staged: Vec<u32> = out[0].drain(..).map(|(_, msg)| msg).collect();
            assert_eq!(
                staged,
                vec![round as u32],
                "exactly one delivery per round, in slot order"
            );
        }
        assert!(!cal.inflight());
        assert_eq!(metrics.messages, 11);
        assert_eq!(metrics.max_queue, 11);
    }

    #[test]
    fn mid_stream_sends_extend_the_token_run() {
        let g = gen::path(2);
        let topo = Topology::build(&g, 1);
        let mut cal: CalendarDelivery<u32> = CalendarDelivery::with_horizon(topo.num_dirs(), 4);
        let mut metrics = RunMetrics::default();
        let mut out = vec![Vec::new()];
        cal.push(0, 0, 1, 1, 0, &topo);
        cal.push(0, 0, 2, 2, 0, &topo);
        cal.stage(1, &topo, &mut out, &mut metrics);
        assert_eq!(
            out[0].drain(..).map(|(_, m)| m).collect::<Vec<_>>(),
            vec![1]
        );
        // Sent during round 1 while a token for round 2 is in flight: the
        // new message claims round 3, not a duplicate round-2 token.
        cal.push(0, 0, 3, 3, 1, &topo);
        cal.stage(2, &topo, &mut out, &mut metrics);
        assert_eq!(
            out[0].drain(..).map(|(_, m)| m).collect::<Vec<_>>(),
            vec![2]
        );
        cal.stage(3, &topo, &mut out, &mut metrics);
        assert_eq!(
            out[0].drain(..).map(|(_, m)| m).collect::<Vec<_>>(),
            vec![3]
        );
        assert!(!cal.inflight());
        assert_eq!(metrics.max_queue, 2);
    }

    #[test]
    fn idle_dir_restarts_cleanly_after_draining() {
        let g = gen::path(2);
        let topo = Topology::build(&g, 1);
        let mut cal: CalendarDelivery<u32> = CalendarDelivery::with_horizon(topo.num_dirs(), 4);
        let mut metrics = RunMetrics::default();
        let mut out = vec![Vec::new()];
        cal.push(0, 0, 1, 1, 0, &topo);
        cal.stage(1, &topo, &mut out, &mut metrics);
        out[0].clear();
        // Quiet rounds pass; a much later send must deliver the round after
        // it was pushed, not at the stale `next_slot`.
        for round in 2..=9 {
            cal.stage(round, &topo, &mut out, &mut metrics);
            assert!(out[0].is_empty());
        }
        cal.push(0, 0, 2, 42, 9, &topo);
        cal.stage(10, &topo, &mut out, &mut metrics);
        assert_eq!(
            out[0].drain(..).map(|(_, m)| m).collect::<Vec<_>>(),
            vec![42]
        );
    }
}
