//! A deterministic simulator for the synchronous CONGEST model.
//!
//! The paper's model (§1.1): the network is an `n`-node undirected graph; in
//! each round every node may send one `O(log n)`-bit message to each
//! neighbor. Nodes know their own id, their neighbors' ids, and nothing else
//! about the topology.
//!
//! This crate provides:
//!
//! * [`Simulator`] — a round-driven engine executing one [`NodeProgram`]
//!   per node, enforcing per-edge bandwidth (strict mode) or queueing excess
//!   messages with priorities (queued mode, used for random-delay
//!   scheduling), and reporting exact round/message/bit counts
//!   ([`RunMetrics`]),
//! * [`protocols`] — the standard building blocks (BFS tree, broadcast,
//!   convergecast, leader election) every distributed algorithm in the
//!   workspace reuses.
//!
//! Determinism: node programs receive seeded per-node RNG streams; identical
//! seeds yield identical executions, so all measured round counts in
//! EXPERIMENTS.md are exactly reproducible.
//!
//! # Example
//!
//! ```
//! use lcs_congest::{protocols::BfsTreeProgram, SimConfig, Simulator};
//! use lcs_graph::{gen, NodeId};
//!
//! let g = gen::grid(4, 4);
//! let sim = Simulator::new(&g, SimConfig::default());
//! let run = sim.run(|v, _| BfsTreeProgram::new(v == NodeId(0)));
//! assert!(run.metrics.terminated);
//! // BFS completes in eccentricity + O(1) rounds.
//! assert!(run.metrics.rounds <= 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod message;
mod metrics;

pub mod protocols;

pub use engine::{splitmix, Ctx, Incoming, NodeProgram, RunOutcome, SimConfig, SimMode, Simulator};
pub use message::{id_bits, MessageSize, NodeIdMsg, PackedMsg};
pub use metrics::{PhaseTimings, RunMetrics};
