//! Message size accounting for the CONGEST bandwidth limit.

/// Bits needed to address one of `n` entities (nodes, parts, edges): the
/// `⌈log₂(n+1)⌉` of the CONGEST model's `O(log n)`-bit id assumption. At
/// least 1 even for degenerate networks.
///
/// ```
/// use lcs_congest::id_bits;
/// assert_eq!(id_bits(1), 1);
/// assert_eq!(id_bits(64), 7);
/// assert_eq!(id_bits(1 << 20), 21);
/// ```
pub fn id_bits(n: usize) -> usize {
    let n = n.max(1) as u64;
    (u64::BITS - n.leading_zeros()) as usize
}

/// Types that can report their wire size in bits.
///
/// The simulator checks every sent message against the per-round bandwidth
/// (`O(log n)` bits by default) and bills [`RunMetrics::bits`] accordingly.
/// Implementations should account for what a reasonable binary encoding
/// would use — exact bit-packing is not required, but sizes must scale
/// correctly: a message carrying two node ids must report roughly
/// `2·log n`, not a constant.
///
/// Sizing comes in two flavors:
///
/// * [`size_bits`](MessageSize::size_bits) — the network-size-independent
///   estimate, used when `n` is unknown (raw payloads such as `u64`
///   aggregates are billed at their full width).
/// * [`size_bits_in`](MessageSize::size_bits_in) — the `n`-aware size the
///   **simulator actually bills**: id payloads (node / part / fragment ids)
///   should report [`id_bits`]`(n)` here so bits-metrics scale as
///   `O(log n)` like the model assumes. The default forwards to
///   `size_bits`, which is correct for value payloads.
///
/// For protocols whose whole message is one bare id, use the ready-made
/// [`NodeIdMsg`] wrapper instead of `u32` (which bills a fixed 32 bits
/// regardless of `n`).
///
/// [`RunMetrics::bits`]: crate::RunMetrics::bits
pub trait MessageSize {
    /// Size of this message in bits, when the network size is unknown.
    fn size_bits(&self) -> usize;

    /// Size of this message in bits in an `n`-node network. Id payloads
    /// scale as [`id_bits`]`(n)`; value payloads keep their fixed width.
    fn size_bits_in(&self, n: usize) -> usize {
        let _ = n;
        self.size_bits()
    }
}

/// A message that is exactly one id (node, part, fragment, …), billed at
/// [`id_bits`]`(n)` by the simulator — the `O(log n)`-scaling counterpart
/// of sending a raw `u32` (which always bills 32 bits).
///
/// ```
/// use lcs_congest::{id_bits, MessageSize, NodeIdMsg};
/// let m = NodeIdMsg(17);
/// assert_eq!(m.size_bits(), 32);            // n unknown: full width
/// assert_eq!(m.size_bits_in(100), id_bits(100)); // n known: 7 bits
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct NodeIdMsg(pub u32);

impl MessageSize for NodeIdMsg {
    fn size_bits(&self) -> usize {
        32
    }

    fn size_bits_in(&self, n: usize) -> usize {
        id_bits(n)
    }
}

impl MessageSize for () {
    fn size_bits(&self) -> usize {
        1
    }
}

impl MessageSize for bool {
    fn size_bits(&self) -> usize {
        1
    }
}

/// Raw 32-bit payload: billed at full width regardless of `n`. For id
/// payloads use [`NodeIdMsg`] (or an `n`-aware [`MessageSize::size_bits_in`]
/// impl) so the bits-metric scales as `O(log n)`.
impl MessageSize for u32 {
    fn size_bits(&self) -> usize {
        32
    }
}

/// Raw 64-bit payload (aggregate values, hashes): billed at full width.
impl MessageSize for u64 {
    fn size_bits(&self) -> usize {
        64
    }
}

impl<A: MessageSize, B: MessageSize> MessageSize for (A, B) {
    fn size_bits(&self) -> usize {
        self.0.size_bits() + self.1.size_bits()
    }

    fn size_bits_in(&self, n: usize) -> usize {
        self.0.size_bits_in(n) + self.1.size_bits_in(n)
    }
}

impl<T: MessageSize> MessageSize for Option<T> {
    fn size_bits(&self) -> usize {
        1 + self.as_ref().map_or(0, MessageSize::size_bits)
    }

    fn size_bits_in(&self, n: usize) -> usize {
        1 + self.as_ref().map_or(0, |m| m.size_bits_in(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(().size_bits(), 1);
        assert_eq!(true.size_bits(), 1);
        assert_eq!(7u32.size_bits(), 32);
        assert_eq!(7u64.size_bits(), 64);
        // Raw payloads are n-independent.
        assert_eq!(7u32.size_bits_in(1000), 32);
        assert_eq!(7u64.size_bits_in(1000), 64);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!((1u32, 2u32).size_bits(), 64);
        assert_eq!(Some(1u32).size_bits(), 33);
        assert_eq!(None::<u32>.size_bits(), 1);
        // Composites forward the n-aware sizing to their components.
        assert_eq!((NodeIdMsg(1), 2u64).size_bits_in(64), 7 + 64);
        assert_eq!(Some(NodeIdMsg(1)).size_bits_in(64), 1 + 7);
    }

    #[test]
    fn id_bits_is_ceil_log2() {
        assert_eq!(id_bits(0), 1);
        assert_eq!(id_bits(1), 1);
        assert_eq!(id_bits(2), 2);
        assert_eq!(id_bits(3), 2);
        assert_eq!(id_bits(4), 3);
        assert_eq!(id_bits(255), 8);
        assert_eq!(id_bits(256), 9);
        assert_eq!(id_bits(100_000), 17);
    }

    #[test]
    fn node_id_msg_scales_with_n() {
        assert_eq!(NodeIdMsg(5).size_bits(), 32);
        assert_eq!(NodeIdMsg(5).size_bits_in(2), 2);
        assert_eq!(NodeIdMsg(5).size_bits_in(1024), 11);
    }
}
