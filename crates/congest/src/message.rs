//! Message size accounting for the CONGEST bandwidth limit.

/// Bits needed to address one of `n` entities (nodes, parts, edges): the
/// `⌈log₂(n+1)⌉` of the CONGEST model's `O(log n)`-bit id assumption. At
/// least 1 even for degenerate networks.
///
/// ```
/// use lcs_congest::id_bits;
/// assert_eq!(id_bits(1), 1);
/// assert_eq!(id_bits(64), 7);
/// assert_eq!(id_bits(1 << 20), 21);
/// ```
pub fn id_bits(n: usize) -> usize {
    let n = n.max(1) as u64;
    (u64::BITS - n.leading_zeros()) as usize
}

/// Types that can report their wire size in bits.
///
/// The simulator checks every sent message against the per-round bandwidth
/// (`O(log n)` bits by default) and bills [`RunMetrics::bits`] accordingly.
/// Implementations should account for what a reasonable binary encoding
/// would use — exact bit-packing is not required, but sizes must scale
/// correctly: a message carrying two node ids must report roughly
/// `2·log n`, not a constant.
///
/// Sizing comes in two flavors:
///
/// * [`size_bits`](MessageSize::size_bits) — the network-size-independent
///   estimate, used when `n` is unknown (raw payloads such as `u64`
///   aggregates are billed at their full width).
/// * [`size_bits_in`](MessageSize::size_bits_in) — the `n`-aware size the
///   **simulator actually bills**: id payloads (node / part / fragment ids)
///   should report [`id_bits`]`(n)` here so bits-metrics scale as
///   `O(log n)` like the model assumes. The default forwards to
///   `size_bits`, which is correct for value payloads.
///
/// For protocols whose whole message is one bare id, use the ready-made
/// [`NodeIdMsg`] wrapper instead of `u32` (which bills a fixed 32 bits
/// regardless of `n`).
///
/// [`RunMetrics::bits`]: crate::RunMetrics::bits
pub trait MessageSize {
    /// Size of this message in bits, when the network size is unknown.
    fn size_bits(&self) -> usize;

    /// Size of this message in bits in an `n`-node network. Id payloads
    /// scale as [`id_bits`]`(n)`; value payloads keep their fixed width.
    fn size_bits_in(&self, n: usize) -> usize {
        let _ = n;
        self.size_bits()
    }

    /// The *marginal* cost in bits of appending this message to a
    /// [`PackedMsg`] batch whose previous element is `prev` — the
    /// multi-value-message compression hook of [`SimConfig::message_packing`].
    ///
    /// The default is the full [`size_bits_in`](MessageSize::size_bits_in)
    /// (no shared framing). Enum message types whose variants carry a
    /// discriminant tag should drop the tag when `prev` has the same
    /// discriminant: a run of same-variant values is encoded as one tag
    /// followed by the fixed-width payloads, which is exactly how k values
    /// of `O(log n / k)` bits ride one `O(log n)`-bit CONGEST message.
    ///
    /// Implementations must never report more than `size_bits_in` here —
    /// packing may only compress, or the batch billing of [`PackedMsg`]
    /// would exceed the sum of its parts.
    ///
    /// [`SimConfig::message_packing`]: crate::SimConfig::message_packing
    fn size_bits_packed_in(&self, prev: &Self, n: usize) -> usize {
        let _ = prev;
        self.size_bits_in(n)
    }
}

/// The wire envelope of the engine: either a single protocol message (the
/// unpacked fast path, billed exactly like the raw message) or a coalesced
/// batch of values that one directed edge carries in one round.
///
/// With [`SimConfig::message_packing`]` = k > 1` the engine coalesces up to
/// `k` *consecutive* same-port, same-priority sends of one node-round into
/// one `Batch`, greedily while the batch stays within the per-message
/// bandwidth budget. A batch counts as **one** CONGEST message (one
/// `messages` tick, one queue slot, one delivery round) and
/// [`size_bits_in`](MessageSize::size_bits_in) bills its true packed width:
/// the first value at full size plus each later value at its
/// [`size_bits_packed_in`](MessageSize::size_bits_packed_in) marginal cost.
///
/// Receivers never see this type — the shard unpacks a batch into
/// individual [`Incoming`] entries (same port, original send order), so
/// protocol results are identical at every packing level.
///
/// [`SimConfig::message_packing`]: crate::SimConfig::message_packing
/// [`Incoming`]: crate::Incoming
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PackedMsg<M> {
    /// A single unpacked value; the wire format (and exact bit cost) of a
    /// `message_packing = 1` send.
    One(M),
    /// Two or more values coalesced for one edge-round. Invariant
    /// (maintained by the engine's packer): `len >= 2`, all values were
    /// issued consecutively to one port with one priority, and the packed
    /// width fits the bandwidth budget.
    Batch(Vec<M>),
}

impl<M> PackedMsg<M> {
    /// Number of protocol-level values carried.
    pub fn len(&self) -> usize {
        match self {
            PackedMsg::One(_) => 1,
            PackedMsg::Batch(vs) => vs.len(),
        }
    }

    /// Whether the envelope is empty (never true for engine-built
    /// envelopes; present for completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The carried values, in issue order.
    pub fn iter(&self) -> std::slice::Iter<'_, M> {
        match self {
            PackedMsg::One(m) => std::slice::from_ref(m).iter(),
            PackedMsg::Batch(vs) => vs.iter(),
        }
    }

    /// Unpacks into the carried values, applying `f` to each in issue
    /// order — the receiver-side delivery loop.
    pub fn for_each(self, mut f: impl FnMut(M)) {
        match self {
            PackedMsg::One(m) => f(m),
            PackedMsg::Batch(vs) => vs.into_iter().for_each(&mut f),
        }
    }
}

impl<M: MessageSize> MessageSize for PackedMsg<M> {
    fn size_bits(&self) -> usize {
        match self {
            PackedMsg::One(m) => m.size_bits(),
            PackedMsg::Batch(vs) => vs.iter().map(MessageSize::size_bits).sum(),
        }
    }

    /// The true packed width: first value at full size, every later value
    /// at its marginal [`size_bits_packed_in`](MessageSize::size_bits_packed_in)
    /// cost (shared framing billed once per run).
    fn size_bits_in(&self, n: usize) -> usize {
        match self {
            PackedMsg::One(m) => m.size_bits_in(n),
            PackedMsg::Batch(vs) => {
                let mut bits = 0;
                let mut prev: Option<&M> = None;
                for m in vs {
                    bits += match prev {
                        None => m.size_bits_in(n),
                        Some(p) => m.size_bits_packed_in(p, n),
                    };
                    prev = Some(m);
                }
                bits
            }
        }
    }
}

/// Envelope types the calendar queue can coalesce at *delivery* time.
///
/// Send-side packing ([`SimConfig::message_packing`]) only merges sends
/// issued consecutively within one node-round; a trickle sender that emits
/// one value per round never benefits. Delivery-time merging closes that
/// gap: when a queued-mode token fires, the backend absorbs follow-up
/// envelopes of the same (port, priority) — in FIFO order — into the firing
/// envelope, as long as the combined value count stays within the packing
/// factor and the combined width within the bandwidth budget.
///
/// The defaults make a type unmergeable (`merge_cost_in` = `usize::MAX`
/// never fits any budget), so only [`PackedMsg`] — the engine's actual wire
/// envelope — opts in.
///
/// [`SimConfig::message_packing`]: crate::SimConfig::message_packing
pub(crate) trait Mergeable {
    /// Number of protocol-level values carried.
    fn values(&self) -> usize {
        1
    }

    /// Bits added to `self`'s packed width by absorbing `other` behind it,
    /// in an `n`-node network. `usize::MAX` (the default) means "cannot
    /// merge".
    fn merge_cost_in(&self, other: &Self, n: usize) -> usize {
        let _ = (other, n);
        usize::MAX
    }

    /// Appends `other`'s values behind `self`'s. Only called after
    /// [`merge_cost_in`](Mergeable::merge_cost_in) returned a finite cost.
    fn absorb(&mut self, other: Self)
    where
        Self: Sized,
    {
        let _ = other;
        unreachable!("absorb called on an unmergeable message type");
    }
}

impl<M: MessageSize> Mergeable for PackedMsg<M> {
    fn values(&self) -> usize {
        self.len()
    }

    fn merge_cost_in(&self, other: &Self, n: usize) -> usize {
        // Marginal cost of other's values appended behind self's last
        // value — the same chaining rule PackedMsg::size_bits_in uses, so
        // billing an absorbed batch equals billing it as one send-side
        // batch.
        let mut prev = match self {
            PackedMsg::One(m) => m,
            PackedMsg::Batch(vs) => match vs.last() {
                Some(m) => m,
                None => return other.size_bits_in(n),
            },
        };
        let mut cost = 0usize;
        for m in other.iter() {
            cost = cost.saturating_add(m.size_bits_packed_in(prev, n));
            prev = m;
        }
        cost
    }

    fn absorb(&mut self, other: Self) {
        let mut vs = match std::mem::replace(self, PackedMsg::Batch(Vec::new())) {
            PackedMsg::One(m) => vec![m],
            PackedMsg::Batch(vs) => vs,
        };
        match other {
            PackedMsg::One(m) => vs.push(m),
            PackedMsg::Batch(os) => vs.extend(os),
        }
        *self = PackedMsg::Batch(vs);
    }
}

/// A message that is exactly one id (node, part, fragment, …), billed at
/// [`id_bits`]`(n)` by the simulator — the `O(log n)`-scaling counterpart
/// of sending a raw `u32` (which always bills 32 bits).
///
/// ```
/// use lcs_congest::{id_bits, MessageSize, NodeIdMsg};
/// let m = NodeIdMsg(17);
/// assert_eq!(m.size_bits(), 32);            // n unknown: full width
/// assert_eq!(m.size_bits_in(100), id_bits(100)); // n known: 7 bits
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct NodeIdMsg(pub u32);

impl MessageSize for NodeIdMsg {
    fn size_bits(&self) -> usize {
        32
    }

    fn size_bits_in(&self, n: usize) -> usize {
        id_bits(n)
    }
}

impl MessageSize for () {
    fn size_bits(&self) -> usize {
        1
    }
}

impl MessageSize for bool {
    fn size_bits(&self) -> usize {
        1
    }
}

/// Raw 32-bit payload: billed at full width regardless of `n`. For id
/// payloads use [`NodeIdMsg`] (or an `n`-aware [`MessageSize::size_bits_in`]
/// impl) so the bits-metric scales as `O(log n)`.
impl MessageSize for u32 {
    fn size_bits(&self) -> usize {
        32
    }
}

/// Raw 64-bit payload (aggregate values, hashes): billed at full width.
impl MessageSize for u64 {
    fn size_bits(&self) -> usize {
        64
    }
}

impl<A: MessageSize, B: MessageSize> MessageSize for (A, B) {
    fn size_bits(&self) -> usize {
        self.0.size_bits() + self.1.size_bits()
    }

    fn size_bits_in(&self, n: usize) -> usize {
        self.0.size_bits_in(n) + self.1.size_bits_in(n)
    }
}

impl<T: MessageSize> MessageSize for Option<T> {
    fn size_bits(&self) -> usize {
        1 + self.as_ref().map_or(0, MessageSize::size_bits)
    }

    fn size_bits_in(&self, n: usize) -> usize {
        1 + self.as_ref().map_or(0, |m| m.size_bits_in(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(().size_bits(), 1);
        assert_eq!(true.size_bits(), 1);
        assert_eq!(7u32.size_bits(), 32);
        assert_eq!(7u64.size_bits(), 64);
        // Raw payloads are n-independent.
        assert_eq!(7u32.size_bits_in(1000), 32);
        assert_eq!(7u64.size_bits_in(1000), 64);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!((1u32, 2u32).size_bits(), 64);
        assert_eq!(Some(1u32).size_bits(), 33);
        assert_eq!(None::<u32>.size_bits(), 1);
        // Composites forward the n-aware sizing to their components.
        assert_eq!((NodeIdMsg(1), 2u64).size_bits_in(64), 7 + 64);
        assert_eq!(Some(NodeIdMsg(1)).size_bits_in(64), 1 + 7);
    }

    #[test]
    fn id_bits_is_ceil_log2() {
        assert_eq!(id_bits(0), 1);
        assert_eq!(id_bits(1), 1);
        assert_eq!(id_bits(2), 2);
        assert_eq!(id_bits(3), 2);
        assert_eq!(id_bits(4), 3);
        assert_eq!(id_bits(255), 8);
        assert_eq!(id_bits(256), 9);
        assert_eq!(id_bits(100_000), 17);
    }

    #[test]
    fn node_id_msg_scales_with_n() {
        assert_eq!(NodeIdMsg(5).size_bits(), 32);
        assert_eq!(NodeIdMsg(5).size_bits_in(2), 2);
        assert_eq!(NodeIdMsg(5).size_bits_in(1024), 11);
    }

    /// A test message with a 3-bit tag whose marginal cost drops the tag
    /// for same-variant runs — the shape real protocol enums use.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum Tagged {
        Id(u32),
        Val(u64),
    }

    impl MessageSize for Tagged {
        fn size_bits(&self) -> usize {
            match self {
                Tagged::Id(_) => 3 + 32,
                Tagged::Val(_) => 3 + 64,
            }
        }

        fn size_bits_in(&self, n: usize) -> usize {
            match self {
                Tagged::Id(_) => 3 + id_bits(n),
                Tagged::Val(_) => 3 + 64,
            }
        }

        fn size_bits_packed_in(&self, prev: &Self, n: usize) -> usize {
            if std::mem::discriminant(self) == std::mem::discriminant(prev) {
                self.size_bits_in(n) - 3
            } else {
                self.size_bits_in(n)
            }
        }
    }

    #[test]
    fn packed_one_bills_exactly_the_inner_message() {
        let one = PackedMsg::One(NodeIdMsg(9));
        assert_eq!(one.size_bits(), NodeIdMsg(9).size_bits());
        assert_eq!(one.size_bits_in(100), NodeIdMsg(9).size_bits_in(100));
        assert_eq!(one.len(), 1);
        assert!(!one.is_empty());
    }

    #[test]
    fn packed_batch_bills_marginal_costs_after_the_first() {
        // Homogeneous run: one 3-bit tag + three id payloads.
        let b = PackedMsg::Batch(vec![Tagged::Id(1), Tagged::Id(2), Tagged::Id(3)]);
        assert_eq!(b.size_bits_in(64), (3 + 7) + 7 + 7);
        // A variant switch restarts the tag.
        let mixed = PackedMsg::Batch(vec![Tagged::Id(1), Tagged::Id(2), Tagged::Val(9)]);
        assert_eq!(mixed.size_bits_in(64), (3 + 7) + 7 + (3 + 64));
        // Default marginal (no compression): batch = sum of parts.
        let plain = PackedMsg::Batch(vec![7u32, 8, 9]);
        assert_eq!(plain.size_bits_in(1000), 96);
        assert_eq!(plain.size_bits(), 96);
    }

    #[test]
    fn merge_cost_matches_send_side_batch_billing() {
        // Absorbing envelopes one by one must bill exactly what one big
        // send-side batch of the same values would.
        let mut env = PackedMsg::One(Tagged::Id(1));
        let mut width = env.size_bits_in(64);
        for follow in [
            PackedMsg::One(Tagged::Id(2)),
            PackedMsg::Batch(vec![Tagged::Id(3), Tagged::Val(9)]),
        ] {
            width += env.merge_cost_in(&follow, 64);
            env.absorb(follow);
        }
        let reference = PackedMsg::Batch(vec![
            Tagged::Id(1),
            Tagged::Id(2),
            Tagged::Id(3),
            Tagged::Val(9),
        ]);
        assert_eq!(env, reference);
        assert_eq!(width, reference.size_bits_in(64));
        assert_eq!(env.values(), 4);
    }

    #[test]
    fn packed_unpacking_preserves_issue_order() {
        let b = PackedMsg::Batch(vec![10u32, 20, 30]);
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![10, 20, 30]);
        let mut got = Vec::new();
        b.for_each(|m| got.push(m));
        assert_eq!(got, vec![10, 20, 30]);
    }
}
