//! Message size accounting for the CONGEST bandwidth limit.

/// Types that can report their wire size in bits.
///
/// The simulator checks every sent message against the per-round bandwidth
/// (`O(log n)` bits by default). Implementations should account for what a
/// reasonable binary encoding would use — exact bit-packing is not required,
/// but sizes must scale correctly (a message carrying two node ids must
/// report roughly `2·log n`, not a constant).
pub trait MessageSize {
    /// Size of this message in bits.
    fn size_bits(&self) -> usize;
}

impl MessageSize for () {
    fn size_bits(&self) -> usize {
        1
    }
}

impl MessageSize for bool {
    fn size_bits(&self) -> usize {
        1
    }
}

impl MessageSize for u32 {
    fn size_bits(&self) -> usize {
        32
    }
}

impl MessageSize for u64 {
    fn size_bits(&self) -> usize {
        64
    }
}

impl<A: MessageSize, B: MessageSize> MessageSize for (A, B) {
    fn size_bits(&self) -> usize {
        self.0.size_bits() + self.1.size_bits()
    }
}

impl<T: MessageSize> MessageSize for Option<T> {
    fn size_bits(&self) -> usize {
        1 + self.as_ref().map_or(0, MessageSize::size_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(().size_bits(), 1);
        assert_eq!(true.size_bits(), 1);
        assert_eq!(7u32.size_bits(), 32);
        assert_eq!(7u64.size_bits(), 64);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!((1u32, 2u32).size_bits(), 64);
        assert_eq!(Some(1u32).size_bits(), 33);
        assert_eq!(None::<u32>.size_bits(), 1);
    }
}
