//! The round-driven simulation engine.
//!
//! # Delivery model
//!
//! Messages are addressed by *directed edge id* — the graph's CSR slot
//! index `first_out[v] + port`, reused verbatim so the engine needs no
//! per-run index building beyond one O(n + m) reverse-port table.
//!
//! - **[`SimMode::Strict`]** (one message per directed edge per round)
//!   needs no queues at all: sends append `(dir, msg)` to a flat arena
//!   `Vec`, and the next round drains that arena into the receivers'
//!   inboxes in one linear pass. Two arenas alternate as send/deliver
//!   buffers, so steady state allocates nothing.
//! - **[`SimMode::Queued`]** keeps each directed edge's
//!   `(priority, seq)`-minimum message in a flat slot array and spills to a
//!   per-edge binary heap only when a second message queues; the round
//!   drains in one linear pass over the set of *active* (non-empty) edges —
//!   O(log q) worst case per delivery instead of the O(q) scan-and-shift of
//!   a scanned `VecDeque`, and no heap traffic at all in the common
//!   single-message case.

use crate::{MessageSize, RunMetrics};
use lcs_graph::{EdgeId, Graph, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BinaryHeap;

/// How the engine treats sends beyond one message per edge per round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SimMode {
    /// Pure CONGEST: a second send over the same directed edge in one round
    /// is a protocol bug and panics.
    #[default]
    Strict,
    /// Sends are queued per directed edge and drained one per round in
    /// priority order (ties: FIFO). This models running several protocol
    /// instances side by side with a scheduler — the random-delay technique
    /// of [LMR94, Gha15] assigns each instance a random priority.
    Queued,
}

/// Simulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Send discipline.
    pub mode: SimMode,
    /// Per-message size limit in bits; `None` = `4·⌈log₂(n+1)⌉ + 128`, the
    /// usual `O(log n)` CONGEST budget with constant headroom for a few ids
    /// plus one aggregate value per message.
    pub bandwidth_bits: Option<usize>,
    /// Hard cap on simulated rounds (guards against non-terminating
    /// protocols). A run cut short by the cap reports
    /// [`RunMetrics::truncated`]` = true`.
    pub max_rounds: u64,
    /// Seed for the per-node RNG streams.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mode: SimMode::Strict,
            bandwidth_bits: None,
            max_rounds: 1_000_000,
            seed: 0xc0ffee,
        }
    }
}

/// A message delivered to a node this round.
///
/// The order of messages within one round's inbox is deterministic for a
/// fixed engine version but otherwise **unspecified** (it changed in the
/// batched-delivery rewrite); protocols must treat it as adversarial, as
/// the CONGEST model demands, and key any tie-breaking on `port` or
/// message content instead.
#[derive(Clone, Debug)]
pub struct Incoming<M> {
    /// The local port (index into the node's neighbor list) it arrived on.
    pub port: usize,
    /// The payload.
    pub msg: M,
}

/// The per-node protocol logic.
///
/// Programs are event-driven: [`on_round`](NodeProgram::on_round) fires only
/// when the node received messages or previously called
/// [`Ctx::wake_next_round`]. The run ends when every program reports
/// [`is_done`](NodeProgram::is_done), no messages are in flight, and no
/// wake-ups are pending.
pub trait NodeProgram {
    /// The message type exchanged by this protocol.
    type Msg: Clone + MessageSize;

    /// Called once before the first round; typically initiators send here.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called each round the node is active, with the messages delivered
    /// this round.
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>, inbox: &[Incoming<Self::Msg>]);

    /// Local termination flag.
    fn is_done(&self) -> bool;
}

/// The node's view of the network during a callback.
pub struct Ctx<'a, M> {
    node: NodeId,
    round: u64,
    /// The node's CSR neighbor slice (sorted by id); `heads[port]` is the
    /// node on `port`.
    heads: &'a [NodeId],
    /// Incident edge ids, parallel to `heads`.
    edges: &'a [EdgeId],
    outbox: &'a mut Vec<(usize, M, u64)>,
    rng: &'a mut SmallRng,
    wake: &'a mut bool,
}

impl<M> Ctx<'_, M> {
    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The current round (1-based; 0 during `on_start`).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of incident edges.
    pub fn degree(&self) -> usize {
        self.heads.len()
    }

    /// The neighbor id on `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree()`.
    pub fn neighbor(&self, port: usize) -> NodeId {
        self.heads[port]
    }

    /// The edge id on `port` (useful for reporting; protocols should not
    /// treat it as topology knowledge beyond the incident edge).
    pub fn edge(&self, port: usize) -> EdgeId {
        self.edges[port]
    }

    /// The port leading to neighbor `v`, if adjacent.
    pub fn port_to(&self, v: NodeId) -> Option<usize> {
        self.heads.binary_search(&v).ok()
    }

    /// Sends `msg` over `port` with default priority 0.
    pub fn send(&mut self, port: usize, msg: M) {
        self.send_with_priority(port, msg, 0);
    }

    /// Sends `msg` over `port` with an explicit scheduling priority (lower
    /// values drain first in queued mode; ignored in strict mode).
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn send_with_priority(&mut self, port: usize, msg: M, priority: u64) {
        assert!(port < self.heads.len(), "send on invalid port {port}");
        self.outbox.push((port, msg, priority));
    }

    /// Sends a copy of `msg` to every neighbor.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for port in 0..self.heads.len() {
            let m = msg.clone();
            self.send(port, m);
        }
    }

    /// This node's deterministic RNG stream.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Requests an `on_round` callback next round even without incoming
    /// messages (for streaming senders and timeout logic).
    pub fn wake_next_round(&mut self) {
        *self.wake = true;
    }
}

/// Result of a run: final program states plus metrics.
#[derive(Debug)]
pub struct RunOutcome<P> {
    /// One program per node, in node-id order.
    pub programs: Vec<P>,
    /// Exact execution counts.
    pub metrics: RunMetrics,
}

/// The CONGEST simulator for a fixed graph.
#[derive(Debug)]
pub struct Simulator<'g> {
    graph: &'g Graph,
    config: SimConfig,
}

/// One queued message: heap-ordered by `(priority, seq)` with the ordering
/// reversed so the std max-heap pops the minimum. `seq` is unique per run,
/// giving a total order (priority ties drain FIFO) without inspecting `msg`.
#[derive(Debug)]
struct HeapMsg<M> {
    priority: u64,
    seq: u64,
    msg: M,
}

impl<M> PartialEq for HeapMsg<M> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl<M> Eq for HeapMsg<M> {}

impl<M> PartialOrd for HeapMsg<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for HeapMsg<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.priority, other.seq).cmp(&(self.priority, self.seq))
    }
}

/// Per-run delivery state, shared by the `on_start` and round loops.
///
/// Queued mode stores each directed edge's `(priority, seq)`-minimum
/// message in a flat slot array (`slots[dir]`) and only spills to a
/// per-edge overflow heap when a second message is queued. Almost every
/// dir holds at most one message at a time (one delivery per round drains
/// it), so the common case never touches a heap and never allocates.
struct Delivery<M> {
    mode: SimMode,
    /// Strict mode: the flat send arena — messages sent this round, drained
    /// into inboxes next round in one linear pass.
    pending_next: Vec<(u32, M)>,
    /// Strict mode: round stamp per directed edge for double-send detection.
    strict_sent: Vec<u64>,
    /// Queued mode: the minimum queued message per directed edge.
    slots: Vec<Option<HeapMsg<M>>>,
    /// Queued mode: messages beyond the first, per directed edge. Empty
    /// heaps never allocate.
    overflow: Vec<BinaryHeap<HeapMsg<M>>>,
    /// Queued mode: dirs with a filled slot, with a position map for O(1)
    /// insert/remove.
    active: Vec<u32>,
    active_pos: Vec<u32>,
    seq: u64,
}

impl<M: MessageSize> Delivery<M> {
    fn new(mode: SimMode, num_dirs: usize) -> Self {
        let queued = mode == SimMode::Queued;
        Delivery {
            mode,
            pending_next: Vec::new(),
            strict_sent: if queued {
                Vec::new()
            } else {
                vec![0; num_dirs]
            },
            slots: if queued {
                (0..num_dirs).map(|_| None).collect()
            } else {
                Vec::new()
            },
            overflow: if queued {
                (0..num_dirs).map(|_| BinaryHeap::new()).collect()
            } else {
                Vec::new()
            },
            active: Vec::new(),
            active_pos: if queued {
                vec![u32::MAX; num_dirs]
            } else {
                Vec::new()
            },
            seq: 0,
        }
    }

    /// Whether any message is still in flight.
    fn inflight(&self) -> bool {
        match self.mode {
            SimMode::Strict => !self.pending_next.is_empty(),
            SimMode::Queued => !self.active.is_empty(),
        }
    }

    /// Queued mode: this dir's queue length (slot + overflow).
    fn queue_len(&self, dir: usize) -> u64 {
        u64::from(self.slots[dir].is_some()) + self.overflow[dir].len() as u64
    }

    /// Queued mode: removes and returns the `(priority, seq)`-minimum
    /// message of `dir`, refilling the slot from the overflow heap.
    fn pop_min(&mut self, dir: usize) -> HeapMsg<M> {
        let item = self.slots[dir].take().expect("active dir has a message");
        self.slots[dir] = self.overflow[dir].pop();
        item
    }

    /// Validates and enqueues everything `sender` put in its outbox.
    fn flush_outbox(
        &mut self,
        g: &Graph,
        sender: usize,
        outbox: &mut Vec<(usize, M, u64)>,
        round: u64,
        bandwidth: usize,
        metrics: &mut RunMetrics,
    ) {
        let base = g.first_out()[sender] as usize;
        for (port, msg, priority) in outbox.drain(..) {
            debug_assert!(port < g.degree(NodeId(sender as u32)));
            let bits = msg.size_bits();
            assert!(
                bits <= bandwidth,
                "message of {bits} bits exceeds the {bandwidth}-bit CONGEST bandwidth"
            );
            let dir = base + port;
            metrics.bits += bits as u64;
            self.seq += 1;
            match self.mode {
                SimMode::Strict => {
                    assert!(
                        self.strict_sent[dir] != round + 1,
                        "strict mode: node {sender} sent twice on port {port} in round {round}"
                    );
                    self.strict_sent[dir] = round + 1;
                    self.pending_next.push((dir as u32, msg));
                }
                SimMode::Queued => {
                    let item = HeapMsg {
                        priority,
                        seq: self.seq,
                        msg,
                    };
                    match &mut self.slots[dir] {
                        empty @ None => {
                            *empty = Some(item);
                            self.active_pos[dir] = self.active.len() as u32;
                            self.active.push(dir as u32);
                        }
                        // HeapMsg's Ord is reversed (max-heap pops the
                        // minimum), so `item > *held` means item's
                        // (priority, seq) key is SMALLER: it takes the slot.
                        Some(held) if item > *held => {
                            let spilled = std::mem::replace(held, item);
                            self.overflow[dir].push(spilled);
                        }
                        Some(_) => self.overflow[dir].push(item),
                    }
                }
            }
        }
    }
}

impl<'g> Simulator<'g> {
    /// Creates a simulator over `graph`.
    pub fn new(graph: &'g Graph, config: SimConfig) -> Self {
        Simulator { graph, config }
    }

    /// The effective per-message bandwidth in bits.
    pub fn bandwidth_bits(&self) -> usize {
        self.config.bandwidth_bits.unwrap_or_else(|| {
            let n = self.graph.num_nodes().max(1) as f64;
            4 * (n + 1.0).log2().ceil() as usize + 128
        })
    }

    /// Runs one program per node (constructed by `init`) to quiescence or
    /// the round cap.
    ///
    /// # Panics
    ///
    /// Panics if a program violates the CONGEST constraints: oversized
    /// messages, or (in strict mode) two sends over one directed edge in one
    /// round.
    pub fn run<P, F>(&self, mut init: F) -> RunOutcome<P>
    where
        P: NodeProgram,
        F: FnMut(NodeId, &Graph) -> P,
    {
        let g = self.graph;
        let n = g.num_nodes();
        let bandwidth = self.bandwidth_bits();
        // The graph's CSR slot index IS the directed edge id: dir =
        // first_out[v] + port.
        let first_out = g.first_out();
        let num_dirs = *first_out.last().unwrap_or(&0) as usize;

        let mut programs: Vec<P> = g.nodes().map(|v| init(v, g)).collect();
        let mut rngs: Vec<SmallRng> = g
            .nodes()
            .map(|v| SmallRng::seed_from_u64(splitmix(self.config.seed, v.0)))
            .collect();

        // dir -> (receiver node, receiver's port back to the sender), built
        // in O(n + m) by pairing each undirected edge's two CSR slots.
        // A slot's side is 1 iff its tail is the edge's larger endpoint,
        // derivable from the head entry alone (endpoints are canonical
        // `u < v`, so tail > head ⟺ tail is the larger endpoint).
        let mut edge_dirs: Vec<[u32; 2]> = vec![[0; 2]; g.num_edges()];
        for v in g.nodes() {
            let base = first_out[v.index()];
            let heads = g.heads(v);
            for (port, &e) in g.edge_ids(v).iter().enumerate() {
                let side = usize::from(v > heads[port]);
                edge_dirs[e.index()][side] = base + port as u32;
            }
        }
        let mut dir_recv: Vec<(u32, u32)> = vec![(0, 0); num_dirs];
        for v in g.nodes() {
            let base = first_out[v.index()];
            let heads = g.heads(v);
            for (port, &e) in g.edge_ids(v).iter().enumerate() {
                let side = usize::from(v > heads[port]);
                let back = edge_dirs[e.index()][1 - side];
                let recv = heads[port];
                dir_recv[(base + port as u32) as usize] = (recv.0, back - first_out[recv.index()]);
            }
        }

        let mut delivery: Delivery<P::Msg> = Delivery::new(self.config.mode, num_dirs);
        let mut metrics = RunMetrics::default();
        let mut outbox: Vec<(usize, P::Msg, u64)> = Vec::new();
        let mut wake_flag = vec![false; n];
        let mut wake_list: Vec<usize> = Vec::new();

        // Round 0: on_start.
        for v in 0..n {
            let mut wake = false;
            let mut ctx = Ctx {
                node: NodeId(v as u32),
                round: 0,
                heads: g.heads(NodeId(v as u32)),
                edges: g.edge_ids(NodeId(v as u32)),
                outbox: &mut outbox,
                rng: &mut rngs[v],
                wake: &mut wake,
            };
            programs[v].on_start(&mut ctx);
            if wake && !wake_flag[v] {
                wake_flag[v] = true;
                wake_list.push(v);
            }
            delivery.flush_outbox(g, v, &mut outbox, 0, bandwidth, &mut metrics);
        }

        // Inboxes are reused across rounds (cleared, never dropped), so the
        // steady-state round loop allocates nothing.
        let mut inboxes: Vec<Vec<Incoming<P::Msg>>> = (0..n).map(|_| Vec::new()).collect();
        let mut receivers: Vec<usize> = Vec::new();
        // Strict mode's second arena: the buffer being delivered this round.
        let mut pending_cur: Vec<(u32, P::Msg)> = Vec::new();

        loop {
            // Quiescence check.
            if !delivery.inflight() && wake_list.is_empty() {
                metrics.terminated = programs.iter().all(|p| p.is_done());
                break;
            }
            if metrics.rounds >= self.config.max_rounds {
                metrics.truncated = true;
                break;
            }
            metrics.rounds += 1;
            let round = metrics.rounds;

            receivers.clear();
            match self.config.mode {
                SimMode::Strict => {
                    // One linear pass over the send arena: every pending
                    // message is delivered (strict mode admits at most one
                    // per directed edge), then the arenas swap roles.
                    std::mem::swap(&mut pending_cur, &mut delivery.pending_next);
                    if !pending_cur.is_empty() {
                        metrics.max_queue = metrics.max_queue.max(1);
                    }
                    for (dir, msg) in pending_cur.drain(..) {
                        let (recv, recv_port) = dir_recv[dir as usize];
                        let recv = recv as usize;
                        if inboxes[recv].is_empty() {
                            receivers.push(recv);
                        }
                        inboxes[recv].push(Incoming {
                            port: recv_port as usize,
                            msg,
                        });
                        metrics.messages += 1;
                    }
                }
                SimMode::Queued => {
                    // One linear pass over the active dirs: pop the
                    // (priority, seq)-minimum of each non-empty queue.
                    let mut i = 0;
                    while i < delivery.active.len() {
                        let dir = delivery.active[i] as usize;
                        metrics.max_queue = metrics.max_queue.max(delivery.queue_len(dir));
                        let item = delivery.pop_min(dir);
                        let (recv, recv_port) = dir_recv[dir];
                        let recv = recv as usize;
                        if inboxes[recv].is_empty() {
                            receivers.push(recv);
                        }
                        inboxes[recv].push(Incoming {
                            port: recv_port as usize,
                            msg: item.msg,
                        });
                        metrics.messages += 1;
                        if delivery.slots[dir].is_none() {
                            // Swap-remove from the active set.
                            delivery.active_pos[dir] = u32::MAX;
                            delivery.active.swap_remove(i);
                            if i < delivery.active.len() {
                                let moved = delivery.active[i] as usize;
                                delivery.active_pos[moved] = i as u32;
                            }
                            // Do not advance i: the swapped-in entry needs
                            // service.
                        } else {
                            i += 1;
                        }
                    }
                }
            }

            // Wake-ups requested last round join the receivers.
            let mut to_run = std::mem::take(&mut receivers);
            for v in wake_list.drain(..) {
                wake_flag[v] = false;
                if inboxes[v].is_empty() {
                    to_run.push(v);
                }
            }
            to_run.sort_unstable(); // deterministic execution order

            for v in to_run.drain(..) {
                let mut wake = false;
                let mut ctx = Ctx {
                    node: NodeId(v as u32),
                    round,
                    heads: g.heads(NodeId(v as u32)),
                    edges: g.edge_ids(NodeId(v as u32)),
                    outbox: &mut outbox,
                    rng: &mut rngs[v],
                    wake: &mut wake,
                };
                programs[v].on_round(&mut ctx, &inboxes[v]);
                inboxes[v].clear();
                if wake && !wake_flag[v] {
                    wake_flag[v] = true;
                    wake_list.push(v);
                }
                delivery.flush_outbox(g, v, &mut outbox, round, bandwidth, &mut metrics);
            }
            receivers = to_run;
        }

        RunOutcome { programs, metrics }
    }
}

/// SplitMix64-style mixer: derives a well-mixed 64-bit value from a seed
/// and a 32-bit salt. Used for the per-node RNG streams and exported for
/// protocols needing a shared deterministic hash (e.g. the sketch detection
/// of the distributed shortcut construction).
pub fn splitmix(seed: u64, salt: u32) -> u64 {
    let mut z = seed ^ (u64::from(salt).wrapping_mul(0x9e3779b97f4a7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::gen;

    /// Floods the maximum node id; every node is done once it stops hearing
    /// larger values.
    struct MaxFlood {
        best: u32,
    }

    impl NodeProgram for MaxFlood {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            let best = self.best;
            ctx.broadcast(best);
        }

        fn on_round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[Incoming<u32>]) {
            let mut improved = false;
            for m in inbox {
                if m.msg > self.best {
                    self.best = m.msg;
                    improved = true;
                }
            }
            if improved {
                let best = self.best;
                ctx.broadcast(best);
            }
        }

        fn is_done(&self) -> bool {
            true // quiescence-detected
        }
    }

    #[test]
    fn max_flood_converges_in_diameter_rounds() {
        let g = gen::path(10);
        let sim = Simulator::new(&g, SimConfig::default());
        let run = sim.run(|v, _| MaxFlood { best: v.0 });
        assert!(run.metrics.terminated);
        assert!(run.programs.iter().all(|p| p.best == 9));
        // Node 9 is at one end: the value needs 9 hops, +1 quiescence round.
        assert!(run.metrics.rounds >= 9 && run.metrics.rounds <= 11);
    }

    #[test]
    fn strict_mode_rejects_double_send() {
        struct DoubleSend;
        impl NodeProgram for DoubleSend {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                if ctx.node() == NodeId(0) {
                    ctx.send(0, 1);
                    ctx.send(0, 2);
                }
            }
            fn on_round(&mut self, _: &mut Ctx<'_, u32>, _: &[Incoming<u32>]) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = gen::path(2);
        let sim = Simulator::new(&g, SimConfig::default());
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run(|_, _| DoubleSend)));
        assert!(result.is_err());
    }

    #[test]
    fn queued_mode_drains_by_priority() {
        /// Node 0 enqueues three messages to node 1 in one round with
        /// descending priority values; node 1 records arrival order.
        struct Sender;
        impl NodeProgram for Sender {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                if ctx.node() == NodeId(0) {
                    ctx.send_with_priority(0, 30, 3);
                    ctx.send_with_priority(0, 10, 1);
                    ctx.send_with_priority(0, 20, 2);
                }
            }
            fn on_round(&mut self, _: &mut Ctx<'_, u32>, _: &[Incoming<u32>]) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        struct Recorder(Vec<u32>);
        enum Either {
            S(Sender),
            R(Recorder),
        }
        impl NodeProgram for Either {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                if let Either::S(s) = self {
                    s.on_start(ctx);
                }
            }
            fn on_round(&mut self, _: &mut Ctx<'_, u32>, inbox: &[Incoming<u32>]) {
                if let Either::R(r) = self {
                    r.0.extend(inbox.iter().map(|m| m.msg));
                }
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = gen::path(2);
        let sim = Simulator::new(
            &g,
            SimConfig {
                mode: SimMode::Queued,
                ..SimConfig::default()
            },
        );
        let run = sim.run(|v, _| {
            if v == NodeId(0) {
                Either::S(Sender)
            } else {
                Either::R(Recorder(Vec::new()))
            }
        });
        assert!(run.metrics.terminated);
        assert_eq!(run.metrics.rounds, 3); // one message per round
        assert_eq!(run.metrics.max_queue, 3);
        let Either::R(r) = &run.programs[1] else {
            panic!("node 1 is the recorder");
        };
        assert_eq!(r.0, vec![10, 20, 30]);
    }

    #[test]
    fn bandwidth_is_enforced() {
        struct BigMsg;
        #[derive(Clone)]
        struct Huge;
        impl MessageSize for Huge {
            fn size_bits(&self) -> usize {
                1 << 20
            }
        }
        impl NodeProgram for BigMsg {
            type Msg = Huge;
            fn on_start(&mut self, ctx: &mut Ctx<'_, Huge>) {
                if ctx.node() == NodeId(0) {
                    ctx.send(0, Huge);
                }
            }
            fn on_round(&mut self, _: &mut Ctx<'_, Huge>, _: &[Incoming<Huge>]) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = gen::path(2);
        let sim = Simulator::new(&g, SimConfig::default());
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run(|_, _| BigMsg)));
        assert!(result.is_err());
    }

    #[test]
    fn wake_next_round_ticks_without_messages() {
        struct Counter {
            ticks: u32,
        }
        impl NodeProgram for Counter {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                ctx.wake_next_round();
            }
            fn on_round(&mut self, ctx: &mut Ctx<'_, u32>, _: &[Incoming<u32>]) {
                self.ticks += 1;
                if self.ticks < 5 {
                    ctx.wake_next_round();
                }
            }
            fn is_done(&self) -> bool {
                self.ticks >= 5
            }
        }
        let g = gen::path(2);
        let sim = Simulator::new(&g, SimConfig::default());
        let run = sim.run(|_, _| Counter { ticks: 0 });
        assert!(run.metrics.terminated);
        assert_eq!(run.metrics.rounds, 5);
        assert!(run.programs.iter().all(|p| p.ticks == 5));
    }

    #[test]
    fn max_rounds_caps_runaway_protocols() {
        struct Forever;
        impl NodeProgram for Forever {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                ctx.wake_next_round();
            }
            fn on_round(&mut self, ctx: &mut Ctx<'_, u32>, _: &[Incoming<u32>]) {
                ctx.wake_next_round();
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = gen::path(2);
        let sim = Simulator::new(
            &g,
            SimConfig {
                max_rounds: 10,
                ..SimConfig::default()
            },
        );
        let run = sim.run(|_, _| Forever);
        assert!(!run.metrics.terminated);
        assert!(
            run.metrics.truncated,
            "hitting the cap with pending work must be observable"
        );
        assert_eq!(run.metrics.rounds, 10);
    }

    #[test]
    fn quiescent_runs_are_not_truncated() {
        let g = gen::path(10);
        let sim = Simulator::new(&g, SimConfig::default());
        let run = sim.run(|v, _| MaxFlood { best: v.0 });
        assert!(run.metrics.terminated);
        assert!(!run.metrics.truncated);
    }

    #[test]
    fn truncation_with_messages_in_flight_is_flagged() {
        // MaxFlood on a long path needs ~n rounds; cap it far below that.
        let g = gen::path(40);
        let sim = Simulator::new(
            &g,
            SimConfig {
                max_rounds: 5,
                ..SimConfig::default()
            },
        );
        let run = sim.run(|v, _| MaxFlood { best: v.0 });
        assert!(run.metrics.truncated);
        assert!(!run.metrics.terminated);
        assert_eq!(run.metrics.rounds, 5);
        // The flood cannot have finished.
        assert!(run.programs.iter().any(|p| p.best != 39));
    }

    #[test]
    fn determinism_across_runs() {
        let g = gen::grid(4, 4);
        let sim = Simulator::new(&g, SimConfig::default());
        let a = sim.run(|v, _| MaxFlood { best: v.0 });
        let b = sim.run(|v, _| MaxFlood { best: v.0 });
        assert_eq!(a.metrics, b.metrics);
    }
}
