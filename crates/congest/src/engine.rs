//! The round-driven simulation engine.

use crate::{MessageSize, RunMetrics};
use lcs_graph::{EdgeId, Graph, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// How the engine treats sends beyond one message per edge per round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SimMode {
    /// Pure CONGEST: a second send over the same directed edge in one round
    /// is a protocol bug and panics.
    #[default]
    Strict,
    /// Sends are queued per directed edge and drained one per round in
    /// priority order (ties: FIFO). This models running several protocol
    /// instances side by side with a scheduler — the random-delay technique
    /// of [LMR94, Gha15] assigns each instance a random priority.
    Queued,
}

/// Simulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Send discipline.
    pub mode: SimMode,
    /// Per-message size limit in bits; `None` = `4·⌈log₂(n+1)⌉ + 128`, the
    /// usual `O(log n)` CONGEST budget with constant headroom for a few ids
    /// plus one aggregate value per message.
    pub bandwidth_bits: Option<usize>,
    /// Hard cap on simulated rounds (guards against non-terminating
    /// protocols).
    pub max_rounds: u64,
    /// Seed for the per-node RNG streams.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mode: SimMode::Strict,
            bandwidth_bits: None,
            max_rounds: 1_000_000,
            seed: 0xc0ffee,
        }
    }
}

/// A message delivered to a node this round.
#[derive(Clone, Debug)]
pub struct Incoming<M> {
    /// The local port (index into the node's neighbor list) it arrived on.
    pub port: usize,
    /// The payload.
    pub msg: M,
}

/// The per-node protocol logic.
///
/// Programs are event-driven: [`on_round`](NodeProgram::on_round) fires only
/// when the node received messages or previously called
/// [`Ctx::wake_next_round`]. The run ends when every program reports
/// [`is_done`](NodeProgram::is_done), no messages are in flight, and no
/// wake-ups are pending.
pub trait NodeProgram {
    /// The message type exchanged by this protocol.
    type Msg: Clone + MessageSize;

    /// Called once before the first round; typically initiators send here.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called each round the node is active, with the messages delivered
    /// this round.
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>, inbox: &[Incoming<Self::Msg>]);

    /// Local termination flag.
    fn is_done(&self) -> bool;
}

/// The node's view of the network during a callback.
pub struct Ctx<'a, M> {
    node: NodeId,
    round: u64,
    neighbors: &'a [lcs_graph::Neighbor],
    outbox: &'a mut Vec<(usize, M, u64)>,
    rng: &'a mut SmallRng,
    wake: &'a mut bool,
}

impl<M> Ctx<'_, M> {
    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The current round (1-based; 0 during `on_start`).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of incident edges.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// The neighbor id on `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree()`.
    pub fn neighbor(&self, port: usize) -> NodeId {
        self.neighbors[port].node
    }

    /// The edge id on `port` (useful for reporting; protocols should not
    /// treat it as topology knowledge beyond the incident edge).
    pub fn edge(&self, port: usize) -> EdgeId {
        self.neighbors[port].edge
    }

    /// The port leading to neighbor `v`, if adjacent.
    pub fn port_to(&self, v: NodeId) -> Option<usize> {
        self.neighbors.binary_search_by_key(&v, |nb| nb.node).ok()
    }

    /// Sends `msg` over `port` with default priority 0.
    pub fn send(&mut self, port: usize, msg: M) {
        self.send_with_priority(port, msg, 0);
    }

    /// Sends `msg` over `port` with an explicit scheduling priority (lower
    /// values drain first in queued mode; ignored in strict mode).
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn send_with_priority(&mut self, port: usize, msg: M, priority: u64) {
        assert!(port < self.neighbors.len(), "send on invalid port {port}");
        self.outbox.push((port, msg, priority));
    }

    /// Sends a copy of `msg` to every neighbor.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for port in 0..self.neighbors.len() {
            let m = msg.clone();
            self.send(port, m);
        }
    }

    /// This node's deterministic RNG stream.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Requests an `on_round` callback next round even without incoming
    /// messages (for streaming senders and timeout logic).
    pub fn wake_next_round(&mut self) {
        *self.wake = true;
    }
}

/// Result of a run: final program states plus metrics.
#[derive(Debug)]
pub struct RunOutcome<P> {
    /// One program per node, in node-id order.
    pub programs: Vec<P>,
    /// Exact execution counts.
    pub metrics: RunMetrics,
}

/// The CONGEST simulator for a fixed graph.
#[derive(Debug)]
pub struct Simulator<'g> {
    graph: &'g Graph,
    config: SimConfig,
}

#[derive(Debug)]
struct Queued<M> {
    priority: u64,
    seq: u64,
    msg: M,
}

impl<'g> Simulator<'g> {
    /// Creates a simulator over `graph`.
    pub fn new(graph: &'g Graph, config: SimConfig) -> Self {
        Simulator { graph, config }
    }

    /// The effective per-message bandwidth in bits.
    pub fn bandwidth_bits(&self) -> usize {
        self.config.bandwidth_bits.unwrap_or_else(|| {
            let n = self.graph.num_nodes().max(1) as f64;
            4 * (n + 1.0).log2().ceil() as usize + 128
        })
    }

    /// Runs one program per node (constructed by `init`) to quiescence or
    /// the round cap.
    ///
    /// # Panics
    ///
    /// Panics if a program violates the CONGEST constraints: oversized
    /// messages, or (in strict mode) two sends over one directed edge in one
    /// round.
    pub fn run<P, F>(&self, mut init: F) -> RunOutcome<P>
    where
        P: NodeProgram,
        F: FnMut(NodeId, &Graph) -> P,
    {
        let g = self.graph;
        let n = g.num_nodes();
        let bandwidth = self.bandwidth_bits();

        let mut programs: Vec<P> = g.nodes().map(|v| init(v, g)).collect();
        let mut rngs: Vec<SmallRng> = g
            .nodes()
            .map(|v| SmallRng::seed_from_u64(splitmix(self.config.seed, v.0)))
            .collect();

        // Directed edge index: dir_base[v] + port.
        let mut dir_base = vec![0usize; n + 1];
        for v in 0..n {
            dir_base[v + 1] = dir_base[v] + g.degree(NodeId(v as u32));
        }
        let num_dirs = dir_base[n];
        // dir -> (receiver node, receiver's port back to the sender).
        let mut dir_recv: Vec<(u32, u32)> = Vec::with_capacity(num_dirs);
        for v in g.nodes() {
            for nb in g.neighbors(v) {
                let back = g
                    .neighbors(nb.node)
                    .binary_search_by_key(&v, |x| x.node)
                    .expect("graph adjacency is symmetric");
                dir_recv.push((nb.node.0, back as u32));
            }
        }
        let mut queues: Vec<VecDeque<Queued<P::Msg>>> =
            (0..num_dirs).map(|_| VecDeque::new()).collect();
        // Active queue set with position map for O(1) insert/remove.
        let mut active: Vec<usize> = Vec::new();
        let mut active_pos: Vec<usize> = vec![usize::MAX; num_dirs];

        let mut metrics = RunMetrics::default();
        let mut seq = 0u64;
        let mut outbox: Vec<(usize, P::Msg, u64)> = Vec::new();
        let mut wake_flag = vec![false; n];
        let mut wake_list: Vec<usize> = Vec::new();
        let mut strict_sent = vec![0u64; num_dirs]; // round stamp per edge

        // Round 0: on_start.
        for v in 0..n {
            let mut wake = false;
            let mut ctx = Ctx {
                node: NodeId(v as u32),
                round: 0,
                neighbors: g.neighbors(NodeId(v as u32)),
                outbox: &mut outbox,
                rng: &mut rngs[v],
                wake: &mut wake,
            };
            programs[v].on_start(&mut ctx);
            if wake && !wake_flag[v] {
                wake_flag[v] = true;
                wake_list.push(v);
            }
            Self::flush_outbox(
                g,
                v,
                &mut outbox,
                &dir_base,
                &mut queues,
                &mut active,
                &mut active_pos,
                &mut strict_sent,
                self.config.mode,
                0,
                bandwidth,
                &mut seq,
                &mut metrics,
            );
        }

        let mut inboxes: Vec<Vec<Incoming<P::Msg>>> = (0..n).map(|_| Vec::new()).collect();
        let mut receivers: Vec<usize> = Vec::new();

        while metrics.rounds < self.config.max_rounds {
            // Quiescence check.
            if active.is_empty() && wake_list.is_empty() {
                metrics.terminated = programs.iter().all(|p| p.is_done());
                break;
            }
            metrics.rounds += 1;
            let round = metrics.rounds;

            // Deliver: one message per active directed edge.
            receivers.clear();
            let mut i = 0;
            while i < active.len() {
                let dir = active[i];
                let q = &mut queues[dir];
                metrics.max_queue = metrics.max_queue.max(q.len() as u64);
                // Pop the minimum (priority, seq).
                let best = q
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, m)| (m.priority, m.seq))
                    .map(|(idx, _)| idx)
                    .expect("active queue is non-empty");
                let item = q.remove(best).expect("index valid");
                let (recv, recv_port) = dir_recv[dir];
                let recv = recv as usize;
                if inboxes[recv].is_empty() {
                    receivers.push(recv);
                }
                inboxes[recv].push(Incoming {
                    port: recv_port as usize,
                    msg: item.msg,
                });
                metrics.messages += 1;
                if q.is_empty() {
                    // Swap-remove from the active set.
                    active_pos[dir] = usize::MAX;
                    let last = *active.last().unwrap();
                    active.swap_remove(i);
                    if i < active.len() {
                        active_pos[last] = i;
                    }
                    // Do not advance i: the swapped-in entry needs service.
                } else {
                    i += 1;
                }
            }

            // Wake-ups requested last round join the receivers.
            let mut to_run = std::mem::take(&mut receivers);
            for v in wake_list.drain(..) {
                wake_flag[v] = false;
                if inboxes[v].is_empty() {
                    to_run.push(v);
                }
            }
            to_run.sort_unstable(); // deterministic execution order

            for v in to_run.drain(..) {
                let inbox = std::mem::take(&mut inboxes[v]);
                let mut wake = false;
                let mut ctx = Ctx {
                    node: NodeId(v as u32),
                    round,
                    neighbors: g.neighbors(NodeId(v as u32)),
                    outbox: &mut outbox,
                    rng: &mut rngs[v],
                    wake: &mut wake,
                };
                programs[v].on_round(&mut ctx, &inbox);
                if wake && !wake_flag[v] {
                    wake_flag[v] = true;
                    wake_list.push(v);
                }
                Self::flush_outbox(
                    g,
                    v,
                    &mut outbox,
                    &dir_base,
                    &mut queues,
                    &mut active,
                    &mut active_pos,
                    &mut strict_sent,
                    self.config.mode,
                    round,
                    bandwidth,
                    &mut seq,
                    &mut metrics,
                );
            }
            receivers = to_run;
        }

        RunOutcome { programs, metrics }
    }

    #[allow(clippy::too_many_arguments)]
    fn flush_outbox<M: MessageSize>(
        g: &Graph,
        sender: usize,
        outbox: &mut Vec<(usize, M, u64)>,
        dir_base: &[usize],
        queues: &mut [VecDeque<Queued<M>>],
        active: &mut Vec<usize>,
        active_pos: &mut [usize],
        strict_sent: &mut [u64],
        mode: SimMode,
        round: u64,
        bandwidth: usize,
        seq: &mut u64,
        metrics: &mut RunMetrics,
    ) {
        for (port, msg, priority) in outbox.drain(..) {
            debug_assert!(port < g.degree(NodeId(sender as u32)));
            let bits = msg.size_bits();
            assert!(
                bits <= bandwidth,
                "message of {bits} bits exceeds the {bandwidth}-bit CONGEST bandwidth"
            );
            let dir = dir_base[sender] + port;
            if mode == SimMode::Strict {
                assert!(
                    strict_sent[dir] != round + 1,
                    "strict mode: node {sender} sent twice on port {port} in round {round}"
                );
                strict_sent[dir] = round + 1;
            }
            metrics.bits += bits as u64;
            *seq += 1;
            queues[dir].push_back(Queued {
                priority,
                seq: *seq,
                msg,
            });
            if active_pos[dir] == usize::MAX {
                active_pos[dir] = active.len();
                active.push(dir);
            }
        }
    }
}

/// SplitMix64-style mixer: derives a well-mixed 64-bit value from a seed
/// and a 32-bit salt. Used for the per-node RNG streams and exported for
/// protocols needing a shared deterministic hash (e.g. the sketch detection
/// of the distributed shortcut construction).
pub fn splitmix(seed: u64, salt: u32) -> u64 {
    let mut z = seed ^ (u64::from(salt).wrapping_mul(0x9e3779b97f4a7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::gen;

    /// Floods the maximum node id; every node is done once it stops hearing
    /// larger values.
    struct MaxFlood {
        best: u32,
    }

    impl NodeProgram for MaxFlood {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            let best = self.best;
            ctx.broadcast(best);
        }

        fn on_round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[Incoming<u32>]) {
            let mut improved = false;
            for m in inbox {
                if m.msg > self.best {
                    self.best = m.msg;
                    improved = true;
                }
            }
            if improved {
                let best = self.best;
                ctx.broadcast(best);
            }
        }

        fn is_done(&self) -> bool {
            true // quiescence-detected
        }
    }

    #[test]
    fn max_flood_converges_in_diameter_rounds() {
        let g = gen::path(10);
        let sim = Simulator::new(&g, SimConfig::default());
        let run = sim.run(|v, _| MaxFlood { best: v.0 });
        assert!(run.metrics.terminated);
        assert!(run.programs.iter().all(|p| p.best == 9));
        // Node 9 is at one end: the value needs 9 hops, +1 quiescence round.
        assert!(run.metrics.rounds >= 9 && run.metrics.rounds <= 11);
    }

    #[test]
    fn strict_mode_rejects_double_send() {
        struct DoubleSend;
        impl NodeProgram for DoubleSend {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                if ctx.node() == NodeId(0) {
                    ctx.send(0, 1);
                    ctx.send(0, 2);
                }
            }
            fn on_round(&mut self, _: &mut Ctx<'_, u32>, _: &[Incoming<u32>]) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = gen::path(2);
        let sim = Simulator::new(&g, SimConfig::default());
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run(|_, _| DoubleSend)));
        assert!(result.is_err());
    }

    #[test]
    fn queued_mode_drains_by_priority() {
        /// Node 0 enqueues three messages to node 1 in one round with
        /// descending priority values; node 1 records arrival order.
        struct Sender;
        impl NodeProgram for Sender {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                if ctx.node() == NodeId(0) {
                    ctx.send_with_priority(0, 30, 3);
                    ctx.send_with_priority(0, 10, 1);
                    ctx.send_with_priority(0, 20, 2);
                }
            }
            fn on_round(&mut self, _: &mut Ctx<'_, u32>, _: &[Incoming<u32>]) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        struct Recorder(Vec<u32>);
        enum Either {
            S(Sender),
            R(Recorder),
        }
        impl NodeProgram for Either {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                if let Either::S(s) = self {
                    s.on_start(ctx);
                }
            }
            fn on_round(&mut self, _: &mut Ctx<'_, u32>, inbox: &[Incoming<u32>]) {
                if let Either::R(r) = self {
                    r.0.extend(inbox.iter().map(|m| m.msg));
                }
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = gen::path(2);
        let sim = Simulator::new(
            &g,
            SimConfig {
                mode: SimMode::Queued,
                ..SimConfig::default()
            },
        );
        let run = sim.run(|v, _| {
            if v == NodeId(0) {
                Either::S(Sender)
            } else {
                Either::R(Recorder(Vec::new()))
            }
        });
        assert!(run.metrics.terminated);
        assert_eq!(run.metrics.rounds, 3); // one message per round
        assert_eq!(run.metrics.max_queue, 3);
        let Either::R(r) = &run.programs[1] else {
            panic!("node 1 is the recorder");
        };
        assert_eq!(r.0, vec![10, 20, 30]);
    }

    #[test]
    fn bandwidth_is_enforced() {
        struct BigMsg;
        #[derive(Clone)]
        struct Huge;
        impl MessageSize for Huge {
            fn size_bits(&self) -> usize {
                1 << 20
            }
        }
        impl NodeProgram for BigMsg {
            type Msg = Huge;
            fn on_start(&mut self, ctx: &mut Ctx<'_, Huge>) {
                if ctx.node() == NodeId(0) {
                    ctx.send(0, Huge);
                }
            }
            fn on_round(&mut self, _: &mut Ctx<'_, Huge>, _: &[Incoming<Huge>]) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = gen::path(2);
        let sim = Simulator::new(&g, SimConfig::default());
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run(|_, _| BigMsg)));
        assert!(result.is_err());
    }

    #[test]
    fn wake_next_round_ticks_without_messages() {
        struct Counter {
            ticks: u32,
        }
        impl NodeProgram for Counter {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                ctx.wake_next_round();
            }
            fn on_round(&mut self, ctx: &mut Ctx<'_, u32>, _: &[Incoming<u32>]) {
                self.ticks += 1;
                if self.ticks < 5 {
                    ctx.wake_next_round();
                }
            }
            fn is_done(&self) -> bool {
                self.ticks >= 5
            }
        }
        let g = gen::path(2);
        let sim = Simulator::new(&g, SimConfig::default());
        let run = sim.run(|_, _| Counter { ticks: 0 });
        assert!(run.metrics.terminated);
        assert_eq!(run.metrics.rounds, 5);
        assert!(run.programs.iter().all(|p| p.ticks == 5));
    }

    #[test]
    fn max_rounds_caps_runaway_protocols() {
        struct Forever;
        impl NodeProgram for Forever {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                ctx.wake_next_round();
            }
            fn on_round(&mut self, ctx: &mut Ctx<'_, u32>, _: &[Incoming<u32>]) {
                ctx.wake_next_round();
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = gen::path(2);
        let sim = Simulator::new(
            &g,
            SimConfig {
                max_rounds: 10,
                ..SimConfig::default()
            },
        );
        let run = sim.run(|_, _| Forever);
        assert!(!run.metrics.terminated);
        assert_eq!(run.metrics.rounds, 10);
    }

    #[test]
    fn determinism_across_runs() {
        let g = gen::grid(4, 4);
        let sim = Simulator::new(&g, SimConfig::default());
        let a = sim.run(|v, _| MaxFlood { best: v.0 });
        let b = sim.run(|v, _| MaxFlood { best: v.0 });
        assert_eq!(a.metrics, b.metrics);
    }
}
