//! Run statistics reported by the simulator.

use serde::{Deserialize, Serialize};

/// Exact counts from one simulated execution, plus the execution
/// configuration they were measured under.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Rounds executed until quiescence (or the round cap).
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Total bits delivered (per the senders' [`MessageSize`] accounting;
    /// id payloads are billed at [`id_bits`]`(n)`).
    ///
    /// [`MessageSize`]: crate::MessageSize
    /// [`id_bits`]: crate::id_bits
    pub bits: u64,
    /// Largest backlog observed on any directed edge queue (1 in strict
    /// mode; larger values indicate multiplexing pressure in queued mode).
    pub max_queue: u64,
    /// Whether the run reached quiescence (all programs done, no messages in
    /// flight) before the round cap.
    pub terminated: bool,
    /// Whether the run was cut short by [`SimConfig::max_rounds`] while
    /// messages were still in flight or wake-ups pending. Callers must treat
    /// a truncated run's program states as incomplete.
    ///
    /// [`SimConfig::max_rounds`]: crate::SimConfig::max_rounds
    pub truncated: bool,
    /// Worker threads the sharded executor actually ran with (the resolved
    /// [`SimConfig::threads`]). Execution configuration, not a measurement:
    /// every counter above is identical at any thread count.
    ///
    /// Schema note: `threads` and `bandwidth_bits` were added to the serde
    /// surface in the facade PR; payloads serialized before then no longer
    /// deserialize (the vendored serde shim has no `#[serde(default)]`).
    /// No such payloads are persisted in this repository.
    ///
    /// [`SimConfig::threads`]: crate::SimConfig::threads
    pub threads: usize,
    /// The per-message bandwidth limit (bits) the run enforced — the
    /// resolved [`SimConfig::bandwidth_bits`].
    ///
    /// [`SimConfig::bandwidth_bits`]: crate::SimConfig::bandwidth_bits
    pub bandwidth_bits: usize,
    /// The multi-value packing factor the run coalesced sends with — the
    /// resolved [`SimConfig::message_packing`] (1 = unpacked). Execution
    /// configuration like `threads`: at `packing = 1` every counter equals
    /// the unpacked engine's; at `packing > 1` rounds/messages/bits may
    /// (and should) drop while protocol results stay identical.
    ///
    /// [`SimConfig::message_packing`]: crate::SimConfig::message_packing
    pub packing: usize,
}

/// Wall-clock breakdown of one run's round loop, reported alongside the
/// deterministic [`RunMetrics`] on [`RunOutcome::timings`].
///
/// Kept out of `RunMetrics` on purpose: metrics are bit-identical across
/// thread counts and compared with `==` by the conformance suite, while
/// timings are measurements of *this* execution.
///
/// What the buckets mean depends on the executor path:
///
/// * single shard (`threads = 1`): `stage_ms` is delivery staging,
///   `merge_ms` is the flush/validation/accounting pass, `compute_ms` is
///   the node programs' `on_round` work;
/// * sharded (`threads > 1`): `stage_ms` is the coordinator's serial
///   window (account collection, quiescence check, seq-base prefix sum,
///   mailbox rotation), `merge_ms` is the metric fold (overlapped with the
///   next round's compute), `compute_ms` is the parallel region wall —
///   everything the lanes do between barriers, which *includes* their
///   in-lane validation, staging and flush.
///
/// [`RunOutcome::timings`]: crate::RunOutcome::timings
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Wall milliseconds in node-program execution (the parallel region
    /// for sharded runs).
    pub compute_ms: f64,
    /// Wall milliseconds staging deliveries (single shard) or in the
    /// coordinator's serial window (sharded).
    pub stage_ms: f64,
    /// Wall milliseconds merging/validating outboxes (single shard) or
    /// folding shard accounts (sharded).
    pub merge_ms: f64,
}

impl PhaseTimings {
    /// The serial-coordination share of the loop: `(stage_ms + merge_ms) /
    /// total`, in `[0, 1]`. 0 for an empty run.
    pub fn serial_share(&self) -> f64 {
        let total = self.compute_ms + self.stage_ms + self.merge_ms;
        if total <= 0.0 {
            0.0
        } else {
            (self.stage_ms + self.merge_ms) / total
        }
    }
}

impl RunMetrics {
    /// Average messages per round (0 for empty runs).
    pub fn messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages as f64 / self.rounds as f64
        }
    }

    /// The measurement counters alone, without the execution configuration
    /// (`threads`, `bandwidth_bits`, `packing`): `(rounds, messages, bits, max_queue,
    /// terminated, truncated)`. This is the tuple that must be identical
    /// across thread counts — compare it (not whole `RunMetrics` values)
    /// when asserting thread-count invariance.
    pub fn counts(&self) -> (u64, u64, u64, u64, bool, bool) {
        (
            self.rounds,
            self.messages,
            self.bits,
            self.max_queue,
            self.terminated,
            self.truncated,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_per_round_handles_zero() {
        let m = RunMetrics::default();
        assert_eq!(m.messages_per_round(), 0.0);
        let m = RunMetrics {
            rounds: 4,
            messages: 10,
            ..RunMetrics::default()
        };
        assert_eq!(m.messages_per_round(), 2.5);
    }

    #[test]
    fn counts_drops_the_execution_configuration() {
        let a = RunMetrics {
            rounds: 3,
            messages: 7,
            bits: 99,
            max_queue: 2,
            terminated: true,
            truncated: false,
            threads: 1,
            bandwidth_bits: 160,
            packing: 1,
        };
        let b = RunMetrics {
            threads: 4,
            packing: 8,
            ..a.clone()
        };
        assert_ne!(a, b);
        assert_eq!(a.counts(), b.counts());
    }
}
