//! Run statistics reported by the simulator.

use serde::{Deserialize, Serialize};

/// Exact counts from one simulated execution.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Rounds executed until quiescence (or the round cap).
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Total bits delivered (per the senders' [`MessageSize`] accounting).
    ///
    /// [`MessageSize`]: crate::MessageSize
    pub bits: u64,
    /// Largest backlog observed on any directed edge queue (1 in strict
    /// mode; larger values indicate multiplexing pressure in queued mode).
    pub max_queue: u64,
    /// Whether the run reached quiescence (all programs done, no messages in
    /// flight) before the round cap.
    pub terminated: bool,
    /// Whether the run was cut short by [`SimConfig::max_rounds`] while
    /// messages were still in flight or wake-ups pending. Callers must treat
    /// a truncated run's program states as incomplete.
    ///
    /// [`SimConfig::max_rounds`]: crate::SimConfig::max_rounds
    pub truncated: bool,
}

impl RunMetrics {
    /// Average messages per round (0 for empty runs).
    pub fn messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages as f64 / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_per_round_handles_zero() {
        let m = RunMetrics::default();
        assert_eq!(m.messages_per_round(), 0.0);
        let m = RunMetrics {
            rounds: 4,
            messages: 10,
            ..RunMetrics::default()
        };
        assert_eq!(m.messages_per_round(), 2.5);
    }
}
