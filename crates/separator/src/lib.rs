//! Nested-dissection balanced separators for minor-free graphs.
//!
//! The paper's premise is that graphs excluding dense minors have small
//! balanced separators; this crate computes them and turns the recursion
//! into partitions the shortcut machinery consumes. [`nested_dissection`]
//! recursively splits the vertex set with BFS-level cuts: a double-sweep
//! BFS finds a peripheral root, and among the BFS levels whose prefix mass
//! lands in the balanced window `[⌈n/3⌉, ⌊2n/3⌋]` the *smallest* level is
//! chosen as the cut (the inertial-flow-style refinement — the level sets
//! are the candidate cuts, the window enforces balance, the minimum
//! cardinality refines the cut). Removing the chosen separator `S` leaves
//! components of at most `⌊2n/3⌋` nodes each, the classical balance
//! guarantee; on planar-like instances a BFS level has `O(√n)` nodes, so
//! the regions shrink geometrically with `O(√n)`-sized cuts.
//!
//! The full recursion is recorded as a serde-able [`SeparatorTree`]:
//!
//! * [`SeparatorTree::partition_at_level`] flattens the tree at one depth
//!   into disjoint **connected** parts covering every node — a drop-in
//!   partition source for `lcs_core` sessions (each region keeps its cut
//!   level, so regions stay connected: the near side of a cut is a union
//!   of BFS level prefixes, the far sides are components);
//! * the tree itself powers hierarchy-mode sessions: level-`k` parts are
//!   unions of level-`k+1` parts by construction, so shortcut artifacts
//!   built on the finer level warm-start the coarser one.
//!
//! Everything is deterministic: regions are kept sorted by node id, BFS
//! follows the CSR adjacency order, and farthest-node ties break toward
//! the smallest id — the same tree is produced on every run, which is what
//! lets servers key warm-session caches on the separator spec alone.
//!
//! ```
//! use lcs_graph::gen;
//! use lcs_separator::{nested_dissection, SeparatorConfig};
//!
//! let g = gen::grid(16, 16);
//! let tree = nested_dissection(&g, &SeparatorConfig::default());
//! let parts = tree.partition_at_level(3);
//! assert!(parts.len() > 1);
//! let covered: usize = parts.iter().map(Vec::len).sum();
//! assert_eq!(covered, 256);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lcs_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Knobs of the nested-dissection recursion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeparatorConfig {
    /// Regions of at most this many nodes become leaves (the dissection
    /// never splits below it).
    pub min_region: usize,
    /// Maximum dissection depth: nodes at this depth are leaves even if
    /// they exceed `min_region`. The tree has at most `max_levels + 1`
    /// levels.
    pub max_levels: u32,
}

impl Default for SeparatorConfig {
    fn default() -> Self {
        SeparatorConfig {
            min_region: 8,
            max_levels: 30,
        }
    }
}

/// One region of the dissection: its nodes, the separator chosen to split
/// it, and its place in the recursion tree.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SepNode {
    /// The region's nodes, sorted ascending by id.
    pub region: Vec<NodeId>,
    /// The cut: the BFS level chosen to split this region (sorted; empty
    /// for leaves and for disconnected regions, which split into
    /// components without a cut). The separator nodes stay in the *near*
    /// child (`children[0]`), so child regions cover the region exactly.
    pub separator: Vec<NodeId>,
    /// Arena index of the parent region (`None` for the root).
    pub parent: Option<usize>,
    /// Arena indices of the child regions. For a cut split, `children[0]`
    /// is the near side (BFS prefix including the separator) and the rest
    /// are the far components; for a disconnected region, one child per
    /// component. Empty for leaves.
    pub children: Vec<usize>,
    /// Depth in the recursion tree (root = 0).
    pub depth: u32,
}

impl SepNode {
    /// Whether this region was not split further.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// The nested-dissection recursion tree: an arena of [`SepNode`]s in DFS
/// preorder with the root at index 0 (empty for the empty graph).
///
/// Every level of the tree is a partition of the vertex set into
/// connected parts ([`partition_at_level`](Self::partition_at_level)),
/// and level-`k` parts are unions of level-`k+1` parts — the refinement
/// chain hierarchy-mode sessions exploit.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeparatorTree {
    /// The arena, DFS preorder, root first.
    pub nodes: Vec<SepNode>,
}

impl SeparatorTree {
    /// Number of regions in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty (only for the empty graph).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root region, if any.
    pub fn root(&self) -> Option<&SepNode> {
        self.nodes.first()
    }

    /// Maximum region depth (0 for a single-region tree and for the empty
    /// tree).
    pub fn depth(&self) -> u32 {
        self.nodes.iter().map(|r| r.depth).max().unwrap_or(0)
    }

    /// Number of distinct dissection levels (`depth() + 1`; 0 when empty).
    pub fn num_levels(&self) -> u32 {
        if self.is_empty() {
            0
        } else {
            self.depth() + 1
        }
    }

    /// The partition induced by cutting the tree at `level`: every region
    /// at exactly that depth, plus every leaf above it. Parts are
    /// disjoint, cover all nodes, and each induces a connected subgraph
    /// (provided each graph component is a region, which
    /// [`nested_dissection`] guarantees for levels ≥ 1 on any graph and
    /// for level 0 on connected graphs).
    ///
    /// Levels past [`depth`](Self::depth) saturate to the leaf partition.
    pub fn partition_at_level(&self, level: u32) -> Vec<Vec<NodeId>> {
        self.nodes
            .iter()
            .filter(|r| r.depth == level || (r.is_leaf() && r.depth < level))
            .map(|r| r.region.clone())
            .collect()
    }

    /// The finest partition: the leaf regions.
    pub fn leaf_partition(&self) -> Vec<Vec<NodeId>> {
        self.nodes
            .iter()
            .filter(|r| r.is_leaf())
            .map(|r| r.region.clone())
            .collect()
    }

    /// Number of parts [`partition_at_level`](Self::partition_at_level)
    /// would produce, without materializing them.
    pub fn parts_at_level(&self, level: u32) -> usize {
        self.nodes
            .iter()
            .filter(|r| r.depth == level || (r.is_leaf() && r.depth < level))
            .count()
    }

    /// The smallest level whose partition has at least `target` parts, or
    /// the deepest level if none does — how benches pick a dissection
    /// level comparable to a `k`-part synthetic partition.
    pub fn level_for_parts(&self, target: usize) -> u32 {
        let deepest = self.depth();
        (0..=deepest)
            .find(|&l| self.parts_at_level(l) >= target)
            .unwrap_or(deepest)
    }

    /// Total separator nodes over the whole recursion (each region's cut,
    /// summed) — the `O(√n · log n)`-ish quantity on planar-like inputs.
    pub fn total_separator_nodes(&self) -> usize {
        self.nodes.iter().map(|r| r.separator.len()).sum()
    }
}

/// Scratch buffers shared across the whole recursion so each region costs
/// `O(|region| + edges(region))`, not `O(n)`.
struct Scratch {
    /// `pos[v]` = local index of `v` in the region being processed,
    /// `u32::MAX` outside it.
    pos: Vec<u32>,
    /// Per-local-index BFS distance.
    dist: Vec<u32>,
    /// Per-local-index component label for the far side.
    comp: Vec<u32>,
}

const UNSET: u32 = u32::MAX;

impl Scratch {
    fn new(n: usize) -> Self {
        Scratch {
            pos: vec![UNSET; n],
            dist: Vec::new(),
            comp: Vec::new(),
        }
    }

    /// Installs a region: assigns local indices and resets per-node state.
    fn enter(&mut self, region: &[NodeId]) {
        self.dist.clear();
        self.dist.resize(region.len(), UNSET);
        self.comp.clear();
        self.comp.resize(region.len(), UNSET);
        for (i, &v) in region.iter().enumerate() {
            self.pos[v.index()] = i as u32;
        }
    }

    /// Uninstalls the region (restores the `pos` sentinel).
    fn leave(&mut self, region: &[NodeId]) {
        for &v in region {
            self.pos[v.index()] = UNSET;
        }
    }

    /// BFS from `src` restricted to the installed region, writing
    /// distances into `self.dist` (which the caller must have reset).
    /// Returns the number of reached nodes.
    fn bfs(&mut self, g: &Graph, src: NodeId) -> usize {
        let mut queue = VecDeque::new();
        self.dist[self.pos[src.index()] as usize] = 0;
        queue.push_back(src);
        let mut reached = 1usize;
        while let Some(u) = queue.pop_front() {
            let du = self.dist[self.pos[u.index()] as usize];
            for &next in g.heads(u) {
                let p = self.pos[next.index()];
                if p != UNSET && self.dist[p as usize] == UNSET {
                    self.dist[p as usize] = du + 1;
                    reached += 1;
                    queue.push_back(next);
                }
            }
        }
        reached
    }

    /// The reached node of maximum distance, ties toward the smallest id
    /// (the same rule as `BfsResult::farthest`). Assumes `region` is the
    /// installed region and at least one node was reached.
    fn farthest(&self, region: &[NodeId]) -> NodeId {
        // Region is sorted ascending, so the first node at the maximum
        // distance is the smallest-id one.
        let mut best = region[0];
        let mut best_d = 0u32;
        for (i, &v) in region.iter().enumerate() {
            let d = self.dist[i];
            if d != UNSET && d > best_d {
                best_d = d;
                best = v;
            }
        }
        best
    }
}

/// What one region splits into.
enum Split {
    /// The region stays a leaf (small, depth-capped, or unsplittable —
    /// e.g. a clique whose only balanced cut is the whole region).
    Leaf,
    /// A separator cut: the cut nodes plus the child regions (near side
    /// first, then the far components), each sorted.
    Cut {
        separator: Vec<NodeId>,
        children: Vec<Vec<NodeId>>,
    },
    /// The region is disconnected: one child per component, no cut.
    Components(Vec<Vec<NodeId>>),
}

/// Computes the split of one (sorted) region.
fn split_region(g: &Graph, region: &[NodeId], scratch: &mut Scratch) -> Split {
    let n_r = region.len();
    scratch.enter(region);

    // Sweep 1: connectivity check + peripheral node from the smallest id.
    let reached = scratch.bfs(g, region[0]);
    if reached < n_r {
        let first: Vec<NodeId> = region
            .iter()
            .enumerate()
            .filter(|&(i, _)| scratch.dist[i] != UNSET)
            .map(|(_, &v)| v)
            .collect();
        let mut comps = vec![first];
        comps.extend(far_components(g, region, scratch, UNSET));
        scratch.leave(region);
        return Split::Components(comps);
    }
    let peripheral = scratch.farthest(region);

    // Sweep 2: the level structure the cut is chosen from.
    for d in scratch.dist.iter_mut() {
        *d = UNSET;
    }
    scratch.bfs(g, peripheral);

    let ecc = region
        .iter()
        .enumerate()
        .map(|(i, _)| scratch.dist[i])
        .max()
        .unwrap_or(0) as usize;
    let mut level_count = vec![0usize; ecc + 1];
    for i in 0..n_r {
        level_count[scratch.dist[i] as usize] += 1;
    }

    // The balanced window: a cut at level ℓ leaves a near side of
    // prefix(ℓ-1) nodes and far components totalling n_r - prefix(ℓ);
    // any prefix(ℓ) in [⌈n/3⌉, ⌊2n/3⌋] bounds both by ⌊2n/3⌋. Among the
    // in-window levels the smallest one is the refined cut; if a single
    // fat level spans the window (stars, cliques), fall back to the first
    // level crossing ⌈n/3⌉ — both strict sides are then below ⌈n/3⌉.
    let lo = n_r.div_ceil(3);
    let hi = 2 * n_r / 3;
    let mut prefix = 0usize;
    let mut cut: Option<(usize, usize)> = None; // (level, level size)
    let mut fallback: Option<usize> = None;
    for (l, &c) in level_count.iter().enumerate() {
        prefix += c;
        if prefix >= lo && fallback.is_none() {
            fallback = Some(l);
        }
        if prefix >= lo && prefix <= hi {
            match cut {
                Some((_, best)) if best <= c => {}
                _ => cut = Some((l, c)),
            }
        }
    }
    let cut_level = cut.map(|(l, _)| l).or(fallback).unwrap_or(ecc) as u32;

    let mut near = Vec::new();
    let mut separator = Vec::new();
    for (i, &v) in region.iter().enumerate() {
        if scratch.dist[i] <= cut_level {
            near.push(v);
            if scratch.dist[i] == cut_level {
                separator.push(v);
            }
        }
    }
    if near.len() == n_r {
        // The cut swallowed the region (small-diameter regions like
        // cliques): no balanced separator exists at this granularity.
        scratch.leave(region);
        return Split::Leaf;
    }
    let mut children = vec![near];
    children.extend(far_components(g, region, scratch, cut_level));
    scratch.leave(region);
    Split::Cut {
        separator,
        children,
    }
}

/// The connected components of the installed region's nodes with
/// `dist > cut_level` (with `cut_level = UNSET - 1` semantics handled by
/// the caller passing `UNSET` to mean "unreached nodes"), each sorted
/// ascending. Labels are written into `scratch.comp`.
fn far_components(
    g: &Graph,
    region: &[NodeId],
    scratch: &mut Scratch,
    cut_level: u32,
) -> Vec<Vec<NodeId>> {
    let in_far = |dist: u32| {
        if cut_level == UNSET {
            dist == UNSET
        } else {
            dist != UNSET && dist > cut_level
        }
    };
    let mut comps: Vec<Vec<NodeId>> = Vec::new();
    let mut queue = VecDeque::new();
    for (i, &v) in region.iter().enumerate() {
        if !in_far(scratch.dist[i]) || scratch.comp[i] != UNSET {
            continue;
        }
        let label = comps.len() as u32;
        scratch.comp[i] = label;
        queue.push_back(v);
        let mut members = vec![v];
        while let Some(u) = queue.pop_front() {
            for &next in g.heads(u) {
                let p = scratch.pos[next.index()];
                if p != UNSET
                    && in_far(scratch.dist[p as usize])
                    && scratch.comp[p as usize] == UNSET
                {
                    scratch.comp[p as usize] = label;
                    members.push(next);
                    queue.push_back(next);
                }
            }
        }
        members.sort_unstable();
        comps.push(members);
    }
    comps
}

/// Runs the nested dissection on `g` and returns the recursion tree.
///
/// The root region is all of `V`; every region larger than
/// [`SeparatorConfig::min_region`] and shallower than
/// [`SeparatorConfig::max_levels`] is split by a balanced BFS-level cut
/// (see the [crate docs](self)), disconnected regions split into their
/// components, and regions with no balanced cut (cliques) stay leaves.
/// Deterministic for a fixed graph and config.
pub fn nested_dissection(g: &Graph, cfg: &SeparatorConfig) -> SeparatorTree {
    let n = g.num_nodes();
    let mut tree = SeparatorTree::default();
    if n == 0 {
        return tree;
    }
    let mut scratch = Scratch::new(n);
    let min_region = cfg.min_region.max(1);

    tree.nodes.push(SepNode {
        region: g.nodes().collect(),
        separator: Vec::new(),
        parent: None,
        children: Vec::new(),
        depth: 0,
    });
    // DFS preorder via an explicit stack of arena indices.
    let mut stack = vec![0usize];
    while let Some(idx) = stack.pop() {
        let depth = tree.nodes[idx].depth;
        if tree.nodes[idx].region.len() <= min_region || depth >= cfg.max_levels {
            continue;
        }
        let split = split_region(g, &tree.nodes[idx].region, &mut scratch);
        let (separator, child_regions) = match split {
            Split::Leaf => continue,
            Split::Cut {
                separator,
                children,
            } => (separator, children),
            Split::Components(comps) => (Vec::new(), comps),
        };
        tree.nodes[idx].separator = separator;
        let mut child_indices = Vec::with_capacity(child_regions.len());
        for region in child_regions {
            let child_idx = tree.nodes.len();
            tree.nodes.push(SepNode {
                region,
                separator: Vec::new(),
                parent: Some(idx),
                children: Vec::new(),
                depth: depth + 1,
            });
            child_indices.push(child_idx);
        }
        // Reverse push so the near side is processed (and numbered) first.
        for &c in child_indices.iter().rev() {
            stack.push(c);
        }
        tree.nodes[idx].children = child_indices;
    }
    tree
}

/// Convenience: the flat partition at `level` of a fresh dissection of
/// `g` — what `PartitionSource::Separator` resolves to.
pub fn separator_parts(g: &Graph, level: u32, cfg: &SeparatorConfig) -> Vec<Vec<NodeId>> {
    nested_dissection(g, cfg).partition_at_level(level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::{components, gen};

    fn deep_cfg() -> SeparatorConfig {
        SeparatorConfig {
            min_region: 2,
            max_levels: 30,
        }
    }

    /// Checks the classical balance guarantee on every cut region: each
    /// component of `region \ separator` has at most ⌊2n/3⌋ nodes.
    fn assert_balanced(tree: &SeparatorTree) {
        for node in &tree.nodes {
            if node.separator.is_empty() || node.is_leaf() {
                continue;
            }
            let n_r = node.region.len();
            let near_strict = tree.nodes[node.children[0]].region.len() - node.separator.len();
            assert!(
                near_strict <= 2 * n_r / 3,
                "near side {near_strict} exceeds 2/3 of {n_r}"
            );
            for &c in &node.children[1..] {
                let far = tree.nodes[c].region.len();
                assert!(far <= 2 * n_r / 3, "far side {far} exceeds 2/3 of {n_r}");
            }
        }
    }

    fn assert_level_partitions(g: &Graph, tree: &SeparatorTree) {
        for level in 0..tree.num_levels() {
            let parts = tree.partition_at_level(level);
            let covered: usize = parts.iter().map(Vec::len).sum();
            assert_eq!(covered, g.num_nodes(), "level {level} must cover V");
            let mut seen = vec![false; g.num_nodes()];
            for p in &parts {
                assert!(components::induces_connected(g, p), "disconnected part");
                for &v in p {
                    assert!(!seen[v.index()], "overlap at {v:?}");
                    seen[v.index()] = true;
                }
            }
        }
    }

    #[test]
    fn grid_dissection_is_balanced_and_partitions_every_level() {
        let g = gen::grid(13, 17);
        let tree = nested_dissection(&g, &deep_cfg());
        assert!(tree.num_levels() >= 4);
        assert_balanced(&tree);
        assert_level_partitions(&g, &tree);
        // Grid separators are BFS levels: O(√n)-ish, far below the region.
        let root_sep = tree.root().unwrap().separator.len();
        assert!(root_sep > 0 && root_sep < g.num_nodes() / 3);
    }

    #[test]
    fn path_dissection_halves() {
        let g = gen::path(32);
        let tree = nested_dissection(&g, &deep_cfg());
        assert_balanced(&tree);
        assert_level_partitions(&g, &tree);
        // A path's level cut is a single node.
        assert_eq!(tree.root().unwrap().separator.len(), 1);
    }

    #[test]
    fn star_cuts_at_the_center() {
        let g = gen::star(12);
        let tree = nested_dissection(&g, &deep_cfg());
        assert_balanced(&tree);
        assert_level_partitions(&g, &tree);
    }

    #[test]
    fn clique_stays_a_leaf() {
        let g = gen::complete(9);
        let tree = nested_dissection(&g, &deep_cfg());
        // Levels are {root} and everything else: no balanced level cut.
        assert_eq!(tree.len(), 1);
        assert!(tree.root().unwrap().is_leaf());
        assert_eq!(tree.partition_at_level(5).len(), 1);
    }

    #[test]
    fn disconnected_graph_splits_into_components_at_level_one() {
        let g = Graph::from_edges(7, [(0, 1), (1, 2), (3, 4), (5, 6)]);
        let tree = nested_dissection(&g, &deep_cfg());
        let root = tree.root().unwrap();
        assert!(root.separator.is_empty());
        assert_eq!(root.children.len(), 3);
        let parts = tree.partition_at_level(1);
        assert_eq!(parts.len(), 3);
        for p in &parts {
            assert!(components::induces_connected(&g, p));
        }
    }

    #[test]
    fn min_region_and_max_levels_cap_the_recursion() {
        let g = gen::grid(8, 8);
        let shallow = nested_dissection(
            &g,
            &SeparatorConfig {
                min_region: 2,
                max_levels: 2,
            },
        );
        assert!(shallow.num_levels() <= 3);
        let coarse = nested_dissection(
            &g,
            &SeparatorConfig {
                min_region: 40,
                max_levels: 30,
            },
        );
        for leaf in coarse.nodes.iter().filter(|r| r.is_leaf()) {
            // A leaf is either small or the unsplittable child of a cut.
            assert!(leaf.region.len() <= 40 || leaf.separator.is_empty());
        }
        for node in &coarse.nodes {
            if !node.is_leaf() {
                assert!(node.region.len() > 40);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let g = gen::torus(9, 11);
        let a = nested_dissection(&g, &SeparatorConfig::default());
        let b = nested_dissection(&g, &SeparatorConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn level_for_parts_finds_the_coarsest_sufficient_level() {
        let g = gen::grid(16, 16);
        let tree = nested_dissection(&g, &deep_cfg());
        let level = tree.level_for_parts(8);
        assert!(tree.parts_at_level(level) >= 8);
        assert!(level == 0 || tree.parts_at_level(level - 1) < 8);
        // Saturates instead of failing when the target is unreachable.
        let deepest = tree.level_for_parts(usize::MAX);
        assert_eq!(deepest, tree.depth());
    }

    #[test]
    fn children_refine_their_parent() {
        let g = gen::grid(10, 10);
        let tree = nested_dissection(&g, &deep_cfg());
        for node in &tree.nodes {
            if node.is_leaf() {
                continue;
            }
            let mut union: Vec<NodeId> = node
                .children
                .iter()
                .flat_map(|&c| tree.nodes[c].region.iter().copied())
                .collect();
            union.sort_unstable();
            assert_eq!(union, node.region, "children must cover the region");
        }
    }

    #[test]
    fn serde_round_trip() {
        let g = gen::grid(6, 6);
        let tree = nested_dissection(&g, &deep_cfg());
        let json = serde_json::to_string(&tree).unwrap();
        let back: SeparatorTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tree);
    }

    #[test]
    fn empty_graph_yields_an_empty_tree() {
        let g = Graph::from_edges(0, []);
        let tree = nested_dissection(&g, &SeparatorConfig::default());
        assert!(tree.is_empty());
        assert_eq!(tree.num_levels(), 0);
        assert!(tree.partition_at_level(0).is_empty());
    }
}
