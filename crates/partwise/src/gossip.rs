//! Leaderless part-wise aggregation by idempotent gossip.
//!
//! Definition 2.1 does not hand out leaders; when none are known, an
//! *idempotent* aggregate (min / max) can be computed by flooding: every
//! participating node repeatedly shares its current best over the part's
//! subgraph `G[P_i] + H_i`, improving monotonically. The process converges
//! in `diameter(G[P_i] + H_i)` rounds — `O(dilation)` — with at most one
//! message per improvement per edge, and doubles as leader election (gossip
//! the minimum member id).
//!
//! Non-idempotent aggregates (sum) need the tree discipline of
//! [`solve_partwise`](crate::solve_partwise); the type system enforces the
//! distinction via [`IdempotentOp`].

use crate::dist::ParticipationMap;
use lcs_congest::{
    id_bits, Ctx, Incoming, MessageSize, NodeProgram, RunMetrics, SimConfig, SimMode, Simulator,
};
use lcs_core::session::{deps, OpReport, PartwiseOp, ShortcutSession};
use lcs_core::{Partition, Shortcut};
use lcs_graph::{Graph, PartId};
use std::collections::HashMap;

/// Aggregates safe under re-application (gossip does not double-count).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IdempotentOp {
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl IdempotentOp {
    fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            IdempotentOp::Min => a.min(b),
            IdempotentOp::Max => a.max(b),
        }
    }

    fn identity(self) -> u64 {
        match self {
            IdempotentOp::Min => u64::MAX,
            IdempotentOp::Max => 0,
        }
    }
}

/// Result of [`gossip_aggregate`].
#[derive(Clone, Debug)]
pub struct GossipOutcome {
    /// Converged aggregate per part (value held by every member).
    pub results: Vec<Option<u64>>,
    /// Whether every member of every part converged to its part's true
    /// aggregate (verified post-hoc).
    pub converged: bool,
    /// Simulation metrics; rounds ≈ dilation of the worst part.
    pub metrics: RunMetrics,
}

#[derive(Clone, Copy, Debug)]
struct GossipMsg {
    part: u32,
    value: u64,
}

impl MessageSize for GossipMsg {
    fn size_bits(&self) -> usize {
        32 + 64
    }

    /// The part id scales as `O(log n)`; the gossiped value keeps its full
    /// 64-bit width.
    fn size_bits_in(&self, n: usize) -> usize {
        id_bits(n) + 64
    }
}

struct GossipProgram {
    op: IdempotentOp,
    /// part -> (participating ports, current best).
    states: HashMap<u32, (Vec<usize>, u64)>,
}

impl GossipProgram {
    /// Emits one `GossipMsg` per `(part, port)` pair, **grouped by port**
    /// (ties broken by part id): a node relaying several parts over one
    /// shared edge issues those sends consecutively, which is the shape
    /// [`SimConfig::message_packing`] coalesces into multi-value messages.
    /// The grouping also makes the send order fully deterministic
    /// (independent of the state map's iteration order).
    fn send_grouped_by_port(&self, parts: Vec<u32>, ctx: &mut Ctx<'_, GossipMsg>) {
        let mut sends: Vec<(usize, u32, u64)> = Vec::new();
        for part in parts {
            let (ports, value) = &self.states[&part];
            for &p in ports {
                sends.push((p, part, *value));
            }
        }
        sends.sort_unstable_by_key(|&(p, part, _)| (p, part));
        for (p, part, value) in sends {
            ctx.send(p, GossipMsg { part, value });
        }
    }
}

impl NodeProgram for GossipProgram {
    type Msg = GossipMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, GossipMsg>) {
        let parts: Vec<u32> = self.states.keys().copied().collect();
        self.send_grouped_by_port(parts, ctx);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, GossipMsg>, inbox: &[Incoming<GossipMsg>]) {
        let mut improved: Vec<u32> = Vec::new();
        for m in inbox {
            let (_, best) = self
                .states
                .get_mut(&m.msg.part)
                .expect("gossip travels participating edges only");
            let merged = self.op.apply(*best, m.msg.value);
            if merged != *best {
                *best = merged;
                if !improved.contains(&m.msg.part) {
                    improved.push(m.msg.part);
                }
            }
        }
        self.send_grouped_by_port(improved, ctx);
    }

    fn is_done(&self) -> bool {
        true // quiescence-detected: done once nothing improves anywhere
    }
}

/// Leaderless idempotent aggregation as a session-drivable operation
/// ([`PartwiseOp`]): flooding over `G[P_i] + H_i`, converging in
/// `O(dilation)` rounds.
///
/// `session.run(GossipOp { .. })` (or the facade's `session.gossip(..)`)
/// serves it from the cached shortcut; the legacy [`gossip_aggregate`]
/// free function runs it over explicit artifacts.
#[derive(Clone, Copy, Debug)]
pub struct GossipOp<'a> {
    /// One value per node.
    pub values: &'a [u64],
    /// The idempotent operator.
    pub op: IdempotentOp,
}

impl PartwiseOp for GossipOp<'_> {
    type Output = GossipOutcome;

    fn run(self, session: &mut ShortcutSession<'_>) -> OpReport<GossipOutcome> {
        session.prepare();
        let quality = session.quality_shared();
        // Reuses the session-cached participation map (shared with the
        // leader-based aggregation — same artifact type, same slot), with
        // the same incremental refresh under reassign_parts churn.
        let participation = session.op_artifact_patched(
            deps::SHORTCUT,
            |s| ParticipationMap::build(s.graph(), s.partition(), s.shortcut_ref()),
            |s, old: &ParticipationMap, touched| {
                old.refreshed(s.graph(), s.partition(), s.shortcut_ref(), touched)
            },
        );
        let sim = session.config().aggregate_sim();
        let out = self.run_with(session.graph(), session.partition(), sim, &participation);
        let metrics = out.metrics.clone();
        OpReport::from_metrics(out, &metrics, quality)
    }
}

impl GossipOp<'_> {
    /// Runs the flooding protocol over explicit artifacts (the non-session
    /// path).
    ///
    /// # Panics
    ///
    /// Panics if `self.values.len() != g.num_nodes()` or the shortcut's
    /// shape differs from the partition's.
    pub fn run_on(
        &self,
        g: &Graph,
        partition: &Partition,
        shortcut: &Shortcut,
        sim: SimConfig,
    ) -> GossipOutcome {
        let participation = ParticipationMap::build(g, partition, shortcut);
        self.run_with(g, partition, sim, &participation)
    }

    /// Runs the flooding protocol over a prebuilt [`ParticipationMap`] —
    /// the path the session ops take with the cached map.
    fn run_with(
        &self,
        g: &Graph,
        partition: &Partition,
        sim: SimConfig,
        participation: &ParticipationMap,
    ) -> GossipOutcome {
        let (values, op) = (self.values, self.op);
        assert_eq!(values.len(), g.num_nodes(), "one value per node");

        let sim_cfg = SimConfig {
            mode: SimMode::Queued,
            ..sim
        };
        let simulator = Simulator::new(g, sim_cfg);
        let run = simulator.run(|v, _| {
            let mut states = HashMap::new();
            let mut parts: Vec<u32> = participation.at(v).keys().copied().collect();
            if let Some(p) = partition.part_of(v) {
                if !parts.contains(&p.0) {
                    parts.push(p.0);
                }
            }
            for part in parts {
                let is_member = partition.part_of(v) == Some(PartId(part));
                let ports = participation.at(v).get(&part).cloned().unwrap_or_default();
                let init = if is_member {
                    values[v.index()]
                } else {
                    op.identity()
                };
                states.insert(part, (ports, init));
            }
            GossipProgram { op, states }
        });

        // Collect and verify convergence.
        let expect: Vec<u64> = partition
            .iter()
            .map(|(_, nodes)| {
                nodes
                    .iter()
                    .map(|v| values[v.index()])
                    .fold(op.identity(), |a, b| op.apply(a, b))
            })
            .collect();
        let mut results = vec![None; partition.num_parts()];
        let mut converged = true;
        for (pid, nodes) in partition.iter() {
            let mut part_value = None;
            for &v in nodes {
                let held = run.programs[v.index()].states.get(&pid.0).map(|s| s.1);
                if held != Some(expect[pid.index()]) {
                    converged = false;
                }
                part_value = held;
            }
            results[pid.index()] = part_value;
        }

        GossipOutcome {
            results,
            converged,
            metrics: run.metrics,
        }
    }
}

/// Solves part-wise aggregation for an idempotent operator without leaders,
/// by flooding over `G[P_i] + H_i` — the legacy free-function surface, now
/// a one-line wrapper over [`GossipOp::run_on`]. For repeated queries on
/// one topology prefer a [`ShortcutSession`].
///
/// `sim.threads` flows through to the sharded round executor; outcomes and
/// metrics are identical at any thread count.
///
/// # Panics
///
/// Panics if `values.len() != g.num_nodes()` or the shortcut's shape
/// differs from the partition's.
pub fn gossip_aggregate(
    g: &Graph,
    partition: &Partition,
    shortcut: &Shortcut,
    values: &[u64],
    op: IdempotentOp,
    sim: SimConfig,
) -> GossipOutcome {
    GossipOp { values, op }.run_on(g, partition, shortcut, sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_core::{baseline, full_shortcut, ShortcutConfig};
    use lcs_graph::NodeId;
    use lcs_graph::{bfs, gen};

    #[test]
    fn gossip_matches_centralized_min_max() {
        let g = gen::grid(6, 6);
        let partition = Partition::from_parts(&g, gen::rows_of_grid(6, 6)).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let built = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
        let values: Vec<u64> = (0..36u64).map(|x| (x * 7) % 23).collect();
        for op in [IdempotentOp::Min, IdempotentOp::Max] {
            let out = gossip_aggregate(
                &g,
                &partition,
                &built.shortcut,
                &values,
                op,
                SimConfig::default(),
            );
            assert!(out.converged, "gossip must converge to the true aggregate");
        }
    }

    #[test]
    fn gossip_elects_leaders_without_coordination() {
        // Gossiping the minimum member id IS leader election.
        let g = gen::torus(5, 5);
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(3);
        let parts = gen::random_connected_parts(&g, 5, &mut rng);
        let partition = Partition::from_parts(&g, parts).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let built = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
        let ids: Vec<u64> = g.nodes().map(|v| u64::from(v.0)).collect();
        let out = gossip_aggregate(
            &g,
            &partition,
            &built.shortcut,
            &ids,
            IdempotentOp::Min,
            SimConfig::default(),
        );
        assert!(out.converged);
        for (pid, nodes) in partition.iter() {
            let min_id = nodes.iter().map(|v| u64::from(v.0)).min().unwrap();
            assert_eq!(out.results[pid.index()], Some(min_id));
        }
    }

    #[test]
    fn gossip_rounds_track_dilation_on_wheel() {
        let n = 128;
        let g = gen::wheel(n);
        let rim: Vec<NodeId> = (1..n as u32).map(NodeId).collect();
        let partition = Partition::from_parts(&g, vec![rim]).unwrap();
        let tree = bfs::bfs_tree(&g, NodeId(0));
        let built = full_shortcut(&g, &tree, &partition, &ShortcutConfig::default());
        let values: Vec<u64> = (0..n as u64).collect();
        let with = gossip_aggregate(
            &g,
            &partition,
            &built.shortcut,
            &values,
            IdempotentOp::Max,
            SimConfig::default(),
        );
        let without = gossip_aggregate(
            &g,
            &partition,
            &baseline::no_shortcut(&partition),
            &values,
            IdempotentOp::Max,
            SimConfig::default(),
        );
        assert!(with.converged && without.converged);
        // Dilation O(1) vs Θ(n): gossip rounds shrink accordingly.
        assert!(with.metrics.rounds * 4 < without.metrics.rounds);
    }
}
