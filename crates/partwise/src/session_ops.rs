//! The part-wise half of the [`ShortcutSession`] operation surface:
//! method-call sugar over [`PartwiseOp`] for aggregation, gossip, and
//! unicast routing.
//!
//! [`PartwiseOp`]: lcs_core::session::PartwiseOp

use crate::{
    AggregateOp, GossipOp, GossipOutcome, IdempotentOp, PartwiseOutcome, UnicastOp, UnicastOutcome,
};
use lcs_congest::protocols::AggOp;
use lcs_core::session::{OpReport, ShortcutSession};
use lcs_graph::NodeId;

/// Part-wise communication primitives served by a [`ShortcutSession`].
///
/// Implemented for [`ShortcutSession`]; bring the trait into scope (e.g.
/// via the umbrella crate's `facade` module or prelude) and call the
/// methods directly:
///
/// ```
/// use lcs_congest::protocols::AggOp;
/// use lcs_core::session::Session;
/// use lcs_graph::gen;
/// use lcs_partwise::SessionPartwiseOps;
///
/// let g = gen::grid(6, 6);
/// let mut session = Session::on(&g)
///     .partition(gen::rows_of_grid(6, 6))
///     .build()?;
/// let values: Vec<u64> = (0..36).collect();
/// let report = session.aggregate(&values, AggOp::Max);
/// assert_eq!(report.result.results[0], Some(5));
/// // The second call reuses the cached shortcut.
/// let again = session.aggregate(&values, AggOp::Sum);
/// assert!(again.result.all_members_informed);
/// assert_eq!(session.cache_stats().full.builds, 1);
/// # Ok::<(), lcs_core::PartitionError>(())
/// ```
pub trait SessionPartwiseOps {
    /// Leader-based part-wise aggregation over the cached shortcut
    /// ([`solve_partwise`](crate::solve_partwise) semantics).
    fn aggregate(&mut self, values: &[u64], op: AggOp) -> OpReport<PartwiseOutcome>;

    /// Aggregation with explicit per-part leaders.
    fn aggregate_with_leaders(
        &mut self,
        values: &[u64],
        op: AggOp,
        leaders: &[NodeId],
    ) -> OpReport<PartwiseOutcome>;

    /// Leaderless idempotent aggregation by flooding
    /// ([`gossip_aggregate`](crate::gossip_aggregate) semantics).
    fn gossip(&mut self, values: &[u64], op: IdempotentOp) -> OpReport<GossipOutcome>;

    /// Multi-unicast routing along the cached tree
    /// ([`route_multiple_unicasts`](crate::route_multiple_unicasts)
    /// semantics).
    fn unicast(&mut self, demands: &[(NodeId, NodeId)]) -> OpReport<UnicastOutcome>;
}

impl SessionPartwiseOps for ShortcutSession<'_> {
    fn aggregate(&mut self, values: &[u64], op: AggOp) -> OpReport<PartwiseOutcome> {
        self.run(AggregateOp {
            values,
            op,
            leaders: None,
        })
    }

    fn aggregate_with_leaders(
        &mut self,
        values: &[u64],
        op: AggOp,
        leaders: &[NodeId],
    ) -> OpReport<PartwiseOutcome> {
        self.run(AggregateOp {
            values,
            op,
            leaders: Some(leaders),
        })
    }

    fn gossip(&mut self, values: &[u64], op: IdempotentOp) -> OpReport<GossipOutcome> {
        self.run(GossipOp { values, op })
    }

    fn unicast(&mut self, demands: &[(NodeId, NodeId)]) -> OpReport<UnicastOutcome> {
        self.run(UnicastOp { demands })
    }
}
